"""Software raytracing substrate emulating the parts of NVIDIA OptiX used by RX/cgRX.

The paper relies on four hardware capabilities:

* a vertex buffer of triangles ("geometry acceleration structure" input),
* ``optixAccelBuild`` constructing a bounding volume hierarchy (BVH),
* hardware-accelerated closest-hit ray traversal with ray length limits,
* front-face/back-face classification via the triangle winding order, and
* a *refit* update mode that only rescales bounding volumes without
  restructuring the tree.

This package provides software equivalents with per-ray instrumentation so
that a cost model (:mod:`repro.gpu.cost_model`) can translate traversal work
into simulated GPU time.
"""

from repro.rtx.geometry import (
    Aabb,
    HitRecord,
    Ray,
    Triangle,
    make_key_triangle,
    ray_aabb_intersect,
    ray_triangle_intersect,
)
from repro.rtx.scene import BuildFlags, TriangleScene, VertexBuffer
from repro.rtx.bvh import Bvh, BvhBuildConfig, BvhNode, build_bvh
from repro.rtx.traversal import RayStats, TraversalEngine
from repro.rtx.refit import refit_bvh
from repro.rtx.pipeline import LaunchResult, RaytracingPipeline

__all__ = [
    "Aabb",
    "HitRecord",
    "Ray",
    "Triangle",
    "make_key_triangle",
    "ray_aabb_intersect",
    "ray_triangle_intersect",
    "BuildFlags",
    "TriangleScene",
    "VertexBuffer",
    "Bvh",
    "BvhBuildConfig",
    "BvhNode",
    "build_bvh",
    "RayStats",
    "TraversalEngine",
    "refit_bvh",
    "LaunchResult",
    "RaytracingPipeline",
]
