"""Ray traversal over a BVH with per-ray instrumentation.

The traversal engine stands in for the RT cores: it finds the closest hit (or
all hits) of a ray against the triangles of a scene by walking the BVH.  All
work performed — bounding-volume tests and ray/triangle intersection tests —
is counted in :class:`RayStats`, which the GPU cost model later converts into
simulated time.  This is the crucial link that lets the reproduction show the
paper's performance *shapes*: a bloated BVH (RX after refits) or a badly
clustered BVH (unscaled key mapping) directly produces higher counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rtx.bvh import Bvh
from repro.rtx.geometry import HitRecord, Ray, ray_triangles_intersect


@dataclass
class RayStats:
    """Counters describing the work done by one or more ray traversals."""

    rays_cast: int = 0
    nodes_visited: int = 0
    aabb_tests: int = 0
    triangle_tests: int = 0
    hits: int = 0
    misses: int = 0

    def merge(self, other: "RayStats") -> "RayStats":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.rays_cast += other.rays_cast
        self.nodes_visited += other.nodes_visited
        self.aabb_tests += other.aabb_tests
        self.triangle_tests += other.triangle_tests
        self.hits += other.hits
        self.misses += other.misses
        return self

    def copy(self) -> "RayStats":
        return RayStats(
            rays_cast=self.rays_cast,
            nodes_visited=self.nodes_visited,
            aabb_tests=self.aabb_tests,
            triangle_tests=self.triangle_tests,
            hits=self.hits,
            misses=self.misses,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.rays_cast = 0
        self.nodes_visited = 0
        self.aabb_tests = 0
        self.triangle_tests = 0
        self.hits = 0
        self.misses = 0


def _slab_test(
    ray_origin: np.ndarray,
    ray_inv_dir: np.ndarray,
    ray_parallel: np.ndarray,
    tmin: float,
    tmax: float,
    minimum: np.ndarray,
    maximum: np.ndarray,
) -> bool:
    """Slab ray/AABB test with precomputed inverse direction."""
    t0 = (minimum - ray_origin) * ray_inv_dir
    t1 = (maximum - ray_origin) * ray_inv_dir
    t_small = np.minimum(t0, t1)
    t_big = np.maximum(t0, t1)
    if ray_parallel.any():
        inside = (ray_origin >= minimum) & (ray_origin <= maximum)
        if np.any(ray_parallel & ~inside):
            return False
        t_small = np.where(ray_parallel, -np.inf, t_small)
        t_big = np.where(ray_parallel, np.inf, t_big)
    t_near = max(float(t_small.max()), tmin)
    t_far = min(float(t_big.min()), tmax)
    return t_near <= t_far


class TraversalEngine:
    """Traverses rays through a BVH, mimicking the hardware closest-hit pipeline.

    Two traversal paths are provided: a general Möller-Trumbore path
    (:meth:`trace_closest` / :meth:`trace_all`) and a fast specialised path for
    axis-aligned rays (:meth:`trace_axis_closest` / :meth:`trace_axis_all`).
    The index structures only ever fire axis-aligned rays through grid points,
    so the fast path exploits that a lookup ray hits a key triangle exactly
    when the two perpendicular coordinates match the triangle's grid point.
    Both paths produce identical hits and identical work counters for those
    rays (asserted by the test suite).
    """

    #: Perpendicular distance below which an axis-aligned ray through a grid
    #: point is considered to pass through a triangle centred on that point.
    AXIS_HIT_TOLERANCE = 0.3

    def __init__(self, bvh: Bvh, compiled_arena=None) -> None:
        self._bvh = bvh
        self._vertices = bvh.scene.vertices
        self._primitive_indices = bvh.scene.primitive_indices
        self._flipped = bvh.scene.flipped
        #: Aggregate statistics over all rays traced by this engine.
        self.stats = RayStats()
        self._fast_tables: Optional[tuple] = None
        self._soa = None
        #: Shard-local arena for the compiled tier's quantized node tables;
        #: owned by the pipeline so rebuilds/refits repack it in place.
        self._compiled_arena = compiled_arena
        self._compiled_tables = None

    @property
    def bvh(self) -> Bvh:
        return self._bvh

    def soa(self):
        """Contiguous SoA views of the BVH, built once per engine.

        Shared by the scalar slab tests (which previously promoted float32
        node rows to doubles on every visit) and by the wavefront batch
        kernels in :mod:`repro.rtx.wavefront`.
        """
        if self._soa is None:
            from repro.rtx.wavefront import SoaBvh

            self._soa = SoaBvh(self._bvh)
        return self._soa

    def compiled_tables(self):
        """Quantized cache-blocked node tables for the compiled megakernel.

        Built lazily into the engine's arena on the first compiled batch; the
        arena is reused (rebuilt in place) across acceleration-structure
        epochs when the owning pipeline threads it through.
        """
        if self._compiled_tables is None:
            from repro.rtx import compiled

            if self._compiled_arena is None:
                self._compiled_arena = compiled.Arena()
            self._compiled_tables = compiled.CompiledBvhTables(self._bvh, self._compiled_arena)
        return self._compiled_tables

    def compiled_buffers_bytes(self) -> int:
        """Arena bytes held by the compiled tier (0 until the first compiled batch)."""
        if self._compiled_arena is None:
            return 0
        return self._compiled_arena.capacity_bytes

    def _prepare_ray(self, ray: Ray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        origin = ray.origin.astype(np.float64)
        direction = ray.direction.astype(np.float64)
        parallel = np.abs(direction) < 1e-12
        with np.errstate(divide="ignore"):
            inv_dir = np.where(parallel, np.inf, 1.0 / direction)
        return origin, inv_dir, parallel

    def trace_closest(self, ray: Ray, stats: Optional[RayStats] = None) -> HitRecord:
        """Return the closest intersection of ``ray`` with the scene (or a miss)."""
        stats = stats if stats is not None else RayStats()
        stats.rays_cast += 1

        bvh = self._bvh
        record = HitRecord()
        if bvh.num_nodes == 0:
            stats.misses += 1
            self.stats.merge(stats)
            return record

        soa = self.soa()
        origin, inv_dir, parallel = self._prepare_ray(ray)
        best_t = ray.tmax
        stack: List[int] = [0]
        while stack:
            index = stack.pop()
            stats.nodes_visited += 1
            stats.aabb_tests += 1
            if not _slab_test(
                origin,
                inv_dir,
                parallel,
                ray.tmin,
                best_t,
                soa.node_min[index],
                soa.node_max[index],
            ):
                continue
            count = int(bvh.node_count[index])
            if count > 0:
                local = bvh.leaf_primitive_indices(index)
                stats.triangle_tests += len(local)
                hit_mask, t_values, front = ray_triangles_intersect(
                    Ray(ray.origin, ray.direction, ray.tmin, best_t),
                    self._vertices[local],
                )
                if hit_mask.any():
                    hit_positions = np.nonzero(hit_mask)[0]
                    best_local = hit_positions[np.argmin(t_values[hit_positions])]
                    t = float(t_values[best_local])
                    if t < best_t:
                        best_t = t
                        scene_tri = int(local[best_local])
                        record = HitRecord(
                            hit=True,
                            t=t,
                            primitive_index=int(self._primitive_indices[scene_tri]),
                            front_face=bool(front[best_local]),
                            point=ray.origin + t * ray.direction,
                        )
            else:
                stack.append(int(bvh.node_left[index]))
                stack.append(int(bvh.node_right[index]))

        if record.hit:
            stats.hits += 1
        else:
            stats.misses += 1
        self.stats.merge(stats)
        return record

    def trace_all(self, ray: Ray, stats: Optional[RayStats] = None) -> List[HitRecord]:
        """Return *all* intersections along ``ray`` sorted by distance.

        This models an OptiX any-hit program that records every intersection,
        which is how RX answers range lookups (and the reason they are slow:
        every qualifying triangle must be intersection-tested).
        """
        stats = stats if stats is not None else RayStats()
        stats.rays_cast += 1

        bvh = self._bvh
        hits: List[HitRecord] = []
        if bvh.num_nodes == 0:
            stats.misses += 1
            self.stats.merge(stats)
            return hits

        soa = self.soa()
        origin, inv_dir, parallel = self._prepare_ray(ray)
        stack: List[int] = [0]
        while stack:
            index = stack.pop()
            stats.nodes_visited += 1
            stats.aabb_tests += 1
            if not _slab_test(
                origin,
                inv_dir,
                parallel,
                ray.tmin,
                ray.tmax,
                soa.node_min[index],
                soa.node_max[index],
            ):
                continue
            count = int(bvh.node_count[index])
            if count > 0:
                local = bvh.leaf_primitive_indices(index)
                stats.triangle_tests += len(local)
                hit_mask, t_values, front = ray_triangles_intersect(ray, self._vertices[local])
                for position in np.nonzero(hit_mask)[0]:
                    t = float(t_values[position])
                    scene_tri = int(local[position])
                    hits.append(
                        HitRecord(
                            hit=True,
                            t=t,
                            primitive_index=int(self._primitive_indices[scene_tri]),
                            front_face=bool(front[position]),
                            point=ray.origin + t * ray.direction,
                        )
                    )
            else:
                stack.append(int(bvh.node_left[index]))
                stack.append(int(bvh.node_right[index]))

        hits.sort(key=lambda record: record.t)
        if hits:
            stats.hits += 1
        else:
            stats.misses += 1
        self.stats.merge(stats)
        return hits

    # ------------------------------------------------------ fast axis-aligned path

    def _build_fast_tables(self) -> tuple:
        """Precompute Python-native node and triangle tables for the fast path.

        Per-ray numpy overhead dominates the general path; the index fires
        millions of small axis-aligned rays, so the fast path keeps the hot
        loop in plain Python floats.
        """
        if self._fast_tables is not None:
            return self._fast_tables
        bvh = self._bvh
        node_min = bvh.node_min.astype(float).tolist()
        node_max = bvh.node_max.astype(float).tolist()
        node_left = bvh.node_left.tolist()
        node_right = bvh.node_right.tolist()
        node_first = bvh.node_first.tolist()
        node_count = bvh.node_count.tolist()
        order = bvh.primitive_order.tolist()
        centroids = bvh.scene.centroids().astype(float).tolist()
        primitive_indices = self._primitive_indices.tolist()
        flipped = self._flipped.tolist()
        self._fast_tables = (
            node_min,
            node_max,
            node_left,
            node_right,
            node_first,
            node_count,
            order,
            centroids,
            primitive_indices,
            flipped,
        )
        return self._fast_tables

    def _trace_axis(
        self,
        axis: int,
        origin: Sequence[float],
        tmax: float,
        collect_all: bool,
        stats: RayStats,
    ) -> List[HitRecord]:
        """Shared implementation of the fast axis-aligned traversal."""
        stats.rays_cast += 1
        if self._bvh.num_nodes == 0:
            stats.misses += 1
            self.stats.merge(stats)
            return []

        (
            node_min,
            node_max,
            node_left,
            node_right,
            node_first,
            node_count,
            order,
            centroids,
            primitive_indices,
            flipped,
        ) = self._build_fast_tables()

        perp_a, perp_b = _PERP_AXES[axis]
        origin_axis = float(origin[axis])
        coord_a = float(origin[perp_a])
        coord_b = float(origin[perp_b])
        tolerance = self.AXIS_HIT_TOLERANCE
        slack = tolerance  # AABBs already include the triangle extent.

        best_t = tmax
        best_record: Optional[HitRecord] = None
        collected: List[HitRecord] = []

        stack = [0]
        while stack:
            index = stack.pop()
            stats.nodes_visited += 1
            stats.aabb_tests += 1
            minimum = node_min[index]
            maximum = node_max[index]
            if coord_a < minimum[perp_a] - slack or coord_a > maximum[perp_a] + slack:
                continue
            if coord_b < minimum[perp_b] - slack or coord_b > maximum[perp_b] + slack:
                continue
            if maximum[axis] < origin_axis or minimum[axis] > origin_axis + best_t:
                continue
            count = node_count[index]
            if count > 0:
                first = node_first[index]
                stats.triangle_tests += count
                for slot in range(first, first + count):
                    scene_tri = order[slot]
                    centre = centroids[scene_tri]
                    if abs(centre[perp_a] - coord_a) > tolerance:
                        continue
                    if abs(centre[perp_b] - coord_b) > tolerance:
                        continue
                    t = centre[axis] - origin_axis
                    if t < 0.0 or t > best_t:
                        continue
                    record = HitRecord(
                        hit=True,
                        t=t,
                        primitive_index=int(primitive_indices[scene_tri]),
                        front_face=not flipped[scene_tri],
                        point=np.array(
                            [
                                centre[0],
                                centre[1],
                                centre[2],
                            ],
                            dtype=np.float32,
                        ),
                    )
                    if collect_all:
                        collected.append(record)
                    elif best_record is None or t < best_record.t:
                        best_record = record
                        best_t = t
            else:
                left = node_left[index]
                right = node_right[index]
                # Push the farther child first so the nearer one is visited
                # next; this lets the closest-hit search prune aggressively.
                if node_min[left][axis] <= node_min[right][axis]:
                    stack.append(right)
                    stack.append(left)
                else:
                    stack.append(left)
                    stack.append(right)

        if collect_all:
            collected.sort(key=lambda record: record.t)
            if collected:
                stats.hits += 1
            else:
                stats.misses += 1
            self.stats.merge(stats)
            return collected

        if best_record is not None:
            stats.hits += 1
            self.stats.merge(stats)
            return [best_record]
        stats.misses += 1
        self.stats.merge(stats)
        return []

    def trace_axis_closest(
        self,
        axis: int,
        origin: Sequence[float],
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Closest hit of an axis-aligned ray travelling in the +``axis`` direction."""
        local = stats if stats is not None else RayStats()
        hits = self._trace_axis(axis, origin, tmax, collect_all=False, stats=local)
        return hits[0] if hits else HitRecord()

    def trace_axis_all(
        self,
        axis: int,
        origin: Sequence[float],
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> List[HitRecord]:
        """All hits of an axis-aligned ray travelling in the +``axis`` direction."""
        local = stats if stats is not None else RayStats()
        return self._trace_axis(axis, origin, tmax, collect_all=True, stats=local)

    # ------------------------------------------------------- wavefront batches

    def _trace_axis_batch(self, axis, origins, tmax, collect_all, stats, engine="vector"):
        """Shared batch entry: trace a whole axis-ray batch through one kernel.

        ``engine="compiled"`` routes closest-hit batches through the fused
        megakernel of :mod:`repro.rtx.compiled`; all-hits batches (and any
        batch the compiled tier cannot serve) take the wavefront path.  Both
        kernels produce identical hits and counters.
        """
        from repro.rtx import wavefront

        origins = np.asarray(origins, dtype=np.float64)
        if tmax is None:
            tmax = np.full(origins.shape[0], np.inf, dtype=np.float64)
        else:
            tmax = np.asarray(tmax, dtype=np.float64)
        delta = RayStats()
        result = None
        if (
            engine == "compiled"
            and not collect_all
            and origins.shape[0]
            and self._bvh.num_nodes
        ):
            from repro.rtx import compiled

            result = compiled.trace_axis_closest_batch(
                self.soa(),
                self.compiled_tables(),
                axis,
                origins,
                tmax,
                self.AXIS_HIT_TOLERANCE,
                delta,
            )
            if result is None:
                compiled.record_fallback("tables_unusable")
        if result is None:
            result = wavefront.trace_axis_batch(
                self.soa(), axis, origins, tmax, self.AXIS_HIT_TOLERANCE, collect_all, delta
            )
        if stats is not None:
            stats.merge(delta)
        self.stats.merge(delta)
        return result

    def trace_axis_closest_batch(
        self,
        axis: int,
        origins: np.ndarray,
        tmax: Optional[np.ndarray] = None,
        stats: Optional[RayStats] = None,
        engine: str = "vector",
    ):
        """Closest hits of a batch of +``axis`` rays (wavefront or compiled).

        Returns a :class:`~repro.rtx.wavefront.AxisClosestBatch`; hit records,
        per-ray node visits and ``stats`` totals are identical to calling
        :meth:`trace_axis_closest` per ray, whichever engine executes.
        """
        return self._trace_axis_batch(axis, origins, tmax, False, stats, engine)

    def trace_axis_all_batch(
        self,
        axis: int,
        origins: np.ndarray,
        tmax: Optional[np.ndarray] = None,
        stats: Optional[RayStats] = None,
        engine: str = "vector",
    ):
        """All hits of a batch of +``axis`` rays (wavefront lockstep).

        Returns a :class:`~repro.rtx.wavefront.AxisAllBatch` with hits grouped
        by ray and sorted by distance, matching :meth:`trace_axis_all`.  The
        compiled tier covers only closest-hit batches, so all-hits batches
        stay on the wavefront kernels under every engine.
        """
        return self._trace_axis_batch(axis, origins, tmax, True, stats, engine)

    def trace_closest_batch(
        self,
        rays: Sequence[Ray],
        stats: Optional[RayStats] = None,
    ) -> List[HitRecord]:
        """Closest hits of a batch of arbitrary rays via the wavefront path.

        The slab tests run vectorized over the active ray front; results and
        counters match :meth:`trace_closest` applied per ray.
        """
        from repro.rtx import wavefront

        delta = RayStats()
        records = wavefront.trace_closest_batch(
            self.soa(), self._vertices, self._primitive_indices, rays, delta
        )
        if stats is not None:
            stats.merge(delta)
        self.stats.merge(delta)
        return records


#: For each ray axis, the two perpendicular axes checked by the fast path.
_PERP_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}
