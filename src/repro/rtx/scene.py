"""Vertex buffers and triangle scenes (the OptiX "geometry acceleration structure" input).

An index built on the RT substrate materialises its triangles by writing nine
floats per triangle into a vertex buffer; the position in the buffer (the
*primitive index*) is what associates a triangle with a rowID (RX) or a
bucketID (cgRX).  Empty slots are allowed and represented by degenerate
triangles, which mirrors how RX/cgRX leave gaps in the marker buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto
from typing import Iterable, List, Optional

import numpy as np

from repro.rtx.geometry import (
    TRIANGLE_BYTES,
    TRIANGLE_HALF_EXTENT,
    Aabb,
    Triangle,
    make_key_triangle,
)


class BuildFlags(Flag):
    """Acceleration-structure build flags mirroring the OptiX options cgRX uses."""

    NONE = 0
    #: Allow the structure to be refit (updated in place) later.  Refitting is
    #: cheap but only rescales bounding volumes, which is exactly the RX
    #: degradation the paper's Figure 1c shows.
    ALLOW_UPDATE = auto()
    #: Spend more build time to obtain a higher-quality tree.
    PREFER_FAST_TRACE = auto()
    #: Minimise build time at the expense of traversal quality.
    PREFER_FAST_BUILD = auto()


@dataclass
class VertexBuffer:
    """A growable buffer of triangle vertices addressed by primitive index.

    The buffer is the ground truth for the scene: building a
    :class:`TriangleScene` snapshots it, and the BVH indexes the snapshot.
    """

    capacity: int = 0
    _vertices: np.ndarray = field(default=None, repr=False)
    _centres: np.ndarray = field(default=None, repr=False)
    _occupied: np.ndarray = field(default=None, repr=False)
    _flipped: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        capacity = max(int(self.capacity), 0)
        self._vertices = np.zeros((capacity, 3, 3), dtype=np.float32)
        # Exact (float64) triangle centres.  At the magnitudes produced by the
        # scaled key mapping (up to ~2^38) the float32 vertices collapse onto
        # the grid point, so the centre is tracked separately to keep the
        # intersection logic exact.
        self._centres = np.zeros((capacity, 3), dtype=np.float64)
        self._occupied = np.zeros(capacity, dtype=bool)
        self._flipped = np.zeros(capacity, dtype=bool)
        self.capacity = capacity

    def __len__(self) -> int:
        return self.capacity

    @property
    def num_occupied(self) -> int:
        """Number of slots holding a real (non-degenerate) triangle."""
        return int(self._occupied.sum())

    @property
    def occupied_mask(self) -> np.ndarray:
        """Boolean mask over slots that hold a triangle."""
        return self._occupied.copy()

    def reserve(self, capacity: int) -> None:
        """Grow the buffer to at least ``capacity`` slots (never shrinks)."""
        capacity = int(capacity)
        if capacity <= self.capacity:
            return
        vertices = np.zeros((capacity, 3, 3), dtype=np.float32)
        centres = np.zeros((capacity, 3), dtype=np.float64)
        occupied = np.zeros(capacity, dtype=bool)
        flipped = np.zeros(capacity, dtype=bool)
        if self.capacity:
            vertices[: self.capacity] = self._vertices
            centres[: self.capacity] = self._centres
            occupied[: self.capacity] = self._occupied
            flipped[: self.capacity] = self._flipped
        self._vertices = vertices
        self._centres = centres
        self._occupied = occupied
        self._flipped = flipped
        self.capacity = capacity

    def write_triangle(self, primitive_index: int, triangle: Triangle) -> None:
        """Materialise ``triangle`` at slot ``primitive_index``."""
        if primitive_index >= self.capacity:
            self.reserve(max(primitive_index + 1, self.capacity * 2, 8))
        self._vertices[primitive_index] = triangle.vertices()
        self._centres[primitive_index] = triangle.vertices().astype(np.float64).mean(axis=0)
        self._occupied[primitive_index] = True
        normal = triangle.geometric_normal()
        # Triangles produced by make_key_triangle have normal ~(1,1,1); a
        # flipped triangle has the opposite normal.  Record the orientation so
        # the scene can answer front/back-face queries cheaply.
        self._flipped[primitive_index] = bool(normal.sum() < 0)

    def write_key_triangle(
        self,
        primitive_index: int,
        x: float,
        y: float,
        z: float,
        flipped: bool = False,
    ) -> None:
        """Convenience wrapper: materialise a key/marker triangle at a grid point."""
        triangle = make_key_triangle(x, y, z, flipped=flipped, primitive_index=primitive_index)
        self.write_triangle(primitive_index, triangle)
        # The analytically known grid-point centre is exact even where the
        # float32 vertices are not.
        self._centres[primitive_index] = (float(x), float(y), float(z))
        self._flipped[primitive_index] = bool(flipped)

    def write_key_triangles(
        self,
        slots: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        zs: np.ndarray,
        flipped: Optional[np.ndarray] = None,
    ) -> None:
        """Vectorised bulk materialisation of key/marker triangles.

        Equivalent to calling :meth:`write_key_triangle` once per slot but
        computes all vertex positions in one shot, which matters when an index
        materialises one triangle per key (RX) or hundreds of thousands of
        representatives.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        centres = np.stack(
            [
                np.asarray(xs, dtype=np.float64),
                np.asarray(ys, dtype=np.float64),
                np.asarray(zs, dtype=np.float64),
            ],
            axis=1,
        )
        if flipped is None:
            flipped = np.zeros(slots.shape[0], dtype=bool)
        flipped = np.asarray(flipped, dtype=bool)

        self.reserve(int(slots.max()) + 1)

        # Same construction as make_key_triangle: two edges spanning the plane
        # with normal (1, 1, 1), centroid exactly on the grid point; flipping
        # swaps v1 and v2.
        half = TRIANGLE_HALF_EXTENT
        edge_a = np.array([1.0, -1.0, 0.0]) / np.sqrt(2.0) * half
        edge_b = np.array([1.0, 1.0, -2.0]) / np.sqrt(6.0) * (half * 0.5)
        v0 = centres - edge_a - edge_b
        v1 = centres + edge_a - edge_b
        v2 = centres + 2.0 * edge_b

        vertices = np.empty((slots.shape[0], 3, 3), dtype=np.float32)
        vertices[:, 0, :] = v0
        vertices[:, 1, :] = np.where(flipped[:, None], v2, v1)
        vertices[:, 2, :] = np.where(flipped[:, None], v1, v2)

        self._vertices[slots] = vertices
        self._centres[slots] = centres
        self._occupied[slots] = True
        self._flipped[slots] = flipped

    def slot_occupied(self, primitive_index: int) -> bool:
        """Whether slot ``primitive_index`` holds a real triangle."""
        return primitive_index < self.capacity and bool(self._occupied[primitive_index])

    def slot_flipped(self, primitive_index: int) -> bool:
        """Whether slot ``primitive_index`` holds a winding-inverted triangle."""
        return primitive_index < self.capacity and bool(self._flipped[primitive_index])

    def clear_slot(self, primitive_index: int) -> None:
        """Remove the triangle at ``primitive_index`` (the slot becomes degenerate)."""
        if primitive_index < self.capacity:
            self._vertices[primitive_index] = 0.0
            self._centres[primitive_index] = 0.0
            self._occupied[primitive_index] = False
            self._flipped[primitive_index] = False

    def triangle(self, primitive_index: int) -> Optional[Triangle]:
        """Return the triangle stored at ``primitive_index`` or ``None`` if empty."""
        if primitive_index >= self.capacity or not self._occupied[primitive_index]:
            return None
        v = self._vertices[primitive_index]
        return Triangle(v0=v[0].copy(), v1=v[1].copy(), v2=v[2].copy(), primitive_index=primitive_index)

    @property
    def vertices(self) -> np.ndarray:
        """Raw ``(capacity, 3, 3)`` vertex array (degenerate slots are all zeros)."""
        return self._vertices

    @property
    def centres(self) -> np.ndarray:
        """Exact float64 triangle centres, aligned with :attr:`vertices`."""
        return self._centres

    @property
    def flipped_mask(self) -> np.ndarray:
        """Boolean mask of slots whose triangle has inverted winding order."""
        return self._flipped.copy()

    def memory_footprint_bytes(self) -> int:
        """Device bytes occupied by the buffer (36 B per slot, incl. empty slots)."""
        return self.capacity * TRIANGLE_BYTES


@dataclass
class TriangleScene:
    """A snapshot of a vertex buffer that a BVH can be built over.

    Only occupied slots participate in traversal, but the vertex buffer's full
    capacity counts towards the memory footprint, exactly as the gaps in RX's
    and cgRX's buffers do on the real device.
    """

    vertices: np.ndarray
    centres: np.ndarray
    primitive_indices: np.ndarray
    flipped: np.ndarray
    buffer_capacity: int
    build_flags: BuildFlags = BuildFlags.NONE

    @staticmethod
    def from_vertex_buffer(
        buffer: VertexBuffer, build_flags: BuildFlags = BuildFlags.NONE
    ) -> "TriangleScene":
        """Snapshot ``buffer`` into a scene containing only its occupied slots."""
        mask = buffer.occupied_mask
        primitive_indices = np.nonzero(mask)[0].astype(np.int64)
        vertices = buffer.vertices[mask].copy()
        centres = buffer.centres[mask].copy()
        flipped = buffer.flipped_mask[mask].copy()
        return TriangleScene(
            vertices=vertices,
            centres=centres,
            primitive_indices=primitive_indices,
            flipped=flipped,
            buffer_capacity=buffer.capacity,
            build_flags=build_flags,
        )

    @staticmethod
    def from_triangles(
        triangles: Iterable[Triangle], build_flags: BuildFlags = BuildFlags.NONE
    ) -> "TriangleScene":
        """Build a scene directly from triangle objects (mainly for tests)."""
        triangle_list: List[Triangle] = list(triangles)
        if triangle_list:
            vertices = np.stack([t.vertices() for t in triangle_list])
            centres = vertices.astype(np.float64).mean(axis=1)
            primitive_indices = np.array(
                [t.primitive_index for t in triangle_list], dtype=np.int64
            )
            flipped = np.array(
                [bool(t.geometric_normal().sum() < 0) for t in triangle_list], dtype=bool
            )
        else:
            vertices = np.zeros((0, 3, 3), dtype=np.float32)
            centres = np.zeros((0, 3), dtype=np.float64)
            primitive_indices = np.zeros(0, dtype=np.int64)
            flipped = np.zeros(0, dtype=bool)
        capacity = int(primitive_indices.max()) + 1 if len(triangle_list) else 0
        return TriangleScene(
            vertices=vertices,
            centres=centres,
            primitive_indices=primitive_indices,
            flipped=flipped,
            buffer_capacity=capacity,
            build_flags=build_flags,
        )

    @property
    def num_triangles(self) -> int:
        """Number of real triangles in the scene."""
        return int(self.vertices.shape[0])

    def centroids(self) -> np.ndarray:
        """Exact per-triangle centres, used by the BVH builder and the fast ray path."""
        return self.centres

    def triangle_aabbs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-triangle bounding boxes as two ``(n, 3)`` arrays (minima, maxima)."""
        if self.num_triangles == 0:
            empty = np.zeros((0, 3), dtype=np.float32)
            return empty, empty.copy()
        return self.vertices.min(axis=1), self.vertices.max(axis=1)

    def scene_aabb(self) -> Aabb:
        """Bounding box of the whole scene."""
        if self.num_triangles == 0:
            return Aabb.empty()
        minima, maxima = self.triangle_aabbs()
        return Aabb(minimum=minima.min(axis=0), maximum=maxima.max(axis=0))

    def vertex_buffer_bytes(self) -> int:
        """Bytes of the originating vertex buffer (including empty slots)."""
        return self.buffer_capacity * TRIANGLE_BYTES
