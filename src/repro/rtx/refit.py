"""BVH refitting (the OptiX "update" build operation).

Refitting recomputes bounding volumes bottom-up for the *existing* tree
topology after triangle vertices changed.  It is much cheaper than a full
rebuild but never restructures the tree, so triangles that moved far from
their original neighbours inflate their leaf's bounding volume.  The paper's
Figure 1c shows the consequence for RX: after a few update batches the
inflated, heavily overlapping volumes force lookups to test vastly more
triangles, degrading lookup performance by up to 78x.  cgRXu exists precisely
to avoid this operation.
"""

from __future__ import annotations

import numpy as np

from repro.rtx.bvh import Bvh


def refit_bvh(bvh: Bvh, new_vertices: np.ndarray) -> Bvh:
    """Refit ``bvh`` in place against ``new_vertices`` and return it.

    ``new_vertices`` must be an ``(n, 3, 3)`` array with the same number of
    triangles as the scene the BVH was built over; only vertex positions may
    have changed.  The tree topology and the primitive ordering are preserved,
    which is exactly what makes refitting cheap and, after non-local updates,
    harmful to traversal performance.
    """
    new_vertices = np.asarray(new_vertices, dtype=np.float32)
    expected = bvh.scene.vertices.shape
    if new_vertices.shape != expected:
        raise ValueError(
            f"refit requires the same triangle count: expected {expected}, "
            f"got {new_vertices.shape}"
        )

    bvh.scene.vertices = new_vertices
    if bvh.num_nodes == 0:
        bvh.refit_generation += 1
        return bvh

    triangle_min = new_vertices.min(axis=1)
    triangle_max = new_vertices.max(axis=1)

    # Children are always created after their parent, so their node index is
    # strictly greater.  Walking the node array backwards therefore visits
    # every child before its parent and a single pass suffices.
    for index in range(bvh.num_nodes - 1, -1, -1):
        count = int(bvh.node_count[index])
        if count > 0:
            prims = bvh.leaf_primitive_indices(index)
            bvh.node_min[index] = triangle_min[prims].min(axis=0)
            bvh.node_max[index] = triangle_max[prims].max(axis=0)
        else:
            left = int(bvh.node_left[index])
            right = int(bvh.node_right[index])
            bvh.node_min[index] = np.minimum(bvh.node_min[left], bvh.node_min[right])
            bvh.node_max[index] = np.maximum(bvh.node_max[left], bvh.node_max[right])

    bvh.refit_generation += 1
    return bvh


def total_overlap_area(bvh: Bvh) -> float:
    """Sum of surface areas of all nodes, a cheap proxy for traversal cost.

    Refitting after scattered updates increases this quantity sharply, which
    is the mechanism behind RX's post-update slowdown.  Exposed mainly for
    tests and for the Figure 1c experiment.
    """
    if bvh.num_nodes == 0:
        return 0.0
    extent = np.maximum(bvh.node_max - bvh.node_min, 0.0)
    dx = extent[:, 0]
    dy = extent[:, 1]
    dz = extent[:, 2]
    return float(np.sum(2.0 * (dx * dy + dy * dz + dz * dx)))


def overlap_ratio(bvh: Bvh, baseline_area: float) -> float:
    """Growth of :func:`total_overlap_area` relative to a freshly built tree.

    The index lifecycle uses this as the refit quality signal: refits are
    cheap, but every refit after geometry moved inflates the bounding
    volumes a little; once the ratio crosses a configured threshold the
    maintenance tier escalates from refit to a full rebuild.
    """
    if baseline_area <= 0.0:
        return 1.0
    return total_overlap_area(bvh) / baseline_area
