"""Geometric primitives for the raytracing substrate.

Triangles, rays, axis-aligned bounding boxes (AABBs) and the intersection
routines between them.  All coordinates are stored as ``float32`` to mirror
the precision constraints of the RT hardware: the paper notes that the key
mapping is limited to 23 bits per dimension precisely because triangle
vertices are 32-bit floats.

Triangles created by :func:`make_key_triangle` are small and tilted so that
their plane is not parallel to any coordinate axis.  This means a single
triangle centred on a grid point can be intersected by rays travelling along
the +x, +y and +z axes alike, which is how the index fires its lookup rays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: Half extent of the triangles materialised for keys.  Grid points are one
#: unit apart, so any value well below 0.5 keeps neighbouring triangles
#: disjoint.
TRIANGLE_HALF_EXTENT = 0.125

#: Numerical tolerance used by the intersection routines.
EPSILON = 1e-7

#: Bytes used to store a single triangle in the vertex buffer: nine 4-byte
#: floats, exactly as in the paper (36 B per key for RX).
TRIANGLE_BYTES = 9 * 4


@dataclass
class Aabb:
    """An axis-aligned bounding box described by its minimum and maximum corner."""

    minimum: np.ndarray
    maximum: np.ndarray

    @staticmethod
    def empty() -> "Aabb":
        """Return a degenerate box that is the identity element for :meth:`union`."""
        return Aabb(
            minimum=np.full(3, np.inf, dtype=np.float32),
            maximum=np.full(3, -np.inf, dtype=np.float32),
        )

    @staticmethod
    def from_points(points: np.ndarray) -> "Aabb":
        """Build the tightest box containing ``points`` (an ``(n, 3)`` array)."""
        pts = np.asarray(points, dtype=np.float32).reshape(-1, 3)
        return Aabb(minimum=pts.min(axis=0), maximum=pts.max(axis=0))

    def union(self, other: "Aabb") -> "Aabb":
        """Return the smallest box containing both ``self`` and ``other``."""
        return Aabb(
            minimum=np.minimum(self.minimum, other.minimum),
            maximum=np.maximum(self.maximum, other.maximum),
        )

    def grow_to_contain(self, point: np.ndarray) -> "Aabb":
        """Return a box grown so that it also contains ``point``."""
        point = np.asarray(point, dtype=np.float32)
        return Aabb(
            minimum=np.minimum(self.minimum, point),
            maximum=np.maximum(self.maximum, point),
        )

    def contains_point(self, point: np.ndarray) -> bool:
        """Check whether ``point`` lies inside (or on the boundary of) the box."""
        point = np.asarray(point, dtype=np.float32)
        return bool(np.all(point >= self.minimum) and np.all(point <= self.maximum))

    def overlaps(self, other: "Aabb") -> bool:
        """Check whether this box and ``other`` share any volume."""
        return bool(
            np.all(self.minimum <= other.maximum) and np.all(self.maximum >= other.minimum)
        )

    @property
    def extent(self) -> np.ndarray:
        """Edge lengths along each axis."""
        return self.maximum - self.minimum

    @property
    def centre(self) -> np.ndarray:
        """Geometric centre of the box."""
        return (self.maximum + self.minimum) * 0.5

    def surface_area(self) -> float:
        """Surface area, the quantity minimised by SAH-style BVH builders."""
        if np.any(self.maximum < self.minimum):
            return 0.0
        dx, dy, dz = (self.maximum - self.minimum).tolist()
        return float(2.0 * (dx * dy + dy * dz + dz * dx))

    def is_empty(self) -> bool:
        """True for the degenerate box returned by :meth:`empty`."""
        return bool(np.any(self.maximum < self.minimum))


@dataclass
class Triangle:
    """A single triangle with an explicit winding order.

    The winding order (the order in which ``v0``, ``v1``, ``v2`` are stored)
    determines which side is the *front* face.  The optimised cgRX
    representation flips this order to signal "this representative is alone in
    its row" to the lookup procedure (Section III-B of the paper).
    """

    v0: np.ndarray
    v1: np.ndarray
    v2: np.ndarray
    primitive_index: int = 0

    def vertices(self) -> np.ndarray:
        """Return the vertices as a ``(3, 3)`` array."""
        return np.stack([self.v0, self.v1, self.v2]).astype(np.float32)

    def aabb(self) -> Aabb:
        """Bounding box of the triangle."""
        return Aabb.from_points(self.vertices())

    def centroid(self) -> np.ndarray:
        """Centroid (mean of the three corner points)."""
        return self.vertices().mean(axis=0)

    def geometric_normal(self) -> np.ndarray:
        """Unnormalised geometric normal following the winding order."""
        return np.cross(self.v1 - self.v0, self.v2 - self.v0)

    def flipped(self) -> "Triangle":
        """Return a copy with inverted winding order (front and back swapped)."""
        return Triangle(
            v0=self.v0.copy(),
            v1=self.v2.copy(),
            v2=self.v1.copy(),
            primitive_index=self.primitive_index,
        )


@dataclass
class Ray:
    """A ray defined by origin, direction and the parametric interval [tmin, tmax].

    Limiting ``tmax`` is how RX prevents a point-lookup ray from extending
    beyond a single grid cell, and how range lookups stop at the upper bound.
    """

    origin: np.ndarray
    direction: np.ndarray
    tmin: float = 0.0
    tmax: float = float("inf")

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float32)
        self.direction = np.asarray(self.direction, dtype=np.float32)

    def at(self, t: float) -> np.ndarray:
        """Point along the ray at parameter ``t``."""
        return self.origin + t * self.direction


@dataclass
class HitRecord:
    """Result of a ray traversal, mirroring the OptiX hit attributes used by cgRX."""

    hit: bool = False
    t: float = float("inf")
    primitive_index: int = -1
    front_face: bool = True
    point: Optional[np.ndarray] = None

    def __bool__(self) -> bool:
        return self.hit

    @property
    def x(self) -> float:
        """x coordinate of the intersection point (valid only if ``hit``)."""
        return float(self.point[0]) if self.point is not None else float("nan")

    @property
    def y(self) -> float:
        """y coordinate of the intersection point (valid only if ``hit``)."""
        return float(self.point[1]) if self.point is not None else float("nan")

    @property
    def z(self) -> float:
        """z coordinate of the intersection point (valid only if ``hit``)."""
        return float(self.point[2]) if self.point is not None else float("nan")


def make_key_triangle(
    x: float,
    y: float,
    z: float,
    flipped: bool = False,
    half_extent: float = TRIANGLE_HALF_EXTENT,
    primitive_index: int = 0,
) -> Triangle:
    """Create the small triangle that represents a key (or marker) at a grid point.

    The triangle is tilted so that its plane has the normal ``(1, 1, 1)``;
    rays travelling along any coordinate axis through the grid point therefore
    intersect it.  ``flipped=True`` inverts the winding order, which the
    optimised representation uses to signal single-representative rows.
    """
    centre = np.array([x, y, z], dtype=np.float32)
    # Two edge vectors spanning a plane with normal (1, 1, 1).  The vertex
    # placement is chosen so that the centroid coincides exactly with the
    # grid point.
    edge_a = np.array([1.0, -1.0, 0.0], dtype=np.float32)
    edge_b = np.array([1.0, 1.0, -2.0], dtype=np.float32)
    edge_a = edge_a / np.linalg.norm(edge_a) * half_extent
    edge_b = edge_b / np.linalg.norm(edge_b) * (half_extent * 0.5)
    v0 = centre - edge_a - edge_b
    v1 = centre + edge_a - edge_b
    v2 = centre + 2.0 * edge_b
    triangle = Triangle(v0=v0, v1=v1, v2=v2, primitive_index=primitive_index)
    if flipped:
        triangle = triangle.flipped()
        triangle.primitive_index = primitive_index
    return triangle


def ray_triangle_intersect(
    ray: Ray, v0: np.ndarray, v1: np.ndarray, v2: np.ndarray
) -> Tuple[bool, float, bool]:
    """Möller-Trumbore ray/triangle intersection.

    Returns ``(hit, t, front_face)``.  ``front_face`` is True when the ray hits
    the side from which the winding order appears counter-clockwise, i.e. when
    the ray direction opposes the geometric normal.
    """
    edge1 = v1 - v0
    edge2 = v2 - v0
    pvec = np.cross(ray.direction, edge2)
    det = float(np.dot(edge1, pvec))
    if abs(det) < EPSILON:
        return False, float("inf"), True
    inv_det = 1.0 / det
    tvec = ray.origin - v0
    u = float(np.dot(tvec, pvec)) * inv_det
    if u < -EPSILON or u > 1.0 + EPSILON:
        return False, float("inf"), True
    qvec = np.cross(tvec, edge1)
    v = float(np.dot(ray.direction, qvec)) * inv_det
    if v < -EPSILON or u + v > 1.0 + EPSILON:
        return False, float("inf"), True
    t = float(np.dot(edge2, qvec)) * inv_det
    if t < ray.tmin or t > ray.tmax:
        return False, float("inf"), True
    # Convention: triangles created by make_key_triangle (flipped=False) report
    # a front-face hit for rays fired along the positive axes; flipping the
    # winding order turns the same hit into a back-face hit.
    front_face = det < 0.0
    return True, t, front_face


def ray_triangles_intersect(
    ray: Ray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised Möller-Trumbore intersection of one ray against many triangles.

    ``vertices`` is an ``(n, 3, 3)`` array.  Returns three parallel arrays:
    ``hit_mask`` (bool), ``t`` (float, ``inf`` where missed) and ``front_face``
    (bool).
    """
    vertices = np.asarray(vertices, dtype=np.float32)
    if vertices.size == 0:
        empty = np.zeros(0)
        return empty.astype(bool), empty.astype(np.float32), empty.astype(bool)
    v0 = vertices[:, 0, :]
    v1 = vertices[:, 1, :]
    v2 = vertices[:, 2, :]
    edge1 = v1 - v0
    edge2 = v2 - v0
    direction = ray.direction.astype(np.float64)
    origin = ray.origin.astype(np.float64)
    pvec = np.cross(direction, edge2)
    det = np.einsum("ij,ij->i", edge1, pvec)
    near_zero = np.abs(det) < EPSILON
    safe_det = np.where(near_zero, 1.0, det)
    inv_det = 1.0 / safe_det
    tvec = origin - v0
    u = np.einsum("ij,ij->i", tvec, pvec) * inv_det
    qvec = np.cross(tvec, edge1)
    v = np.einsum("j,ij->i", direction, qvec) * inv_det
    t = np.einsum("ij,ij->i", edge2, qvec) * inv_det
    hit_mask = (
        ~near_zero
        & (u >= -EPSILON)
        & (u <= 1.0 + EPSILON)
        & (v >= -EPSILON)
        & (u + v <= 1.0 + EPSILON)
        & (t >= ray.tmin)
        & (t <= ray.tmax)
    )
    t_out = np.where(hit_mask, t, np.inf).astype(np.float32)
    # Same convention as ray_triangle_intersect: unflipped key triangles report
    # front-face hits for rays fired along the positive axes.
    front_face = det < 0.0
    return hit_mask, t_out, front_face


def ray_aabb_intersect(ray: Ray, minimum: np.ndarray, maximum: np.ndarray) -> bool:
    """Slab-method ray/AABB intersection test used by the BVH traversal."""
    t_near = ray.tmin
    t_far = ray.tmax
    for axis in range(3):
        direction = float(ray.direction[axis])
        origin = float(ray.origin[axis])
        lo = float(minimum[axis])
        hi = float(maximum[axis])
        if abs(direction) < EPSILON:
            if origin < lo or origin > hi:
                return False
            continue
        inv = 1.0 / direction
        t0 = (lo - origin) * inv
        t1 = (hi - origin) * inv
        if t0 > t1:
            t0, t1 = t1, t0
        t_near = max(t_near, t0)
        t_far = min(t_far, t1)
        if t_near > t_far:
            return False
    return True


def ray_aabbs_intersect(
    ray: Ray, minima: np.ndarray, maxima: np.ndarray
) -> np.ndarray:
    """Vectorised slab test of one ray against many AABBs.

    ``minima`` and ``maxima`` are ``(n, 3)`` arrays; returns a boolean mask.
    """
    minima = np.asarray(minima, dtype=np.float32)
    maxima = np.asarray(maxima, dtype=np.float32)
    if minima.size == 0:
        return np.zeros(0, dtype=bool)
    direction = ray.direction.astype(np.float64)
    origin = ray.origin.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(np.abs(direction) < EPSILON, np.inf, 1.0 / direction)
        t0 = (minima - origin) * inv
        t1 = (maxima - origin) * inv
    t_small = np.minimum(t0, t1)
    t_big = np.maximum(t0, t1)
    # Axes where the direction is (near) zero only hit when the origin lies
    # within the slab.
    parallel = np.abs(direction) < EPSILON
    inside = (origin >= minima) & (origin <= maxima)
    t_small = np.where(parallel, -np.inf, t_small)
    t_big = np.where(parallel, np.inf, t_big)
    t_near = np.maximum(t_small.max(axis=1), ray.tmin)
    t_far = np.minimum(t_big.min(axis=1), ray.tmax)
    mask = t_near <= t_far
    # Reject boxes whose parallel-axis slab does not contain the origin.
    bad_parallel = (parallel & ~inside).any(axis=1)
    return mask & ~bad_parallel
