"""Wavefront (batched) BVH traversal over structure-of-arrays node tables.

The scalar traversal paths in :mod:`repro.rtx.traversal` process one ray at a
time: every node visit pays Python interpreter overhead and (on the general
path) allocates small numpy temporaries inside ``_slab_test``.  The index
structures, however, fire rays in *batches* of thousands — exactly the shape
the RT hardware consumes — so this module provides the vectorized equivalent:
all rays of a batch advance through the BVH in lockstep, one step per
iteration, with an active-ray mask selecting the rays that still have stack
entries.  Per step, every active ray pops the top of its own traversal stack
and the bounding-volume tests for the whole front are evaluated as single
numpy expressions over gathered node rows.

Bit-parity contract
-------------------

The wavefront kernels are a pure re-scheduling of the scalar traversal: each
ray follows exactly the same stack discipline (near child on top), performs
the same comparisons in the same IEEE-double precision, and updates its
closest-hit bound in the same order.  Hit records, per-ray node-visit counts
and the :class:`~repro.rtx.traversal.RayStats` totals are therefore *identical*
to tracing the rays one by one — the scalar paths remain the reference oracle
and the test suite pins the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import profile as _profile
from repro.rtx.bvh import Bvh
from repro.rtx.geometry import HitRecord, Ray, ray_triangles_intersect

#: For each ray axis, the two perpendicular axes checked by the fast path
#: (mirrors ``traversal._PERP_AXES``).
_PERP_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


class SoaBvh:
    """Contiguous SoA views of a BVH, built once and shared by all batches.

    The scalar fast path rebuilds Python list tables per engine; the wavefront
    kernels instead gather directly from these float64/int64 arrays.  The
    float64 promotion matches the scalar paths, which convert the float32 node
    bounds to Python floats (i.e. doubles) before comparing.
    """

    def __init__(self, bvh: Bvh) -> None:
        self.bvh = bvh
        self.num_nodes = bvh.num_nodes
        self.node_min = np.ascontiguousarray(bvh.node_min.astype(np.float64))
        self.node_max = np.ascontiguousarray(bvh.node_max.astype(np.float64))
        self.node_left = np.ascontiguousarray(bvh.node_left.astype(np.int64))
        self.node_right = np.ascontiguousarray(bvh.node_right.astype(np.int64))
        self.node_count = np.ascontiguousarray(bvh.node_count.astype(np.int64))
        #: Stack capacity: one slot per tree level plus push slack.
        self.stack_depth = bvh.depth() + 3

        # Padded leaf table: row ``n`` holds the scene-triangle indices of
        # leaf ``n`` (``-1``-padded to the widest leaf).  Interior rows are
        # fully padded.
        width = max(1, int(bvh.node_count.max()) if self.num_nodes else 1)
        lanes = np.arange(width, dtype=np.int64)
        valid = lanes[None, :] < bvh.node_count[:, None]
        slots = np.where(valid, bvh.node_first[:, None] + lanes[None, :], 0)
        triangles = bvh.primitive_order[slots] if bvh.num_primitives else np.zeros_like(slots)
        self.leaf_triangles = np.where(valid, triangles, -1)
        self.leaf_valid = valid

        scene = bvh.scene
        self.centroids = (
            scene.centroids().astype(np.float64)
            if bvh.num_primitives
            else np.zeros((0, 3), dtype=np.float64)
        )
        self.primitive_indices = np.asarray(scene.primitive_indices, dtype=np.int64)
        self.flipped = np.asarray(scene.flipped, dtype=bool)


@dataclass
class RayBatch:
    """Pre-stacked SoA arrays describing a batch of arbitrary-direction rays.

    :func:`trace_closest_batch` historically rebuilt these arrays from Ray
    objects with per-ray list comprehensions on every call; callers that
    already hold stacked arrays pass a ``RayBatch`` instead and skip that
    Python churn entirely.  ``from_rays`` keeps the Ray-object path as a thin
    adapter, and :meth:`ray` materialises a single Ray on demand for the
    (rare) leaf intersection tests.
    """

    #: Ray origins, ``(R, 3)`` float64.
    origins: np.ndarray
    #: Ray directions, ``(R, 3)`` float64.
    directions: np.ndarray
    #: Per-ray minimum hit distance, ``(R,)`` float64.
    tmin: np.ndarray
    #: Per-ray maximum hit distance, ``(R,)`` float64.
    tmax: np.ndarray

    @classmethod
    def from_rays(cls, rays: Sequence[Ray]) -> "RayBatch":
        """Stack Ray objects into SoA form (the adapter the legacy path uses)."""
        return cls(
            origins=np.stack([ray.origin.astype(np.float64) for ray in rays])
            if len(rays)
            else np.zeros((0, 3), dtype=np.float64),
            directions=np.stack([ray.direction.astype(np.float64) for ray in rays])
            if len(rays)
            else np.zeros((0, 3), dtype=np.float64),
            tmin=np.asarray([ray.tmin for ray in rays], dtype=np.float64),
            tmax=np.asarray([ray.tmax for ray in rays], dtype=np.float64),
        )

    @property
    def num_rays(self) -> int:
        return int(self.tmin.shape[0])

    def ray(self, index: int) -> Ray:
        """Materialise ray ``index`` as a Ray object."""
        return Ray(
            self.origins[index],
            self.directions[index],
            float(self.tmin[index]),
            float(self.tmax[index]),
        )

    def __len__(self) -> int:
        return self.num_rays

    def __iter__(self):
        for index in range(self.num_rays):
            yield self.ray(index)


@dataclass
class AxisClosestBatch:
    """Closest-hit results of a batch of axis-aligned rays."""

    #: Per-ray hit flag.
    hit: np.ndarray
    #: Per-ray hit distance (meaningless where ``hit`` is False).
    t: np.ndarray
    #: Per-ray primitive index (-1 for misses).
    primitive_index: np.ndarray
    #: Per-ray front-face flag.
    front_face: np.ndarray
    #: Per-ray hit point (the triangle centre, float32 like the scalar path;
    #: zeros where the ray missed).
    point: np.ndarray
    #: Per-ray BVH nodes visited (for divergence sampling).
    nodes_visited: np.ndarray

    @property
    def num_rays(self) -> int:
        return int(self.hit.shape[0])


@dataclass
class AxisAllBatch:
    """All-hits results of a batch of axis-aligned rays (flattened, ragged).

    Hits are grouped by ray and sorted by distance within each ray — the same
    order the scalar ``trace_axis_all`` returns, including the stable
    tie-break on traversal order.
    """

    #: Ray id of every hit (grouped, ascending).
    ray: np.ndarray
    #: Hit distances aligned with ``ray``.
    t: np.ndarray
    #: Primitive indices aligned with ``ray``.
    primitive_index: np.ndarray
    #: Front-face flags aligned with ``ray``.
    front_face: np.ndarray
    #: Hit points aligned with ``ray`` (float32 triangle centres).
    point: np.ndarray
    #: Number of hits per ray.
    hit_counts: np.ndarray
    #: Per-ray BVH nodes visited.
    nodes_visited: np.ndarray

    @property
    def num_rays(self) -> int:
        return int(self.hit_counts.shape[0])


def _empty_axis_closest(num_rays: int) -> AxisClosestBatch:
    return AxisClosestBatch(
        hit=np.zeros(num_rays, dtype=bool),
        t=np.full(num_rays, np.inf, dtype=np.float64),
        primitive_index=np.full(num_rays, -1, dtype=np.int64),
        front_face=np.ones(num_rays, dtype=bool),
        point=np.zeros((num_rays, 3), dtype=np.float32),
        nodes_visited=np.zeros(num_rays, dtype=np.int64),
    )


def _empty_axis_all(num_rays: int) -> AxisAllBatch:
    return AxisAllBatch(
        ray=np.empty(0, dtype=np.int64),
        t=np.empty(0, dtype=np.float64),
        primitive_index=np.empty(0, dtype=np.int64),
        front_face=np.empty(0, dtype=bool),
        point=np.zeros((0, 3), dtype=np.float32),
        hit_counts=np.zeros(num_rays, dtype=np.int64),
        nodes_visited=np.zeros(num_rays, dtype=np.int64),
    )


def trace_axis_batch(
    soa: SoaBvh,
    axis: int,
    origins: np.ndarray,
    tmax: np.ndarray,
    tolerance: float,
    collect_all: bool,
    stats,
) -> "AxisClosestBatch | AxisAllBatch":
    """Trace a batch of +``axis`` rays through the BVH in lockstep.

    ``origins`` is ``(R, 3)`` float64, ``tmax`` is ``(R,)`` float64.  ``stats``
    is a :class:`~repro.rtx.traversal.RayStats` accumulated with the exact
    totals the scalar per-ray path would produce.
    """
    origins = np.asarray(origins, dtype=np.float64)
    num_rays = int(origins.shape[0])
    stats.rays_cast += num_rays
    if num_rays == 0:
        return _empty_axis_all(0) if collect_all else _empty_axis_closest(0)
    if soa.num_nodes == 0:
        stats.misses += num_rays
        return (
            _empty_axis_all(num_rays) if collect_all else _empty_axis_closest(num_rays)
        )

    perp_a, perp_b = _PERP_AXES[axis]
    origin_axis = origins[:, axis]
    coord_a = origins[:, perp_a]
    coord_b = origins[:, perp_b]
    slack = tolerance  # AABBs already include the triangle extent.

    best_t = np.asarray(tmax, dtype=np.float64).copy()
    has_best = np.zeros(num_rays, dtype=bool)
    best_triangle = np.zeros(num_rays, dtype=np.int64)
    nodes_visited = np.zeros(num_rays, dtype=np.int64)
    triangle_tests = 0

    stack = np.zeros((num_rays, soa.stack_depth), dtype=np.int64)
    pointer = np.ones(num_rays, dtype=np.int64)  # stack[:, 0] == root

    hit_rays: List[np.ndarray] = []
    hit_ts: List[np.ndarray] = []
    hit_triangles: List[np.ndarray] = []

    iterations = 0
    active = np.nonzero(pointer > 0)[0]
    while active.size:
        iterations += 1
        pointer[active] -= 1
        node = stack[active, pointer[active]]
        nodes_visited[active] += 1

        node_min = soa.node_min[node]
        node_max = soa.node_max[node]
        ray_a = coord_a[active]
        ray_b = coord_b[active]
        ray_o = origin_axis[active]
        passes = (
            (ray_a >= node_min[:, perp_a] - slack)
            & (ray_a <= node_max[:, perp_a] + slack)
            & (ray_b >= node_min[:, perp_b] - slack)
            & (ray_b <= node_max[:, perp_b] + slack)
            & (node_max[:, axis] >= ray_o)
            & (node_min[:, axis] <= ray_o + best_t[active])
        )
        counts = soa.node_count[node]

        leaf = np.nonzero(passes & (counts > 0))[0]
        if leaf.size:
            leaf_rays = active[leaf]
            leaf_nodes = node[leaf]
            triangle_tests += int(counts[leaf].sum())
            triangles = soa.leaf_triangles[leaf_nodes]
            valid = soa.leaf_valid[leaf_nodes]
            centres = soa.centroids[np.where(valid, triangles, 0)]
            ts = centres[:, :, axis] - origin_axis[leaf_rays][:, None]
            candidate = (
                valid
                & (np.abs(centres[:, :, perp_a] - coord_a[leaf_rays][:, None]) <= tolerance)
                & (np.abs(centres[:, :, perp_b] - coord_b[leaf_rays][:, None]) <= tolerance)
                & (ts >= 0.0)
                & (ts <= best_t[leaf_rays][:, None])
            )
            if collect_all:
                rows, lanes = np.nonzero(candidate)
                if rows.size:
                    hit_rays.append(leaf_rays[rows])
                    hit_ts.append(ts[rows, lanes])
                    hit_triangles.append(triangles[rows, lanes])
            else:
                masked = np.where(candidate, ts, np.inf)
                leaf_best = masked.min(axis=1)
                leaf_lane = np.argmin(masked, axis=1)  # first minimum: slot order
                any_candidate = candidate.any(axis=1)
                accept = any_candidate & (
                    ~has_best[leaf_rays] | (leaf_best < best_t[leaf_rays])
                )
                if accept.any():
                    rows = np.nonzero(accept)[0]
                    accepted_rays = leaf_rays[rows]
                    has_best[accepted_rays] = True
                    best_t[accepted_rays] = leaf_best[rows]
                    best_triangle[accepted_rays] = triangles[rows, leaf_lane[rows]]

        inner = np.nonzero(passes & (counts == 0))[0]
        if inner.size:
            inner_rays = active[inner]
            inner_nodes = node[inner]
            left = soa.node_left[inner_nodes]
            right = soa.node_right[inner_nodes]
            # Push the farther child first so the nearer one is visited next
            # (identical to the scalar near-first ordering).
            left_near = soa.node_min[left, axis] <= soa.node_min[right, axis]
            near = np.where(left_near, left, right)
            far = np.where(left_near, right, left)
            top = pointer[inner_rays]
            stack[inner_rays, top] = far
            stack[inner_rays, top + 1] = near
            pointer[inner_rays] = top + 2

        # A ray with an empty stack is finished for good: filter within the
        # current front instead of rescanning the whole batch.
        active = active[pointer[active] > 0]

    total_nodes = int(nodes_visited.sum())
    stats.nodes_visited += total_nodes
    stats.aabb_tests += total_nodes
    stats.triangle_tests += triangle_tests

    # Profiling hook: each active ray advances one node per iteration, so
    # total node visits double as the lane-step count and mean occupancy is
    # total_nodes / (iterations * num_rays).  One global read when disabled.
    prof = _profile.profiler()
    if prof is not None:
        prof.observe_wavefront("trace_axis_batch", iterations, num_rays, total_nodes)

    if collect_all:
        if hit_rays:
            ray_ids = np.concatenate(hit_rays)
            ts = np.concatenate(hit_ts)
            triangles = np.concatenate(hit_triangles)
            # Stable sort by (ray, t): equal-t hits keep traversal order, the
            # same tie-break Python's stable list sort gives the scalar path.
            order = np.lexsort((ts, ray_ids))
            ray_ids = ray_ids[order]
            ts = ts[order]
            triangles = triangles[order]
        else:
            ray_ids = np.empty(0, dtype=np.int64)
            ts = np.empty(0, dtype=np.float64)
            triangles = np.empty(0, dtype=np.int64)
        hit_counts = np.bincount(ray_ids, minlength=num_rays).astype(np.int64)
        rays_hit = int((hit_counts > 0).sum())
        stats.hits += rays_hit
        stats.misses += num_rays - rays_hit
        return AxisAllBatch(
            ray=ray_ids,
            t=ts,
            primitive_index=soa.primitive_indices[triangles]
            if ts.size
            else np.empty(0, dtype=np.int64),
            front_face=~soa.flipped[triangles] if ts.size else np.empty(0, dtype=bool),
            point=soa.centroids[triangles].astype(np.float32)
            if ts.size
            else np.zeros((0, 3), dtype=np.float32),
            hit_counts=hit_counts,
            nodes_visited=nodes_visited,
        )

    hits = int(has_best.sum())
    stats.hits += hits
    stats.misses += num_rays - hits
    point = np.zeros((num_rays, 3), dtype=np.float32)
    if hits:
        point[has_best] = soa.centroids[best_triangle[has_best]].astype(np.float32)
    return AxisClosestBatch(
        hit=has_best,
        t=best_t,
        primitive_index=np.where(
            has_best, soa.primitive_indices[best_triangle], -1
        ).astype(np.int64),
        front_face=np.where(has_best, ~soa.flipped[best_triangle], True),
        point=point,
        nodes_visited=nodes_visited,
    )


def trace_closest_batch(
    soa: SoaBvh,
    vertices: np.ndarray,
    primitive_indices: np.ndarray,
    rays: "Sequence[Ray] | RayBatch",
    stats,
) -> List[HitRecord]:
    """General wavefront closest-hit traversal for arbitrary-direction rays.

    The slab (ray/AABB) tests — the part of the scalar path that allocates
    numpy temporaries per node — are evaluated vectorized across the whole
    active front; the (rare) leaf intersection tests reuse the exact scalar
    triangle routine per ray, which keeps the hit records and
    :class:`~repro.rtx.traversal.RayStats` totals bit-identical to
    ``trace_closest``.

    ``rays`` is either a sequence of Ray objects or a pre-stacked
    :class:`RayBatch` — the fast path, which skips the per-ray stacking
    comprehensions entirely.
    """
    if isinstance(rays, RayBatch):
        batch = rays

        def leaf_ray(ray_id: int) -> Ray:
            return batch.ray(ray_id)

    else:

        def leaf_ray(ray_id: int) -> Ray:
            return rays[ray_id]

        batch = RayBatch.from_rays(rays)
    num_rays = batch.num_rays
    stats.rays_cast += num_rays
    records = [HitRecord() for _ in range(num_rays)]
    if num_rays == 0:
        return records
    if soa.num_nodes == 0:
        stats.misses += num_rays
        return records

    origins = batch.origins
    directions = batch.directions
    parallel = np.abs(directions) < 1e-12
    with np.errstate(divide="ignore"):
        inv_dir = np.where(parallel, np.inf, 1.0 / directions)
    tmin = batch.tmin
    best_t = batch.tmax.astype(np.float64, copy=True)

    stack = np.zeros((num_rays, soa.stack_depth), dtype=np.int64)
    pointer = np.ones(num_rays, dtype=np.int64)

    iterations = 0
    lane_steps = 0
    active = np.nonzero(pointer > 0)[0]
    while active.size:
        iterations += 1
        lane_steps += int(active.size)
        pointer[active] -= 1
        node = stack[active, pointer[active]]
        stats.nodes_visited += int(active.size)
        stats.aabb_tests += int(active.size)

        node_min = soa.node_min[node]
        node_max = soa.node_max[node]
        ray_origin = origins[active]
        ray_inv = inv_dir[active]
        ray_parallel = parallel[active]
        with np.errstate(invalid="ignore"):
            t0 = (node_min - ray_origin) * ray_inv
            t1 = (node_max - ray_origin) * ray_inv
            t_small = np.minimum(t0, t1)
            t_big = np.maximum(t0, t1)
        inside = (ray_origin >= node_min) & (ray_origin <= node_max)
        parallel_miss = (ray_parallel & ~inside).any(axis=1)
        t_small = np.where(ray_parallel, -np.inf, t_small)
        t_big = np.where(ray_parallel, np.inf, t_big)
        t_near = np.maximum(t_small.max(axis=1), tmin[active])
        t_far = np.minimum(t_big.min(axis=1), best_t[active])
        passes = ~parallel_miss & (t_near <= t_far)

        counts = soa.node_count[node]
        leaf = np.nonzero(passes & (counts > 0))[0]
        for offset in leaf:
            ray_id = int(active[offset])
            ray = leaf_ray(ray_id)
            local = soa.bvh.leaf_primitive_indices(int(node[offset]))
            stats.triangle_tests += len(local)
            hit_mask, t_values, front = ray_triangles_intersect(
                Ray(ray.origin, ray.direction, ray.tmin, float(best_t[ray_id])),
                vertices[local],
            )
            if hit_mask.any():
                hit_positions = np.nonzero(hit_mask)[0]
                best_local = hit_positions[np.argmin(t_values[hit_positions])]
                t = float(t_values[best_local])
                if t < best_t[ray_id]:
                    best_t[ray_id] = t
                    scene_tri = int(local[best_local])
                    records[ray_id] = HitRecord(
                        hit=True,
                        t=t,
                        primitive_index=int(primitive_indices[scene_tri]),
                        front_face=bool(front[best_local]),
                        point=ray.origin + t * ray.direction,
                    )

        inner = np.nonzero(passes & (counts == 0))[0]
        if inner.size:
            inner_rays = active[inner]
            inner_nodes = node[inner]
            top = pointer[inner_rays]
            # Scalar order: push left, then right (right is popped first).
            stack[inner_rays, top] = soa.node_left[inner_nodes]
            stack[inner_rays, top + 1] = soa.node_right[inner_nodes]
            pointer[inner_rays] = top + 2

        active = active[pointer[active] > 0]

    prof = _profile.profiler()
    if prof is not None:
        prof.observe_wavefront("trace_closest_batch", iterations, num_rays, lane_steps)

    for record in records:
        if record.hit:
            stats.hits += 1
        else:
            stats.misses += 1
    return records
