"""Compiled hot-path tier: fused traversal megakernel over quantized tables.

The vector engine (:mod:`repro.rtx.wavefront`) advances every ray of a batch
in lockstep, paying ~25 numpy dispatches per BVH level plus float64-promoted
copies of every node table.  This module removes both costs for the
axis-aligned closest-hit path — the one the indexes fire millions of times:

* **Megakernel.**  One compiled loop per ray runs traversal-pop, slab test,
  leaf intersection and stack-push back to back (no per-step numpy dispatch,
  no masked re-gathers).
* **Quantized cache-blocked node tables.**  Per node, a 12-byte record of
  uint16 AABB bounds quantized against a per-tree frame, rounded *outward* so
  a quantized reject implies the exact reject.  The kernel tests the 12-byte
  record first and only touches the float32 bounds (promoted to double
  in-register, exactly like the scalar oracle's ``astype(float)``) when the
  cheap test passes — traversal may *consider* a superset of nodes at the
  prefilter but visits, counters and hit results stay bit-identical to the
  scalar path.
* **Shard-local arenas.**  All tables live in one reusable byte buffer that
  is rebuilt in place across build/refit epochs instead of reallocated.

Three interchangeable backends provide the kernels, resolved lazily:

``numba``
    ``@njit`` versions of the reference kernels (installed via the
    ``[compiled]`` extra).
``cc``
    The same kernels as C, compiled at first use with the system C compiler
    into a cached shared library and bound through :mod:`ctypes`.  No Python
    dependency beyond the standard library.
``python``
    The un-jitted reference kernels (selectable only through
    ``REPRO_COMPILED_BACKEND`` — slow, used to test kernel logic).

When no backend is available, callers degrade to the vector engine and a
telemetry gauge records the fallback (see
:func:`repro.core.config.resolve_engine`).

Bit-parity contract
-------------------

The megakernel follows the scalar ``_trace_axis`` stack discipline exactly
(root first, far child pushed before near, visit counted at pop *before* any
test), performs every accepted comparison in IEEE double precision with the
same operand expressions, and applies the same first-minimum tie-break.  Hit
records, per-ray node-visit counts and :class:`~repro.rtx.traversal.RayStats`
totals are therefore identical to the scalar oracle — pinned by the test
suite together with a conservativeness property test for the quantized
bounds.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

from repro.obs import profile as _profile
from repro.rtx.bvh import Bvh
from repro.rtx.wavefront import AxisClosestBatch, SoaBvh, _PERP_AXES

#: Fixed traversal stack capacity of the compiled kernels.  Trees deeper than
#: this fall back to the vector engine (never hit in practice: the stack need
#: is ``depth + 3`` and the builder produces balanced trees).
MAX_STACK = 512

#: Quantization grid: bounds map onto ``[0, 65534]`` with one step of slack so
#: the outward fixup never runs out of headroom at the top of the range.
_QUANT_STEPS = 65534

# --------------------------------------------------------------------------
# Backend resolution
# --------------------------------------------------------------------------

#: Resolved backend name (``"numba"`` / ``"cc"`` / ``"python"``) or ``None``
#: when the compiled tier is unavailable.  ``"unresolved"`` until first probe.
_BACKEND: Optional[str] = "unresolved"
_KERNELS: Optional[Tuple] = None

#: Reason recorded by the most recent :func:`record_fallback` call (tests and
#: diagnostics; the telemetry gauge is the observable surface).
last_fallback_reason: Optional[str] = None


def reset_backend_cache() -> None:
    """Forget the resolved backend so the next probe re-reads the environment."""
    global _BACKEND, _KERNELS
    _BACKEND = "unresolved"
    _KERNELS = None


def available_backend() -> Optional[str]:
    """The active kernel backend, resolving (and caching) it on first call.

    Honours ``REPRO_COMPILED_BACKEND`` (``numba`` / ``cc`` / ``python`` /
    ``none``); otherwise prefers numba, then the system C compiler.
    """
    global _BACKEND, _KERNELS
    if _BACKEND != "unresolved":
        return _BACKEND

    forced = os.environ.get("REPRO_COMPILED_BACKEND", "").strip().lower()
    if forced == "none":
        _BACKEND = None
        return None
    candidates = [forced] if forced in ("numba", "cc", "python") else ["numba", "cc"]

    for name in candidates:
        kernels = _load_backend(name)
        if kernels is not None:
            _BACKEND = name
            _KERNELS = kernels
            return name
    _BACKEND = None
    return None


def backend_kernels() -> Optional[Tuple]:
    """``(axis_kernel, chain_kernel)`` for the active backend, or ``None``."""
    if available_backend() is None:
        return None
    return _KERNELS


def record_fallback(reason: str) -> None:
    """Note a compiled→vector degradation on the telemetry surface."""
    global last_fallback_reason
    last_fallback_reason = reason
    prof = _profile.profiler()
    if prof is not None:
        prof.observe_compiled_fallback(reason)


def _load_backend(name: str) -> Optional[Tuple]:
    if name == "python":
        return (_axis_kernel_py, _chain_kernel_py)
    if name == "numba":
        try:
            import numba
        except ImportError:
            return None
        # Serial by design: rays are independent, so ``parallel=True`` would
        # also be deterministic, but serial keeps the first-call compile cheap
        # and the profiling counters trivially comparable.
        jit = numba.njit(cache=False, fastmath=False)
        return (jit(_axis_kernel_py), jit(_chain_kernel_py))
    if name == "cc":
        library = _load_cc_library()
        if library is None:
            return None
        return (_make_cc_axis(library), _make_cc_chain(library))
    return None


# --------------------------------------------------------------------------
# Reference kernels (numba source + pure-Python backend)
# --------------------------------------------------------------------------


def _axis_kernel_py(
    axis,
    perp_a,
    perp_b,
    origin_axis,
    coord_a,
    coord_b,
    best_t,
    tolerance,
    qbounds,
    frame_min,
    frame_scale,
    node_min,
    node_max,
    node_left,
    node_right,
    node_first,
    node_count,
    order,
    centroids,
    hit,
    best_tri,
    nodes_visited,
    tri_tests,
):
    """Fused axis-aligned closest-hit traversal (reference implementation).

    Mirrors ``TraversalEngine._trace_axis`` statement for statement; the
    quantized prefilter in front of each exact test only rejects nodes the
    exact test would reject (bounds are dequantized outward), so counters and
    results are unchanged.
    """
    num_rays = origin_axis.shape[0]
    fa = frame_min[perp_a]
    sa = frame_scale[perp_a]
    fb = frame_min[perp_b]
    sb = frame_scale[perp_b]
    fx = frame_min[axis]
    sx = frame_scale[axis]
    stack = np.empty(MAX_STACK, dtype=np.int32)
    for r in range(num_rays):
        o = origin_axis[r]
        ca = coord_a[r]
        cb = coord_b[r]
        bt = best_t[r]
        pointer = 0
        stack[pointer] = 0
        pointer += 1
        visits = np.int64(0)
        tests = np.int64(0)
        tri_best = np.int64(0)
        has = False
        while pointer > 0:
            pointer -= 1
            n = stack[pointer]
            visits += 1
            q = qbounds[n]
            if ca < fa + q[perp_a] * sa - tolerance or ca > fa + q[3 + perp_a] * sa + tolerance:
                continue
            if cb < fb + q[perp_b] * sb - tolerance or cb > fb + q[3 + perp_b] * sb + tolerance:
                continue
            if fx + q[3 + axis] * sx < o or fx + q[axis] * sx > o + bt:
                continue
            mn = node_min[n]
            mx = node_max[n]
            if ca < mn[perp_a] - tolerance or ca > mx[perp_a] + tolerance:
                continue
            if cb < mn[perp_b] - tolerance or cb > mx[perp_b] + tolerance:
                continue
            if mx[axis] < o or mn[axis] > o + bt:
                continue
            count = node_count[n]
            if count > 0:
                first = node_first[n]
                tests += count
                for slot in range(first, first + count):
                    tri = order[slot]
                    centre = centroids[tri]
                    if abs(centre[perp_a] - ca) > tolerance:
                        continue
                    if abs(centre[perp_b] - cb) > tolerance:
                        continue
                    t = centre[axis] - o
                    if t < 0.0 or t > bt:
                        continue
                    if not has or t < bt:
                        has = True
                        bt = t
                        tri_best = np.int64(tri)
            else:
                left = node_left[n]
                right = node_right[n]
                if node_min[left, axis] <= node_min[right, axis]:
                    stack[pointer] = right
                    stack[pointer + 1] = left
                else:
                    stack[pointer] = left
                    stack[pointer + 1] = right
                pointer += 2
        hit[r] = 1 if has else 0
        best_t[r] = bt
        best_tri[r] = tri_best
        nodes_visited[r] = visits
        tri_tests[r] = tests


def _chain_kernel_py(
    target64,
    start_pos,
    order_len,
    order,
    capacity,
    key_is_64,
    keys64,
    keys32,
    row_ids,
    sizes,
    max_keys,
    next_node,
    row_sum,
    matches,
    nodes_visited,
    entries,
):
    """Fused node-chain point-lookup walk (reference implementation).

    Mirrors ``CgRXuIndex._collect`` over the flattened ``(order, starts)``
    tables: the cross-bucket continuation is the same ``position += 1`` step.
    ``keys64`` / ``keys32`` alias the same node-key slab; ``key_is_64``
    selects which typed view the comparisons use.
    """
    num_keys = target64.shape[0]
    for k in range(num_keys):
        target = target64[k]
        target32 = np.uint32(target)
        pos = start_pos[k]
        visits = np.int64(0)
        touched = np.int64(0)
        matched = np.int64(0)
        rsum = np.int64(0)
        while pos < order_len:
            node = order[pos]
            visits += 1
            size = sizes[node]
            if max_keys[node] < target and next_node[node] != -1:
                pos += 1
                continue
            left = np.int64(0)
            right = np.int64(0)
            if key_is_64:
                for i in range(size):
                    value = keys64[node, i]
                    if value < target:
                        left += 1
                    if value <= target:
                        right += 1
            else:
                for i in range(size):
                    value32 = keys32[node, i]
                    if value32 < target32:
                        left += 1
                    if value32 <= target32:
                        right += 1
            span = right - left
            touched += span if span > 1 else 1
            if span > 0:
                for i in range(left, right):
                    rsum += row_ids[node, i]
                matched += span
            if right < size:
                break
            pos += 1
        row_sum[k] = rsum
        matches[k] = matched
        nodes_visited[k] = visits
        entries[k] = touched


# --------------------------------------------------------------------------
# C backend
# --------------------------------------------------------------------------

_CC_SOURCE = r"""
#include <math.h>
#include <stdint.h>

#define MAX_STACK 512

void trace_axis_closest(
    int32_t axis, int32_t perp_a, int32_t perp_b,
    int64_t num_rays,
    const double* origin_axis, const double* coord_a, const double* coord_b,
    double* best_t,
    double tolerance,
    const uint16_t* qbounds,
    const double* frame_min, const double* frame_scale,
    const float* node_min, const float* node_max,
    const int32_t* node_left, const int32_t* node_right,
    const int32_t* node_first, const int32_t* node_count,
    const int32_t* order,
    const double* centroids,
    uint8_t* hit, int64_t* best_tri,
    int64_t* nodes_visited, int64_t* tri_tests)
{
    const double fa = frame_min[perp_a], sa = frame_scale[perp_a];
    const double fb = frame_min[perp_b], sb = frame_scale[perp_b];
    const double fx = frame_min[axis],  sx = frame_scale[axis];
    for (int64_t r = 0; r < num_rays; r++) {
        int32_t stack[MAX_STACK];
        int32_t sp = 0;
        stack[sp++] = 0;
        const double o = origin_axis[r];
        const double ca = coord_a[r];
        const double cb = coord_b[r];
        double bt = best_t[r];
        int64_t visits = 0, tests = 0, tri_best = 0;
        int has = 0;
        while (sp > 0) {
            const int32_t n = stack[--sp];
            visits++;
            const uint16_t* q = qbounds + 6 * (int64_t)n;
            /* Quantized bounds are rounded outward: a reject here implies the
               exact float32 test below rejects, so counters are unchanged. */
            if (ca < fa + (double)q[perp_a] * sa - tolerance ||
                ca > fa + (double)q[3 + perp_a] * sa + tolerance)
                continue;
            if (cb < fb + (double)q[perp_b] * sb - tolerance ||
                cb > fb + (double)q[3 + perp_b] * sb + tolerance)
                continue;
            if (fx + (double)q[3 + axis] * sx < o ||
                fx + (double)q[axis] * sx > o + bt)
                continue;
            const float* mn = node_min + 3 * (int64_t)n;
            const float* mx = node_max + 3 * (int64_t)n;
            if (ca < (double)mn[perp_a] - tolerance || ca > (double)mx[perp_a] + tolerance)
                continue;
            if (cb < (double)mn[perp_b] - tolerance || cb > (double)mx[perp_b] + tolerance)
                continue;
            if ((double)mx[axis] < o || (double)mn[axis] > o + bt)
                continue;
            const int32_t count = node_count[n];
            if (count > 0) {
                const int32_t first = node_first[n];
                tests += count;
                for (int32_t s = first; s < first + count; s++) {
                    const int64_t tri = (int64_t)order[s];
                    const double* c = centroids + 3 * tri;
                    if (fabs(c[perp_a] - ca) > tolerance) continue;
                    if (fabs(c[perp_b] - cb) > tolerance) continue;
                    const double t = c[axis] - o;
                    if (t < 0.0 || t > bt) continue;
                    if (!has || t < bt) { has = 1; bt = t; tri_best = tri; }
                }
            } else {
                const int32_t left = node_left[n];
                const int32_t right = node_right[n];
                if ((double)node_min[3 * (int64_t)left + axis] <=
                    (double)node_min[3 * (int64_t)right + axis]) {
                    stack[sp++] = right;
                    stack[sp++] = left;
                } else {
                    stack[sp++] = left;
                    stack[sp++] = right;
                }
            }
        }
        hit[r] = (uint8_t)has;
        best_t[r] = bt;
        best_tri[r] = tri_best;
        nodes_visited[r] = visits;
        tri_tests[r] = tests;
    }
}

void chain_walk(
    int64_t num_keys,
    const uint64_t* target64,
    const int64_t* start_pos,
    int64_t order_len,
    const int64_t* order,
    int32_t capacity,
    int32_t key_is_64,
    const void* keys_slab,
    const uint32_t* row_ids,
    const int32_t* sizes,
    const uint64_t* max_keys,
    const int64_t* next_node,
    int64_t* row_sum, int64_t* matches,
    int64_t* nodes_visited, int64_t* entries)
{
    const uint64_t* keys64 = (const uint64_t*)keys_slab;
    const uint32_t* keys32 = (const uint32_t*)keys_slab;
    for (int64_t k = 0; k < num_keys; k++) {
        const uint64_t target = target64[k];
        const uint32_t target32 = (uint32_t)target;
        int64_t pos = start_pos[k];
        int64_t visits = 0, touched = 0, matched = 0, rsum = 0;
        while (pos < order_len) {
            const int64_t node = order[pos];
            visits++;
            const int32_t size = sizes[node];
            if (max_keys[node] < target && next_node[node] != -1) { pos++; continue; }
            int64_t left = 0, right = 0;
            const int64_t base = node * (int64_t)capacity;
            if (key_is_64) {
                const uint64_t* node_keys = keys64 + base;
                for (int32_t i = 0; i < size; i++) {
                    const uint64_t value = node_keys[i];
                    left += value < target;
                    right += value <= target;
                }
            } else {
                const uint32_t* node_keys = keys32 + base;
                for (int32_t i = 0; i < size; i++) {
                    const uint32_t value = node_keys[i];
                    left += value < target32;
                    right += value <= target32;
                }
            }
            const int64_t span = right - left;
            touched += span > 1 ? span : 1;
            if (span > 0) {
                const uint32_t* node_rows = row_ids + base;
                for (int64_t i = left; i < right; i++) rsum += (int64_t)node_rows[i];
                matched += span;
            }
            if (right < (int64_t)size) break;
            pos++;
        }
        row_sum[k] = rsum;
        matches[k] = matched;
        nodes_visited[k] = visits;
        entries[k] = touched;
    }
}
"""


def _cc_cache_dir() -> str:
    configured = os.environ.get("REPRO_CC_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-cgrx-cc-{os.getuid() if hasattr(os, 'getuid') else 0}"
    )


def _load_cc_library() -> Optional[ctypes.CDLL]:
    """Compile (once, cached by source digest) and load the C kernels."""
    compiler = (
        os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        return None
    digest = hashlib.sha256(_CC_SOURCE.encode()).hexdigest()[:16]
    directory = _cc_cache_dir()
    library_path = os.path.join(directory, f"kernels-{digest}.so")
    if not os.path.exists(library_path):
        try:
            os.makedirs(directory, exist_ok=True)
            source_path = os.path.join(directory, f"kernels-{digest}.c")
            with open(source_path, "w") as handle:
                handle.write(_CC_SOURCE)
            scratch = library_path + f".tmp{os.getpid()}"
            subprocess.run(
                [compiler, "-O3", "-fPIC", "-shared", "-o", scratch, source_path, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(scratch, library_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        return ctypes.CDLL(library_path)
    except OSError:
        return None


def _pointer(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _make_cc_axis(library: ctypes.CDLL):
    fn = library.trace_axis_closest
    fn.restype = None

    def axis_kernel(
        axis,
        perp_a,
        perp_b,
        origin_axis,
        coord_a,
        coord_b,
        best_t,
        tolerance,
        qbounds,
        frame_min,
        frame_scale,
        node_min,
        node_max,
        node_left,
        node_right,
        node_first,
        node_count,
        order,
        centroids,
        hit,
        best_tri,
        nodes_visited,
        tri_tests,
    ):
        fn(
            ctypes.c_int32(axis),
            ctypes.c_int32(perp_a),
            ctypes.c_int32(perp_b),
            ctypes.c_int64(origin_axis.shape[0]),
            _pointer(origin_axis),
            _pointer(coord_a),
            _pointer(coord_b),
            _pointer(best_t),
            ctypes.c_double(tolerance),
            _pointer(qbounds),
            _pointer(frame_min),
            _pointer(frame_scale),
            _pointer(node_min),
            _pointer(node_max),
            _pointer(node_left),
            _pointer(node_right),
            _pointer(node_first),
            _pointer(node_count),
            _pointer(order),
            _pointer(centroids),
            _pointer(hit),
            _pointer(best_tri),
            _pointer(nodes_visited),
            _pointer(tri_tests),
        )

    return axis_kernel


def _make_cc_chain(library: ctypes.CDLL):
    fn = library.chain_walk
    fn.restype = None

    def chain_kernel(
        target64,
        start_pos,
        order_len,
        order,
        capacity,
        key_is_64,
        keys64,
        keys32,
        row_ids,
        sizes,
        max_keys,
        next_node,
        row_sum,
        matches,
        nodes_visited,
        entries,
    ):
        keys_slab = keys64 if key_is_64 else keys32
        fn(
            ctypes.c_int64(target64.shape[0]),
            _pointer(target64),
            _pointer(start_pos),
            ctypes.c_int64(order_len),
            _pointer(order),
            ctypes.c_int32(capacity),
            ctypes.c_int32(1 if key_is_64 else 0),
            _pointer(keys_slab),
            _pointer(row_ids),
            _pointer(sizes),
            _pointer(max_keys),
            _pointer(next_node),
            _pointer(row_sum),
            _pointer(matches),
            _pointer(nodes_visited),
            _pointer(entries),
        )

    return chain_kernel


# --------------------------------------------------------------------------
# Shard-local arena
# --------------------------------------------------------------------------


class Arena:
    """One reusable byte buffer holding a shard's compiled-tier tables.

    ``begin(total)`` opens a packing epoch: the cursor resets and the backing
    buffer grows geometrically only when the new tables need more room, so
    steady-state rebuilds (refits, compactions) write in place with zero
    allocation.  ``alloc`` carves 64-byte-aligned typed views out of the
    buffer; views from the previous epoch are invalidated by design (the
    tables they belong to are rebuilt in the same pass).
    """

    ALIGNMENT = 64

    def __init__(self) -> None:
        self._buffer = np.empty(0, dtype=np.uint8)
        self._cursor = 0
        #: Number of packing epochs (diagnostics; in-place rebuilds keep the
        #: buffer identity while this climbs).
        self.rebuilds = 0

    @classmethod
    def aligned(cls, nbytes: int) -> int:
        """``nbytes`` rounded up to the arena alignment."""
        return (int(nbytes) + cls.ALIGNMENT - 1) // cls.ALIGNMENT * cls.ALIGNMENT

    @property
    def capacity_bytes(self) -> int:
        """Bytes reserved by the backing buffer."""
        return int(self._buffer.nbytes)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by the current epoch's tables."""
        return int(self._cursor)

    def begin(self, total_bytes: int) -> None:
        """Open a packing epoch with room for ``total_bytes`` of tables."""
        total_bytes = int(total_bytes)
        if total_bytes > self._buffer.nbytes:
            new_capacity = max(total_bytes, 2 * int(self._buffer.nbytes))
            self._buffer = np.empty(new_capacity, dtype=np.uint8)
        self._cursor = 0
        self.rebuilds += 1

    def alloc(self, shape, dtype) -> np.ndarray:
        """Carve an aligned, contiguous ``(shape, dtype)`` view off the buffer."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        start = self.aligned(self._cursor)
        end = start + nbytes
        if end > self._buffer.nbytes:
            raise ValueError(
                f"arena overflow: need {end} bytes, capacity {self._buffer.nbytes} "
                "(begin() was opened with too small a total)"
            )
        view = self._buffer[start:end].view(dtype).reshape(shape)
        self._cursor = end
        return view


# --------------------------------------------------------------------------
# Quantized cache-blocked node tables
# --------------------------------------------------------------------------


def _quantize_outward(
    node_min64: np.ndarray, node_max64: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quantize AABBs to uint16 against the tree frame, rounding outward.

    Returns ``(qlo, qhi, frame_min, frame_scale)`` satisfying, in the exact
    double arithmetic the kernels use,

        ``frame_min + qlo * scale  <=  node_min64``  and
        ``frame_min + qhi * scale  >=  node_max64``

    element-wise — the property that makes the quantized prefilter
    conservative.  The fixup loops run the kernel's own dequantization
    expression, so no rounding-mode reasoning is left to chance; both loops
    terminate because the clip boundaries (0 and 65535) satisfy the
    inequality by construction of the frame.
    """
    frame_min = node_min64.min(axis=0)
    frame_max = node_max64.max(axis=0)
    extent = frame_max - frame_min
    scale = extent / float(_QUANT_STEPS)
    scale = np.where(np.isfinite(scale) & (scale > 0.0), scale, 1.0)

    qlo = np.clip(np.floor((node_min64 - frame_min) / scale), 0, 65535).astype(np.int64)
    while True:
        bad = (frame_min + qlo.astype(np.float64) * scale > node_min64) & (qlo > 0)
        if not bad.any():
            break
        qlo[bad] -= 1

    qhi = np.clip(np.ceil((node_max64 - frame_min) / scale), 0, 65535).astype(np.int64)
    while True:
        bad = (frame_min + qhi.astype(np.float64) * scale < node_max64) & (qhi < 65535)
        if not bad.any():
            break
        qhi[bad] += 1

    return qlo.astype(np.uint16), qhi.astype(np.uint16), frame_min, scale


class CompiledBvhTables:
    """Arena-packed SoA node tables consumed by the traversal megakernel.

    Layout per node: a 12-byte quantized record (``uint16[6]``: lo.xyz,
    hi.xyz) scanned first, the exact ``float32`` bounds touched only on
    prefilter pass, and ``int32`` topology.  Centroids stay ``float64`` —
    the scalar oracle compares exact double centres, so narrowing them would
    break parity.
    """

    def __init__(self, bvh: Bvh, arena: Arena) -> None:
        self.arena = arena
        self.stack_depth = (bvh.depth() + 3) if bvh.num_nodes else 0
        self.usable = 0 < bvh.num_nodes and self.stack_depth <= MAX_STACK
        if not self.usable:
            return

        num_nodes = bvh.num_nodes
        num_slots = int(bvh.primitive_order.shape[0])
        align = Arena.aligned
        total = (
            align(num_nodes * 6 * 2)  # qbounds
            + 2 * align(num_nodes * 3 * 4)  # node_min / node_max
            + 4 * align(num_nodes * 4)  # left / right / first / count
            + align(num_slots * 4)  # primitive order
            + align(bvh.scene.centres.shape[0] * 3 * 8)  # centroids
        )
        arena.begin(total)

        node_min64 = bvh.node_min.astype(np.float64)
        node_max64 = bvh.node_max.astype(np.float64)
        qlo, qhi, self.frame_min, self.frame_scale = _quantize_outward(node_min64, node_max64)

        self.qbounds = arena.alloc((num_nodes, 6), np.uint16)
        self.qbounds[:, :3] = qlo
        self.qbounds[:, 3:] = qhi
        self.node_min = arena.alloc((num_nodes, 3), np.float32)
        np.copyto(self.node_min, bvh.node_min)
        self.node_max = arena.alloc((num_nodes, 3), np.float32)
        np.copyto(self.node_max, bvh.node_max)
        self.node_left = arena.alloc(num_nodes, np.int32)
        np.copyto(self.node_left, bvh.node_left)
        self.node_right = arena.alloc(num_nodes, np.int32)
        np.copyto(self.node_right, bvh.node_right)
        self.node_first = arena.alloc(num_nodes, np.int32)
        np.copyto(self.node_first, bvh.node_first)
        self.node_count = arena.alloc(num_nodes, np.int32)
        np.copyto(self.node_count, bvh.node_count)
        self.order = arena.alloc(num_slots, np.int32)
        np.copyto(self.order, bvh.primitive_order)
        self.centroids = arena.alloc((bvh.scene.centres.shape[0], 3), np.float64)
        np.copyto(self.centroids, bvh.scene.centres)

    def verify_conservative(self, bvh: Bvh) -> bool:
        """Check the outward-rounding invariant (used by the property test)."""
        lo = self.frame_min + self.qbounds[:, :3].astype(np.float64) * self.frame_scale
        hi = self.frame_min + self.qbounds[:, 3:].astype(np.float64) * self.frame_scale
        return bool(
            np.all(lo <= bvh.node_min.astype(np.float64))
            and np.all(hi >= bvh.node_max.astype(np.float64))
        )


# --------------------------------------------------------------------------
# Megakernel entry
# --------------------------------------------------------------------------


def trace_axis_closest_batch(
    soa: SoaBvh,
    tables: CompiledBvhTables,
    axis: int,
    origins: np.ndarray,
    tmax: np.ndarray,
    tolerance: float,
    stats,
) -> Optional[AxisClosestBatch]:
    """Closest hits of a +``axis`` ray batch through the compiled megakernel.

    Returns ``None`` (caller falls back to the vector engine) when no backend
    is available or the tables are unusable.  Results, per-ray node visits
    and ``stats`` totals are bit-identical to the scalar oracle.
    """
    kernels = backend_kernels()
    if kernels is None or not tables.usable:
        return None
    axis_kernel = kernels[0]

    origins = np.asarray(origins, dtype=np.float64)
    num_rays = int(origins.shape[0])
    perp_a, perp_b = _PERP_AXES[axis]
    origin_axis = np.ascontiguousarray(origins[:, axis])
    coord_a = np.ascontiguousarray(origins[:, perp_a])
    coord_b = np.ascontiguousarray(origins[:, perp_b])
    best_t = np.ascontiguousarray(tmax, dtype=np.float64).copy()

    hit = np.zeros(num_rays, dtype=np.uint8)
    best_tri = np.zeros(num_rays, dtype=np.int64)
    nodes_visited = np.zeros(num_rays, dtype=np.int64)
    tri_tests = np.zeros(num_rays, dtype=np.int64)

    axis_kernel(
        axis,
        perp_a,
        perp_b,
        origin_axis,
        coord_a,
        coord_b,
        best_t,
        float(tolerance),
        tables.qbounds,
        tables.frame_min,
        tables.frame_scale,
        tables.node_min,
        tables.node_max,
        tables.node_left,
        tables.node_right,
        tables.node_first,
        tables.node_count,
        tables.order,
        tables.centroids,
        hit,
        best_tri,
        nodes_visited,
        tri_tests,
    )

    has_best = hit.astype(bool)
    stats.rays_cast += num_rays
    total_nodes = int(nodes_visited.sum())
    stats.nodes_visited += total_nodes
    stats.aabb_tests += total_nodes
    stats.triangle_tests += int(tri_tests.sum())
    hits = int(has_best.sum())
    stats.hits += hits
    stats.misses += num_rays - hits

    # Same occupancy/node-visit series the wavefront kernels feed: a
    # megakernel "iteration" is the deepest per-ray visit count (the lockstep
    # step count the vector engine would have needed).
    prof = _profile.profiler()
    if prof is not None:
        iterations = int(nodes_visited.max()) if num_rays else 0
        prof.observe_wavefront("compiled_axis_closest", iterations, num_rays, total_nodes)

    point = np.zeros((num_rays, 3), dtype=np.float32)
    if hits:
        point[has_best] = soa.centroids[best_tri[has_best]].astype(np.float32)
    return AxisClosestBatch(
        hit=has_best,
        t=best_t,
        primitive_index=np.where(has_best, soa.primitive_indices[best_tri], -1).astype(np.int64),
        front_face=np.where(has_best, ~soa.flipped[best_tri], True),
        point=point,
        nodes_visited=nodes_visited,
    )
