"""Bounding volume hierarchy (BVH) construction.

The BVH plays the role of the acceleration structure that ``optixAccelBuild``
produces on the real hardware.  Its two observable properties drive every
experiment in the paper:

* its **memory footprint**, which scales with the number of triangles (and is
  the main reason RX needs so much memory), and
* its **shape**, which determines how many bounding volumes and triangles a
  lookup ray must be tested against.

The default builder performs a spatial median split on the axis with the
largest centroid extent.  This reproduces the behaviour discussed around
Figure 9 of the paper: without scaling the y/z coordinates of the key
mapping, bounding volumes straddle several rows and the unavoidable x-axis
ray has to test many unrelated triangles; after scaling, the y/z extents
dominate and rows are separated early, so the boxes extend along the x-axis
only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.rtx.geometry import Aabb
from repro.rtx.scene import BuildFlags, TriangleScene

#: Bytes per BVH node in the simulated, compacted acceleration structure.
#: Real OptiX BVH layouts are proprietary; 32 bytes per node yields footprints
#: in the same regime as the paper's measurements (a BVH that is small
#: relative to the vertex buffer but grows linearly with the triangle count).
BVH_NODE_BYTES = 32

#: Additional per-primitive bookkeeping inside the acceleration structure
#: (primitive index remapping table).
BVH_PRIMITIVE_BYTES = 4


@dataclass
class BvhBuildConfig:
    """Configuration for :func:`build_bvh`.

    ``max_leaf_size`` mirrors the trade-off a hardware builder makes between
    tree depth and per-leaf intersection tests.  ``method`` selects the split
    strategy: ``"median"`` (spatial median on the largest-extent axis, the
    default) or ``"middle"`` (split at the spatial midpoint, closer to an
    LBVH and slightly cheaper to build).
    """

    max_leaf_size: int = 4
    method: str = "median"
    build_flags: BuildFlags = BuildFlags.NONE

    def __post_init__(self) -> None:
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        if self.method not in ("median", "middle"):
            raise ValueError(f"unknown BVH build method: {self.method!r}")


@dataclass
class BvhNode:
    """A single node of the hierarchy (leaf or interior)."""

    minimum: np.ndarray
    maximum: np.ndarray
    left: int = -1
    right: int = -1
    first_primitive: int = 0
    primitive_count: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.primitive_count > 0

    def aabb(self) -> Aabb:
        return Aabb(minimum=self.minimum.copy(), maximum=self.maximum.copy())


@dataclass
class Bvh:
    """A flattened BVH over a :class:`~repro.rtx.scene.TriangleScene`.

    ``primitive_order`` is a permutation of the scene's triangle indices; leaf
    nodes reference contiguous ranges of this permutation.  Traversal code
    lives in :mod:`repro.rtx.traversal`.
    """

    scene: TriangleScene
    node_min: np.ndarray
    node_max: np.ndarray
    node_left: np.ndarray
    node_right: np.ndarray
    node_first: np.ndarray
    node_count: np.ndarray
    primitive_order: np.ndarray
    config: BvhBuildConfig
    #: Number of times the structure has been refit since the full build.
    refit_generation: int = 0

    @property
    def num_nodes(self) -> int:
        return int(self.node_min.shape[0])

    @property
    def num_primitives(self) -> int:
        return int(self.primitive_order.shape[0])

    @property
    def num_leaves(self) -> int:
        return int((self.node_count > 0).sum())

    def node(self, index: int) -> BvhNode:
        """Materialise node ``index`` as a :class:`BvhNode` (for inspection/tests)."""
        return BvhNode(
            minimum=self.node_min[index].copy(),
            maximum=self.node_max[index].copy(),
            left=int(self.node_left[index]),
            right=int(self.node_right[index]),
            first_primitive=int(self.node_first[index]),
            primitive_count=int(self.node_count[index]),
        )

    def root_aabb(self) -> Aabb:
        """Bounding box of the root node."""
        if self.num_nodes == 0:
            return Aabb.empty()
        return Aabb(minimum=self.node_min[0].copy(), maximum=self.node_max[0].copy())

    def depth(self) -> int:
        """Maximum depth of the tree (root has depth 1); 0 for an empty tree."""
        if self.num_nodes == 0:
            return 0
        max_depth = 0
        stack: List[Tuple[int, int]] = [(0, 1)]
        while stack:
            index, depth = stack.pop()
            max_depth = max(max_depth, depth)
            if self.node_count[index] == 0:
                stack.append((int(self.node_left[index]), depth + 1))
                stack.append((int(self.node_right[index]), depth + 1))
        return max_depth

    def memory_footprint_bytes(self) -> int:
        """Simulated device footprint of the acceleration structure."""
        return self.num_nodes * BVH_NODE_BYTES + self.num_primitives * BVH_PRIMITIVE_BYTES

    def leaf_primitive_indices(self, node_index: int) -> np.ndarray:
        """Scene-local triangle indices referenced by leaf ``node_index``."""
        first = int(self.node_first[node_index])
        count = int(self.node_count[node_index])
        return self.primitive_order[first : first + count]

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on violation.

        Used by the property-based tests: every primitive appears exactly once
        across leaves, every child box is contained in its parent box, and
        interior nodes have exactly two children.
        """
        if self.num_nodes == 0:
            assert self.num_primitives == 0
            return
        seen = np.zeros(self.num_primitives, dtype=bool)
        stack: List[int] = [0]
        while stack:
            index = stack.pop()
            count = int(self.node_count[index])
            if count > 0:
                prims = self.leaf_primitive_indices(index)
                assert not seen[prims].any(), "primitive referenced by two leaves"
                seen[prims] = True
            else:
                left = int(self.node_left[index])
                right = int(self.node_right[index])
                assert left >= 0 and right >= 0, "interior node missing a child"
                for child in (left, right):
                    assert np.all(self.node_min[child] >= self.node_min[index] - 1e-4)
                    assert np.all(self.node_max[child] <= self.node_max[index] + 1e-4)
                    stack.append(child)
        assert seen.all(), "some primitive is not referenced by any leaf"


def build_bvh(scene: TriangleScene, config: Optional[BvhBuildConfig] = None) -> Bvh:
    """Build a BVH over ``scene`` (the software stand-in for ``optixAccelBuild``)."""
    config = config or BvhBuildConfig()
    num_triangles = scene.num_triangles
    minima, maxima = scene.triangle_aabbs()
    centroids = scene.centroids()

    if num_triangles == 0:
        empty3 = np.zeros((0, 3), dtype=np.float32)
        empty_i = np.zeros(0, dtype=np.int64)
        return Bvh(
            scene=scene,
            node_min=empty3,
            node_max=empty3.copy(),
            node_left=empty_i,
            node_right=empty_i.copy(),
            node_first=empty_i.copy(),
            node_count=empty_i.copy(),
            primitive_order=empty_i.copy(),
            config=config,
        )

    order = np.arange(num_triangles, dtype=np.int64)

    node_min: List[np.ndarray] = []
    node_max: List[np.ndarray] = []
    node_left: List[int] = []
    node_right: List[int] = []
    node_first: List[int] = []
    node_count: List[int] = []

    def add_node() -> int:
        node_min.append(np.zeros(3, dtype=np.float32))
        node_max.append(np.zeros(3, dtype=np.float32))
        node_left.append(-1)
        node_right.append(-1)
        node_first.append(0)
        node_count.append(0)
        return len(node_min) - 1

    root = add_node()
    # Work stack of (node_index, start, end) ranges over ``order``.
    stack: List[Tuple[int, int, int]] = [(root, 0, num_triangles)]

    while stack:
        node_index, start, end = stack.pop()
        prims = order[start:end]
        prim_min = minima[prims]
        prim_max = maxima[prims]
        node_min[node_index] = prim_min.min(axis=0)
        node_max[node_index] = prim_max.max(axis=0)
        count = end - start

        if count <= config.max_leaf_size:
            node_first[node_index] = start
            node_count[node_index] = count
            continue

        cents = centroids[prims]
        extent = cents.max(axis=0) - cents.min(axis=0)
        axis = int(np.argmax(extent))
        if extent[axis] <= 0.0:
            # All centroids coincide: make a leaf to avoid infinite recursion.
            node_first[node_index] = start
            node_count[node_index] = count
            continue

        if config.method == "median":
            local = np.argsort(cents[:, axis], kind="stable")
            order[start:end] = prims[local]
            mid = start + count // 2
        else:  # "middle": split at the spatial midpoint of the centroid extent
            split_value = (cents[:, axis].max() + cents[:, axis].min()) * 0.5
            left_mask = cents[:, axis] <= split_value
            left_count = int(left_mask.sum())
            if left_count == 0 or left_count == count:
                local = np.argsort(cents[:, axis], kind="stable")
                order[start:end] = prims[local]
                mid = start + count // 2
            else:
                order[start:end] = np.concatenate([prims[left_mask], prims[~left_mask]])
                mid = start + left_count

        left_index = add_node()
        right_index = add_node()
        node_left[node_index] = left_index
        node_right[node_index] = right_index
        stack.append((left_index, start, mid))
        stack.append((right_index, mid, end))

    return Bvh(
        scene=scene,
        node_min=np.stack(node_min).astype(np.float32),
        node_max=np.stack(node_max).astype(np.float32),
        node_left=np.array(node_left, dtype=np.int64),
        node_right=np.array(node_right, dtype=np.int64),
        node_first=np.array(node_first, dtype=np.int64),
        node_count=np.array(node_count, dtype=np.int64),
        primitive_order=order,
        config=config,
    )
