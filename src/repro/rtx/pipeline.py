"""An OptiX-like raytracing pipeline: vertex buffer + acceleration structure + launches.

Indexes built on the RT substrate (RX, cgRX, cgRXu, RTScan) talk to this
class instead of juggling scenes and BVHs directly.  It mirrors the OptiX
programming model at the granularity the paper needs:

* write triangles into a vertex buffer,
* ``build_acceleration_structure()`` (``optixAccelBuild``),
* ``update_acceleration_structure()`` (refit-only update),
* fire rays individually (``cast_closest`` / ``cast_all``) or as a batch
  launch, and
* query the device memory footprint of buffer plus BVH.

Every ray fired through the pipeline is counted; the per-launch counters are
what the GPU cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.rtx.bvh import Bvh, BvhBuildConfig, build_bvh
from repro.rtx.geometry import HitRecord, Ray
from repro.rtx.refit import refit_bvh
from repro.rtx.scene import BuildFlags, TriangleScene, VertexBuffer
from repro.rtx.traversal import RayStats, TraversalEngine


@dataclass
class LaunchResult:
    """Result of a batched ray launch: per-ray hit records plus work counters."""

    hits: List[HitRecord] = field(default_factory=list)
    stats: RayStats = field(default_factory=RayStats)


class RaytracingPipeline:
    """Owns a vertex buffer and the acceleration structure built over it."""

    def __init__(
        self,
        bvh_config: Optional[BvhBuildConfig] = None,
        build_flags: BuildFlags = BuildFlags.NONE,
    ) -> None:
        self.vertex_buffer = VertexBuffer()
        self.bvh_config = bvh_config or BvhBuildConfig()
        self.build_flags = build_flags
        self._bvh: Optional[Bvh] = None
        self._engine: Optional[TraversalEngine] = None
        #: Engine used by the batched axis-ray casts: ``"vector"`` (wavefront)
        #: or ``"compiled"`` (fused megakernel).  Indexes set this around a
        #: batch instead of threading a parameter through every staging layer.
        self.batch_engine = "vector"
        #: Shard-local arena backing the compiled tier's node tables; owned
        #: here (not by the per-build traversal engine) so acceleration-
        #: structure rebuilds and refits repack it in place across epochs.
        from repro.rtx.compiled import Arena

        self._compiled_arena = Arena()
        #: Statistics accumulated over the lifetime of the pipeline.
        self.lifetime_stats = RayStats()
        #: Number of full acceleration-structure builds performed.
        self.build_count = 0
        #: Number of refit-only updates performed.
        self.refit_count = 0

    # ------------------------------------------------------------------ build

    def build_acceleration_structure(self) -> Bvh:
        """(Re)build the BVH from the current vertex buffer contents."""
        scene = TriangleScene.from_vertex_buffer(self.vertex_buffer, self.build_flags)
        self._bvh = build_bvh(scene, self.bvh_config)
        self._engine = TraversalEngine(self._bvh, compiled_arena=self._compiled_arena)
        self.build_count += 1
        return self._bvh

    def update_acceleration_structure(self) -> Bvh:
        """Refit the existing BVH against the current vertex buffer contents.

        Requires a prior full build and an unchanged set of *occupied* slots;
        only vertex positions may differ.  This models the cheap-but-degrading
        OptiX refit path RX uses for updates.
        """
        if self._bvh is None:
            raise RuntimeError("update requested before the acceleration structure was built")
        scene = TriangleScene.from_vertex_buffer(self.vertex_buffer, self.build_flags)
        if scene.num_triangles != self._bvh.scene.num_triangles or not np.array_equal(
            scene.primitive_indices, self._bvh.scene.primitive_indices
        ):
            raise ValueError(
                "refit requires the same set of occupied slots; rebuild instead"
            )
        refit_bvh(self._bvh, scene.vertices)
        # Centres and flipped flags may have changed when triangles were rewritten.
        self._bvh.scene.centres = scene.centres
        self._bvh.scene.flipped = scene.flipped
        self._engine = TraversalEngine(self._bvh, compiled_arena=self._compiled_arena)
        self.refit_count += 1
        return self._bvh

    @property
    def bvh(self) -> Bvh:
        """The current acceleration structure (raises if not yet built)."""
        if self._bvh is None:
            raise RuntimeError("acceleration structure has not been built yet")
        return self._bvh

    @property
    def is_built(self) -> bool:
        """True once :meth:`build_acceleration_structure` has been called."""
        return self._bvh is not None

    # -------------------------------------------------------------- traversal

    def cast_closest(self, ray: Ray, stats: Optional[RayStats] = None) -> HitRecord:
        """Fire a single ray and return its closest hit."""
        engine = self._require_engine()
        local = RayStats()
        record = engine.trace_closest(ray, local)
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return record

    def cast_all(self, ray: Ray, stats: Optional[RayStats] = None) -> List[HitRecord]:
        """Fire a single ray and return all hits along it, nearest first."""
        engine = self._require_engine()
        local = RayStats()
        records = engine.trace_all(ray, local)
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return records

    def cast_axis_closest(
        self,
        axis: int,
        origin: Sequence[float],
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Fire an axis-aligned ray (fast path) and return its closest hit."""
        engine = self._require_engine()
        local = RayStats()
        record = engine.trace_axis_closest(axis, origin, tmax, local)
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return record

    def cast_axis_all(
        self,
        axis: int,
        origin: Sequence[float],
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> List[HitRecord]:
        """Fire an axis-aligned ray (fast path) and return all hits, nearest first."""
        engine = self._require_engine()
        local = RayStats()
        records = engine.trace_axis_all(axis, origin, tmax, local)
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return records

    def cast_axis_closest_batch(
        self,
        axis: int,
        origins: np.ndarray,
        tmax: Optional[np.ndarray] = None,
        stats: Optional[RayStats] = None,
    ):
        """Fire a batch of axis-aligned rays through the wavefront fast path.

        Returns a :class:`~repro.rtx.wavefront.AxisClosestBatch`; counters and
        hits are identical to calling :meth:`cast_axis_closest` per ray.
        """
        engine = self._require_engine()
        local = RayStats()
        result = engine.trace_axis_closest_batch(
            axis, origins, tmax, local, engine=self.batch_engine
        )
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return result

    def cast_axis_all_batch(
        self,
        axis: int,
        origins: np.ndarray,
        tmax: Optional[np.ndarray] = None,
        stats: Optional[RayStats] = None,
    ):
        """Fire a batch of axis-aligned rays and collect every hit per ray."""
        engine = self._require_engine()
        local = RayStats()
        result = engine.trace_axis_all_batch(axis, origins, tmax, local)
        if stats is not None:
            stats.merge(local)
        self.lifetime_stats.merge(local)
        return result

    def launch_closest(self, rays: Sequence[Ray], engine: str = "scalar") -> LaunchResult:
        """Fire a batch of rays (one simulated thread each) and collect closest hits.

        ``engine="vector"`` routes the batch through the wavefront traversal;
        hits and counters are identical either way.
        """
        result = LaunchResult()
        # The compiled tier covers axis-aligned closest-hit batches only;
        # general-direction launches execute on the wavefront path under it.
        if engine in ("vector", "compiled"):
            traversal = self._require_engine()
            local = RayStats()
            result.hits = traversal.trace_closest_batch(rays, local)
            result.stats.merge(local)
            self.lifetime_stats.merge(local)
            return result
        for ray in rays:
            record = self.cast_closest(ray, result.stats)
            result.hits.append(record)
        return result

    def _require_engine(self) -> TraversalEngine:
        if self._engine is None:
            raise RuntimeError("acceleration structure has not been built yet")
        return self._engine

    # ----------------------------------------------------------------- memory

    def memory_footprint_bytes(self) -> int:
        """Device bytes: vertex buffer plus acceleration structure.

        The compiled tier's arena is deliberately *excluded*: it is host-side
        acceleration state, and the simulated-device footprint feeds the cost
        model's cache fractions, which must stay identical across engines.
        Report it through :meth:`compiled_buffers_bytes` instead.
        """
        total = self.vertex_buffer.memory_footprint_bytes()
        if self._bvh is not None:
            total += self._bvh.memory_footprint_bytes()
        return total

    def compiled_buffers_bytes(self) -> int:
        """Bytes held by the compiled tier's quantized-table arena."""
        return self._compiled_arena.capacity_bytes
