"""Process-wide profiling hooks for the device kernels and node chains.

Hot kernels (`rtx.wavefront`, `core.updatable`) cannot take a registry
parameter without disturbing their call signatures and the bit-parity
contract between engines, so profiling uses a module-level hook: call sites
fetch the active :class:`Profiler` with :func:`profiler` and skip all work
when it is ``None``.  The disabled cost is one global read and an ``is not
None`` test per *batch* (never per element), which is the near-zero-overhead
requirement of the observability layer.

Everything observed feeds labeled instruments in a
:class:`~repro.obs.telemetry.TelemetryRegistry`, so kernel-side counters
(wavefront iterations, active-ray occupancy, chain-walk lengths, compaction
work) land in the same exposition/time-series surface as the serving
metrics.
"""

from __future__ import annotations

from typing import Optional

from .telemetry import TelemetryRegistry

_ACTIVE: Optional["Profiler"] = None


def profiler() -> Optional["Profiler"]:
    """The active profiler, or ``None`` when profiling is disabled."""
    return _ACTIVE


def enable_profiling(registry: Optional[TelemetryRegistry] = None) -> "Profiler":
    """Install (and return) a process-wide profiler feeding ``registry``."""
    global _ACTIVE
    _ACTIVE = Profiler(registry or TelemetryRegistry())
    return _ACTIVE


def disable_profiling() -> None:
    """Remove the process-wide profiler; kernel hooks go back to no-ops."""
    global _ACTIVE
    _ACTIVE = None


class Profiler:
    """Sink for kernel-side instrumentation points."""

    def __init__(self, registry: TelemetryRegistry) -> None:
        self.registry = registry

    # -- rtx.wavefront -----------------------------------------------------
    def observe_wavefront(
        self, kernel: str, iterations: int, num_rays: int, lane_steps: int
    ) -> None:
        """One wavefront kernel launch.

        ``lane_steps`` is the sum of front sizes over all iterations (== node
        visits: each active ray advances one BVH node per iteration), so mean
        occupancy is ``lane_steps / (iterations * num_rays)``.
        """
        registry = self.registry
        registry.counter("rtx_wavefront_launches_total", kernel=kernel).inc()
        registry.counter("rtx_wavefront_iterations_total", kernel=kernel).inc(
            iterations
        )
        registry.counter("rtx_wavefront_rays_total", kernel=kernel).inc(num_rays)
        registry.counter("rtx_wavefront_node_visits_total", kernel=kernel).inc(
            lane_steps
        )
        if iterations > 0 and num_rays > 0:
            registry.histogram("rtx_wavefront_occupancy", kernel=kernel).record(
                lane_steps / (iterations * num_rays)
            )

    # -- core.updatable / core.nodes ----------------------------------------
    def observe_chain_walk(self, engine: str, nodes_visited: int, lookups: int) -> None:
        """One point-lookup batch walking bucket chains."""
        registry = self.registry
        registry.counter("core_chain_nodes_visited_total", engine=engine).inc(
            nodes_visited
        )
        registry.counter("core_chain_lookups_total", engine=engine).inc(lookups)
        if lookups > 0:
            registry.histogram("core_chain_walk_length", engine=engine).record(
                nodes_visited / lookups
            )

    # -- rtx.compiled / core.compiled ---------------------------------------
    def observe_compiled_fallback(self, reason: str) -> None:
        """A ``"compiled"`` engine request degraded to the vector engine."""
        registry = self.registry
        registry.gauge("compiled_engine_fallback", reason=reason).set(1.0)
        registry.counter("compiled_engine_fallbacks_total", reason=reason).inc()

    def observe_chain_compaction(self, nodes_before: int, nodes_after: int) -> None:
        """One bucket chain rewritten by compaction."""
        registry = self.registry
        registry.counter("core_compaction_chains_total").inc()
        registry.counter("core_compaction_nodes_before_total").inc(nodes_before)
        registry.counter("core_compaction_nodes_reclaimed_total").inc(
            max(0, nodes_before - nodes_after)
        )
