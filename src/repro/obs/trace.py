"""Request tracing on the simulated clock.

A :class:`Tracer` records :class:`Span` objects — named time intervals on the
*simulated* timeline (`SimulatedClock` milliseconds), annotated with
structured attributes (shard id, replica id, batch size, engine, epoch, ...).
Because the serving stack computes stage timings analytically, spans are
usually recorded retroactively via :meth:`Tracer.record_span` once start and
duration are known; :meth:`Tracer.push_span`/:meth:`Tracer.pop` additionally
maintain a context stack so instrumentation in lower layers (replica groups,
device engines) can attach child spans to whatever higher-level span is
active, without any layer passing trace handles explicitly.

Traces export to Chrome trace-event JSON (``ph: "X"`` complete events with
microsecond timestamps) so a run opens directly in ``chrome://tracing`` or
Perfetto.  Lanes (one per shard, plus maintenance, cache, ...) map to
thread ids with ``thread_name`` metadata events.

A disabled tracer is free to keep bound everywhere: every recording method
checks :attr:`Tracer.enabled` first and call sites on hot paths guard with
``if tracer.enabled`` so the untraced run does no per-request work.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

__all__ = ["Span", "TraceContext", "Tracer", "NULL_TRACER"]


class Span:
    """One named interval on the simulated timeline."""

    __slots__ = (
        "name",
        "category",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ms",
        "duration_ms",
        "lane",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        category: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start_ms: float,
        duration_ms: float,
        lane: str,
        attributes: Optional[Dict[str, object]],
    ) -> None:
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.lane = lane
        self.attributes = attributes

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"[{self.start_ms:.3f}, {self.end_ms:.3f}] ms)"
        )


class TraceContext:
    """Propagated handle to the currently active span."""

    __slots__ = ("trace_id", "span_id", "start_ms")

    def __init__(self, trace_id: int, span_id: int, start_ms: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.start_ms = start_ms


class Tracer:
    """Span recorder with a propagation stack and Chrome trace export."""

    def __init__(self, clock=None, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []
        self._stack: List[TraceContext] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- recording ---------------------------------------------------------
    @property
    def current(self) -> Optional[TraceContext]:
        """Context of the innermost active span, if any."""
        return self._stack[-1] if self._stack else None

    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def emit(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        category: str,
        lane: str,
        trace_id: int,
        parent_id: Optional[int],
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Low-level hot-path emit: no enabled check, no context lookup.

        Call sites that already resolved trace/parent ids (and guard with
        ``tracer.enabled`` themselves) use this to skip the convenience
        layers of :meth:`record_span`.  ``attributes`` may be shared between
        spans — spans never mutate their attribute dict after emission.
        """
        span_id = self._next_span_id
        self._next_span_id = span_id + 1
        span = Span(
            name, category, trace_id, span_id, parent_id,
            start_ms, duration_ms, lane, attributes,
        )
        self.spans.append(span)
        return span

    def record_span(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        *,
        category: str = "serve",
        lane: str = "serve",
        trace_id: Optional[int] = None,
        parent: Optional[object] = None,
        **attributes: object,
    ) -> Optional[Span]:
        """Record a completed span; returns ``None`` when disabled.

        ``parent`` may be a :class:`Span` or :class:`TraceContext`; when
        omitted, the innermost span on the context stack (if any) is the
        parent and the span inherits its trace id.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current
        parent_id: Optional[int] = None
        if parent is not None:
            parent_id = parent.span_id
            if trace_id is None:
                trace_id = parent.trace_id
        if trace_id is None:
            trace_id = self.new_trace_id()
        return self.emit(
            name,
            float(start_ms),
            float(duration_ms),
            category,
            lane,
            trace_id,
            parent_id,
            attributes or None,
        )

    def push_span(
        self,
        name: str,
        start_ms: float,
        duration_ms: float = 0.0,
        **kwargs: object,
    ) -> Optional[Span]:
        """Record a span and make it the active context (pair with :meth:`pop`).

        The returned span may still be mutated (e.g. its ``duration_ms``
        updated once the simulated cost is known) — export happens later.
        """
        span = self.record_span(name, start_ms, duration_ms, **kwargs)
        if span is not None:
            self._stack.append(
                TraceContext(span.trace_id, span.span_id, span.start_ms)
            )
        return span

    def pop(self) -> None:
        if self._stack:
            self._stack.pop()

    def reset(self) -> None:
        """Drop all recorded spans and contexts (trace/span ids keep counting)."""
        self.spans.clear()
        self._stack.clear()

    # -- queries -----------------------------------------------------------
    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def trace(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, object]:
        """Render all spans as a Chrome trace-event JSON document.

        Every span becomes a ``ph: "X"`` (complete) event with ``ts``/``dur``
        in microseconds; each lane becomes a thread with a ``thread_name``
        metadata event so Perfetto shows readable track names.
        """
        lane_tids: Dict[str, int] = {}
        events: List[Dict[str, object]] = []
        for span in self.spans:
            tid = lane_tids.get(span.lane)
            if tid is None:
                tid = len(lane_tids)
                lane_tids[span.lane] = tid
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": span.lane},
                    }
                )
            args: Dict[str, object] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.attributes:
                args.update(span.attributes)
            start_us = span.start_ms * 1000.0
            duration_us = span.duration_ms * 1000.0
            if not math.isfinite(start_us):
                start_us = 0.0
            if not math.isfinite(duration_us) or duration_us < 0.0:
                duration_us = 0.0
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": start_us,
                    "dur": duration_us,
                    "pid": 0,
                    "tid": tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path: str) -> str:
        document = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, allow_nan=False)
            handle.write("\n")
        return path


#: Shared always-off tracer: safe default binding for instrumented components.
NULL_TRACER = Tracer(enabled=False)
