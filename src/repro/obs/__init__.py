"""Cross-cutting observability: tracing, labeled telemetry, attribution.

``repro.obs`` is the substrate the serving stack reports into:

* :mod:`repro.obs.trace` — spans on the simulated clock with propagated
  trace context; exports Chrome trace-event JSON for Perfetto.
* :mod:`repro.obs.telemetry` — labeled counters, gauges, and mergeable
  log-bucketed bounded-memory histograms with Prometheus-style exposition
  and time-series sampling.
* :mod:`repro.obs.profile` — process-wide profiling hooks the device
  kernels and node-chain code report into (no-ops unless enabled).
* :mod:`repro.obs.attribution` — reduces a trace into a per-stage
  critical-path latency breakdown.
"""

from .attribution import STAGE_NAMES, critical_path_breakdown, format_breakdown
from .profile import Profiler, disable_profiling, enable_profiling, profiler
from .telemetry import (
    Counter,
    Gauge,
    LogBucketHistogram,
    PERCENTILE_RELATIVE_ERROR,
    TelemetryRegistry,
    default_boundaries,
    render_name,
)
from .trace import NULL_TRACER, Span, TraceContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "LogBucketHistogram",
    "NULL_TRACER",
    "PERCENTILE_RELATIVE_ERROR",
    "Profiler",
    "STAGE_NAMES",
    "Span",
    "TraceContext",
    "Tracer",
    "TelemetryRegistry",
    "critical_path_breakdown",
    "default_boundaries",
    "disable_profiling",
    "enable_profiling",
    "format_breakdown",
    "profiler",
    "render_name",
]
