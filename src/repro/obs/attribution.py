"""Critical-path latency attribution over recorded traces.

Reduces a span list into a per-stage breakdown of *tail* latency: take the
root ``request`` spans, find the traces at or beyond the requested latency
percentile, and apportion their end-to-end time across the serving stages
(cache probe, coalescer queue wait, device execution, replica failover).
The result answers "p99 = 62% queue wait + 31% device + 7% failover".

Maintenance interference is reported alongside (not as a stage fraction):
for every tail request the overlap of its lifetime with concurrent
maintenance spans is accumulated, quantifying how much of the tail sat
under an active maintenance window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .trace import Span

#: Canonical per-request stage span names, in pipeline order.
STAGE_NAMES = (
    "cache.probe",
    "queue.wait",
    "device.execute",
    "replica.failover",
)

MAINTENANCE_CATEGORY = "maintenance"


def _overlap_ms(start: float, end: float, windows: Sequence[Span]) -> float:
    total = 0.0
    for window in windows:
        low = max(start, window.start_ms)
        high = min(end, window.end_ms)
        if high > low:
            total += high - low
    return total


def critical_path_breakdown(
    spans: Iterable[Span], percentile: float = 99.0
) -> Dict[str, object]:
    """Per-stage latency attribution of the tail of the request population.

    Returns a dict with the tail threshold, the number of requests analysed,
    a ``stages`` list of ``{stage, total_ms, fraction}`` rows (fractions
    normalised over attributed stage time, descending), and the maintenance
    interference overlap of the tail requests.
    """
    spans = list(spans)
    roots = [s for s in spans if s.name == "request"]
    if not roots:
        return {
            "percentile": float(percentile),
            "num_requests": 0,
            "tail_requests": 0,
            "latency_at_percentile_ms": float("nan"),
            "stages": [],
            "maintenance_overlap_ms": 0.0,
            "maintenance_overlap_fraction": 0.0,
        }
    stage_by_trace: Dict[int, Dict[str, float]] = {}
    for span in spans:
        if span.name in STAGE_NAMES:
            per_trace = stage_by_trace.setdefault(span.trace_id, {})
            per_trace[span.name] = per_trace.get(span.name, 0.0) + span.duration_ms
    maintenance_windows = [s for s in spans if s.category == MAINTENANCE_CATEGORY]

    totals = np.array([root.duration_ms for root in roots], dtype=np.float64)
    threshold = float(np.percentile(totals, percentile))
    tail = [root for root in roots if root.duration_ms >= threshold]

    stage_totals = {name: 0.0 for name in STAGE_NAMES}
    tail_time = 0.0
    maintenance_overlap = 0.0
    for root in tail:
        tail_time += root.duration_ms
        for name, duration in stage_by_trace.get(root.trace_id, {}).items():
            stage_totals[name] += duration
        maintenance_overlap += _overlap_ms(
            root.start_ms, root.end_ms, maintenance_windows
        )
    attributed = sum(stage_totals.values())
    stages: List[Dict[str, object]] = [
        {
            "stage": name,
            "total_ms": total,
            "fraction": (total / attributed) if attributed > 0.0 else 0.0,
        }
        for name, total in stage_totals.items()
    ]
    stages.sort(key=lambda row: (-row["total_ms"], row["stage"]))
    return {
        "percentile": float(percentile),
        "num_requests": len(roots),
        "tail_requests": len(tail),
        "latency_at_percentile_ms": threshold,
        "stages": stages,
        "maintenance_overlap_ms": maintenance_overlap,
        "maintenance_overlap_fraction": (
            maintenance_overlap / tail_time if tail_time > 0.0 else 0.0
        ),
    }


def format_breakdown(breakdown: Dict[str, object]) -> str:
    """One-line human summary, e.g. ``p99 = 62% queue.wait + 31% device.execute``."""
    label = f"p{breakdown['percentile']:g}"
    parts = [
        f"{row['fraction'] * 100.0:.0f}% {row['stage']}"
        for row in breakdown["stages"]
        if row["total_ms"] > 0.0
    ]
    if not parts:
        return f"{label} = (no attributed stages)"
    return f"{label} = " + " + ".join(parts)
