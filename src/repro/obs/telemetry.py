"""Labeled telemetry instruments with bounded memory.

The registry is the metrics substrate of the serving stack.  It deliberately
mirrors the OpenMetrics data model — named instruments qualified by a frozen
set of string labels — so the whole registry can be rendered as a
Prometheus-style text exposition, merged across runs, or sampled into a
time series on the simulated clock.

Three instrument kinds are provided:

* :class:`Counter` — monotonically increasing value (``int`` increments stay
  exact integers so snapshot dictionaries round-trip byte-for-byte).
* :class:`Gauge` — last-write-wins scalar.
* :class:`LogBucketHistogram` — a *bounded-memory* histogram over fixed
  geometric bucket boundaries.  Unlike ``serve.metrics.LatencyHistogram``
  (which keeps every sample and is retained only as an exactness oracle in
  the tests), memory is O(num_buckets) regardless of sample count, two
  histograms with the same boundary layout merge by adding bucket counts,
  and any percentile is off from the exact answer by at most the relative
  half-width of one bucket (``GROWTH ** 0.5 - 1``, about 4.5% with the
  default layout).  Exact ``count``/``sum``/``min``/``max`` scalars are
  tracked on the side so means and extrema stay exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

#: Geometric growth factor between consecutive bucket boundaries.  With
#: ``2 ** (1/8)`` each decade spans ~26.6 buckets and the geometric-midpoint
#: representative of a bucket is within ``2 ** (1/16) - 1`` (~4.4%) of any
#: sample inside it.
DEFAULT_GROWTH = 2.0 ** 0.125

#: Smallest positive boundary.  Samples at or below it (including zero and
#: negative values, which the simulated latencies can produce for cache hits)
#: land in the underflow bucket.
DEFAULT_LOWEST = 1e-6

#: Largest finite boundary; anything beyond lands in the overflow bucket.
DEFAULT_HIGHEST = 1e9

#: Relative error bound of a percentile answered from the default layout.
PERCENTILE_RELATIVE_ERROR = DEFAULT_GROWTH ** 0.5 - 1.0

LabelItems = Tuple[Tuple[str, str], ...]


def default_boundaries(
    lowest: float = DEFAULT_LOWEST,
    highest: float = DEFAULT_HIGHEST,
    growth: float = DEFAULT_GROWTH,
) -> np.ndarray:
    """Fixed geometric bucket boundaries shared by every mergeable histogram."""
    if not (lowest > 0.0 and highest > lowest and growth > 1.0):
        raise ValueError("need 0 < lowest < highest and growth > 1")
    num_edges = int(math.ceil(math.log(highest / lowest, growth))) + 1
    edges = lowest * growth ** np.arange(num_edges, dtype=np.float64)
    edges[-1] = max(edges[-1], highest)
    return edges


class Counter:
    """Monotonic counter.  Integer increments keep the value an ``int``."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    @property
    def kind(self) -> str:
        return "counter"


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    @property
    def kind(self) -> str:
        return "gauge"


class LogBucketHistogram:
    """Bounded-memory histogram over fixed geometric bucket boundaries.

    Layout: bucket 0 is the underflow bucket (samples ``<= edges[0]``,
    including zeros), bucket ``i`` (``1 <= i <= num_edges - 1``) covers
    ``(edges[i-1], edges[i]]``, and the last bucket is the overflow bucket
    (samples ``> edges[-1]``).  Exact ``count``/``sum``/``min``/``max``
    scalars ride along so :attr:`mean` and :attr:`max` stay exact; only
    percentiles are approximate, bounded by the bucket half-width.
    """

    __slots__ = ("edges", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, edges: Optional[np.ndarray] = None) -> None:
        self.edges = default_boundaries() if edges is None else np.asarray(edges)
        self.bucket_counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __len__(self) -> int:
        return self.count

    def record(self, value: float) -> None:
        value = float(value)
        position = int(np.searchsorted(self.edges, value, side="left"))
        self.bucket_counts[position] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        """Vectorized bulk record: one searchsorted + bincount per batch.

        Accepts any array-like; no per-element ``float()`` conversion happens
        (the churn the exact-sample histogram suffered from).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        positions = np.searchsorted(self.edges, values, side="left")
        self.bucket_counts += np.bincount(
            positions, minlength=self.bucket_counts.size
        )
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    def merge(self, other: "LogBucketHistogram") -> None:
        """Fold ``other`` into this histogram (same fixed boundary layout)."""
        if self.edges.shape != other.edges.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise ValueError("cannot merge histograms with different boundaries")
        self.bucket_counts += other.bucket_counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def maximum(self) -> float:
        return self.max if self.count else float("nan")

    @property
    def minimum(self) -> float:
        return self.min if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Approximate percentile: geometric midpoint of the covering bucket.

        The representative is clipped into ``[min, max]`` so the answer is
        never outside the observed range; relative error versus the exact
        sample percentile is bounded by ``sqrt(growth) - 1``.  The extreme
        quantiles answer from the exact extrema the histogram already tracks:
        a bucket representative for q=0/q=100 could still contradict them
        (e.g. a sample just above a bucket edge reports p0 > min).
        """
        if self.count == 0:
            return float("nan")
        if q <= 0.0:
            return float(self.min)
        if q >= 100.0:
            return float(self.max)
        rank = (q / 100.0) * (self.count - 1)
        cumulative = np.cumsum(self.bucket_counts)
        position = int(np.searchsorted(cumulative, rank, side="right"))
        position = min(position, self.bucket_counts.size - 1)
        if position == 0:
            representative = float(self.edges[0])
        elif position >= self.edges.size:
            representative = float(self.edges[-1])
        else:
            low = float(self.edges[position - 1])
            high = float(self.edges[position])
            representative = math.sqrt(low * high)
        return float(min(max(representative, self.min), self.max))

    @property
    def kind(self) -> str:
        return "histogram"


Instrument = Union[Counter, Gauge, LogBucketHistogram]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_name(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class TelemetryRegistry:
    """Registry of labeled instruments with sampling + text exposition.

    Instruments are get-or-create: ``registry.counter("reads", shard="3")``
    always returns the same :class:`Counter` for the same name/label set.
    ``sample_interval_ms`` arms periodic time-series snapshots driven by the
    simulated clock via :meth:`maybe_sample`.
    """

    def __init__(self, sample_interval_ms: Optional[float] = None) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}
        self.sample_interval_ms = sample_interval_ms
        self.series: List[Dict[str, object]] = []
        self._last_sample_ms: Optional[float] = None

    # -- instrument lookup -------------------------------------------------
    def _get(self, factory, name: str, labels: Dict[str, str]) -> Instrument:
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def get_or_create(self, name: str, factory, **labels: str) -> Instrument:
        """Get-or-create an instrument with a custom factory (e.g. a
        histogram subclass); an existing instrument is returned as-is."""
        return self._get(factory, name, labels)

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> LogBucketHistogram:
        return self._get(LogBucketHistogram, name, labels)

    def instruments(
        self, name: Optional[str] = None
    ) -> Iterator[Tuple[str, LabelItems, Instrument]]:
        """Iterate ``(name, labels, instrument)`` sorted by name then labels."""
        for (metric, labels), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            if name is None or metric == name:
                yield metric, labels, instrument

    def labeled_values(self, name: str) -> Dict[str, Union[int, float]]:
        """Scalar values of every series of ``name``, keyed by rendered labels."""
        return {
            render_name(metric, labels): instrument.value
            for metric, labels, instrument in self.instruments(name)
            if not isinstance(instrument, LogBucketHistogram)
        }

    # -- time series -------------------------------------------------------
    def sample(self, now_ms: float) -> Dict[str, object]:
        """Append one time-series snapshot of every instrument at ``now_ms``."""
        values: Dict[str, object] = {}
        for metric, labels, instrument in self.instruments():
            key = render_name(metric, labels)
            if isinstance(instrument, LogBucketHistogram):
                values[key] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "p99": instrument.percentile(99.0),
                }
            else:
                values[key] = instrument.value
        point = {"t_ms": float(now_ms), "values": values}
        self.series.append(point)
        self._last_sample_ms = float(now_ms)
        return point

    def maybe_sample(self, now_ms: float) -> bool:
        """Sample if the configured interval elapsed on the simulated clock."""
        if not self.sample_interval_ms:
            return False
        if (
            self._last_sample_ms is not None
            and now_ms - self._last_sample_ms < self.sample_interval_ms
        ):
            return False
        self.sample(now_ms)
        return True

    # -- exposition --------------------------------------------------------
    def exposition(self) -> str:
        """Prometheus-style text exposition of the whole registry.

        Histograms are rendered sparsely: only occupied cumulative buckets
        plus the mandatory ``+Inf`` bucket, ``_sum``, and ``_count`` series.
        """
        lines: List[str] = []
        seen_types: set = set()
        for metric, labels, instrument in self.instruments():
            if metric not in seen_types:
                seen_types.add(metric)
                lines.append(f"# TYPE {metric} {instrument.kind}")
            if isinstance(instrument, LogBucketHistogram):
                cumulative = 0
                for position in np.nonzero(instrument.bucket_counts)[0]:
                    cumulative = int(
                        instrument.bucket_counts[: position + 1].sum()
                    )
                    edge = (
                        instrument.edges[position]
                        if position < instrument.edges.size
                        else math.inf
                    )
                    bucket_labels = labels + (("le", f"{float(edge):.9g}"),)
                    lines.append(
                        f"{render_name(metric + '_bucket', bucket_labels)}"
                        f" {cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{render_name(metric + '_bucket', inf_labels)}"
                    f" {instrument.count}"
                )
                lines.append(
                    f"{render_name(metric + '_sum', labels)} {instrument.total:.9g}"
                )
                lines.append(
                    f"{render_name(metric + '_count', labels)} {instrument.count}"
                )
            else:
                lines.append(f"{render_name(metric, labels)} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """Flat scalar snapshot (histograms reduced to count/sum/p50/p99)."""
        out: Dict[str, object] = {}
        for metric, labels, instrument in self.instruments():
            key = render_name(metric, labels)
            if isinstance(instrument, LogBucketHistogram):
                out[key] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "p50": instrument.percentile(50.0),
                    "p99": instrument.percentile(99.0),
                }
            else:
                out[key] = instrument.value
        return out
