"""Sorted key-rowID storage partitioned into fixed-size buckets.

cgRX keeps the indexed data itself in a single sorted array of key-rowID
pairs and only materialises one representative per *bucket* (a fixed-size
logical partition of that array) in the 3D scene.  This module owns the
sorted array, the bucket arithmetic, the duplicate-aware scan semantics of
point and range lookups, and the memory-footprint accounting of the array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.sort import device_radix_sort


@dataclass
class ScanResult:
    """Outcome of scanning a bucket (and possibly trailing duplicates) for a key."""

    #: RowIDs of all matching entries (empty on a miss).
    row_ids: np.ndarray
    #: Number of entries the scan had to touch (drives the cost model).
    entries_scanned: int

    @property
    def hit(self) -> bool:
        return self.row_ids.size > 0

    def aggregate(self) -> int:
        """Aggregated rowID value (the paper aggregates rowIDs per lookup)."""
        return int(self.row_ids.sum()) if self.row_ids.size else -1


class BucketedKeys:
    """A sorted key-rowID array logically partitioned into equal-size buckets."""

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: np.ndarray,
        bucket_size: int,
        key_bytes: int = 8,
        rowid_bytes: int = 4,
        presorted: bool = False,
    ) -> None:
        keys = np.asarray(keys)
        row_ids = np.asarray(row_ids)
        if keys.shape[0] != row_ids.shape[0]:
            raise ValueError("keys and row_ids must have the same length")
        if keys.shape[0] == 0:
            raise ValueError("cannot bucket an empty key set")
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")

        if presorted:
            self.keys = keys
            self.row_ids = row_ids
            self.sort_stats = KernelStats(name="bucketing.presorted")
        else:
            self.keys, self.row_ids, self.sort_stats = device_radix_sort(keys, row_ids)

        self.bucket_size = int(bucket_size)
        self.key_bytes = int(key_bytes)
        self.rowid_bytes = int(rowid_bytes)

    # --------------------------------------------------------------- geometry

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def num_buckets(self) -> int:
        """Number of buckets (the last one may be partially filled)."""
        return -(-len(self) // self.bucket_size)

    def bucket_bounds(self, bucket_id: int) -> Tuple[int, int]:
        """Half-open index range ``[start, end)`` of ``bucket_id`` in the sorted array."""
        if not 0 <= bucket_id < self.num_buckets:
            raise IndexError(f"bucket_id {bucket_id} out of range")
        start = bucket_id * self.bucket_size
        end = min(start + self.bucket_size, len(self))
        return start, end

    def bucket_keys(self, bucket_id: int) -> np.ndarray:
        """Keys stored in ``bucket_id``."""
        start, end = self.bucket_bounds(bucket_id)
        return self.keys[start:end]

    def representative_index(self, bucket_id: int) -> int:
        """Index (in the sorted array) of the bucket's representative (its last key)."""
        _, end = self.bucket_bounds(bucket_id)
        return end - 1

    def representative(self, bucket_id: int) -> int:
        """The bucket's representative key (its largest key)."""
        return int(self.keys[self.representative_index(bucket_id)])

    def representatives(self) -> np.ndarray:
        """Representatives of all buckets (vectorised)."""
        ends = np.minimum(
            (np.arange(self.num_buckets) + 1) * self.bucket_size, len(self)
        )
        return self.keys[ends - 1]

    @property
    def min_representative(self) -> int:
        """Representative of the first bucket (``minRep`` in the paper's pseudo-code)."""
        return self.representative(0)

    @property
    def max_representative(self) -> int:
        """Largest key in the data set (``maxRep``)."""
        return int(self.keys[-1])

    def bucket_of_position(self, position: int) -> int:
        """Bucket containing the sorted-array position ``position``."""
        return int(position) // self.bucket_size

    # ------------------------------------------------------------------ scans

    def scan_point(self, bucket_id: int, key: int) -> ScanResult:
        """Scan ``bucket_id`` (and trailing duplicates) for ``key``.

        Mirrors the paper's scan semantics: start at the bucket's first entry
        and stop at the first key larger than the target, so duplicate groups
        spilling into subsequent buckets are fully retrieved.
        """
        start, _ = self.bucket_bounds(bucket_id)
        key = np.asarray(key, dtype=self.keys.dtype)
        left = int(np.searchsorted(self.keys, key, side="left"))
        right = int(np.searchsorted(self.keys, key, side="right"))
        if left >= right:
            # Miss: the scan runs from the bucket start until the first key
            # larger than the target (position ``left``).
            scanned = min(max(1, left - start + 1), len(self) - start)
            return ScanResult(
                row_ids=np.empty(0, dtype=self.row_ids.dtype), entries_scanned=scanned
            )
        # Hit: the scan touches everything from the bucket start up to and
        # including the first key larger than the target.  If the identified
        # bucket starts after the first duplicate (which a correct lookup
        # never does), only the entries from the bucket start onwards are
        # returned — tests compare against ground truth to surface such bugs.
        first = max(left, start)
        row_ids = self.row_ids[first:right]
        scanned = min(max(1, right - start + 1), len(self) - start)
        return ScanResult(row_ids=row_ids.copy(), entries_scanned=scanned)

    def scan_range(self, bucket_id: int, low: int, high: int) -> ScanResult:
        """Scan from the start of ``bucket_id`` collecting all entries in ``[low, high]``."""
        if high < low:
            raise ValueError("range upper bound must be >= lower bound")
        start, _ = self.bucket_bounds(bucket_id)
        low_arr = np.asarray(low, dtype=self.keys.dtype)
        high_arr = np.asarray(high, dtype=self.keys.dtype)
        first = int(np.searchsorted(self.keys, low_arr, side="left"))
        stop = int(np.searchsorted(self.keys, high_arr, side="right"))
        first = max(first, start)
        if stop <= first:
            scanned = max(1, min(stop, len(self)) - start + 1)
            scanned = min(scanned, len(self) - start)
            return ScanResult(row_ids=np.empty(0, dtype=self.row_ids.dtype), entries_scanned=scanned)
        row_ids = self.row_ids[first:stop]
        # The scan starts at the bucket start and stops one element past the
        # last qualifying entry (the first key > high), as in the paper.
        scanned = min(stop - start + 1, len(self) - start)
        return ScanResult(row_ids=row_ids.copy(), entries_scanned=scanned)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        """Device bytes of the sorted key-rowID array."""
        footprint = MemoryFootprint()
        footprint.add("key_rowid_array", len(self) * (self.key_bytes + self.rowid_bytes))
        return footprint
