"""Configuration objects for cgRX and cgRXu.

Section V of the paper analyses the impact of every knob below; the defaults
follow the paper's recommendations (optimized representation, scaled key
mapping, bucket size 32, binary search on a row-layout bucket, 128-byte nodes
initially filled to 50% for cgRXu).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Representation(str, Enum):
    """Which 3D scene representation cgRX builds (Section III)."""

    #: Explicit row/plane marker triangles at x = -1 / y = -1.
    NAIVE = "naive"
    #: Moved and auxiliary representatives serve as implicit markers.
    OPTIMIZED = "optimized"


class SearchStrategy(str, Enum):
    """How a bucket is searched after the raytracing stage located it."""

    LINEAR = "linear"
    BINARY = "binary"


class BucketLayout(str, Enum):
    """Physical layout of the key-rowID pairs inside a bucket."""

    #: Keys and rowIDs interleaved per entry (``k0 r0 k1 r1 ...``).
    ROW = "row"
    #: All keys first, then all rowIDs (two parallel arrays).
    COLUMN = "column"


#: Valid batch execution engines.  ``"vector"`` (the default) answers whole
#: batches with structure-of-arrays numpy kernels and wavefront BVH traversal;
#: ``"scalar"`` keeps the original one-key/one-ray-at-a-time reference paths;
#: ``"compiled"`` routes the hot axis-ray traversal and point-lookup chain
#: walks through fused compiled kernels (numba via the ``[compiled]`` extra,
#: or a runtime-compiled C backend) over quantized cache-blocked node tables.
#: All engines produce byte-identical results and identical instrumentation
#: counters; when no compiled backend is available, ``"compiled"`` degrades
#: to ``"vector"`` with a recorded telemetry gauge.
ENGINES = ("scalar", "vector", "compiled")


def validate_engine(engine: str) -> str:
    """Validate an engine name (shared by configs, indexes and the router)."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def resolve_engine(engine: str) -> str:
    """Map a configured engine to the one that will actually execute.

    ``"compiled"`` requires a kernel backend (numba or a C compiler); when
    none is available the call degrades to ``"vector"`` — same results, same
    counters — and records a ``compiled_engine_fallback`` telemetry gauge so
    the degradation is observable instead of silent.
    """
    if engine != "compiled":
        return engine
    from repro.rtx import compiled

    if compiled.available_backend() is not None:
        return "compiled"
    compiled.record_fallback("no_backend")
    return "vector"


@dataclass
class CgRXConfig:
    """Configuration of the static cgRX index."""

    #: Number of key-rowID pairs per bucket.  32 optimises throughput per
    #: memory footprint; 256 is the paper's space-efficient alternative.
    bucket_size: int = 32
    #: Scene representation (Section III-A naive vs Section III-B optimized).
    representation: Representation = Representation.OPTIMIZED
    #: Width of the indexed keys in bits (32 or 64).
    key_bits: int = 64
    #: Apply the Section V-A y/z scaling to the key mapping.
    scaled_mapping: bool = True
    #: Search strategy within a bucket.
    search_strategy: SearchStrategy = SearchStrategy.BINARY
    #: Physical bucket layout.
    bucket_layout: BucketLayout = BucketLayout.ROW
    #: Maximum number of triangles per BVH leaf.
    bvh_leaf_size: int = 4
    #: Batch execution engine: ``"vector"`` (SoA/wavefront) or ``"scalar"``.
    engine: str = "vector"

    def __post_init__(self) -> None:
        if self.bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        if self.key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        if self.bvh_leaf_size < 1:
            raise ValueError("bvh_leaf_size must be >= 1")
        if isinstance(self.representation, str):
            self.representation = Representation(self.representation)
        if isinstance(self.search_strategy, str):
            self.search_strategy = SearchStrategy(self.search_strategy)
        if isinstance(self.bucket_layout, str):
            self.bucket_layout = BucketLayout(self.bucket_layout)
        validate_engine(self.engine)

    @property
    def key_bytes(self) -> int:
        """Bytes per key."""
        return self.key_bits // 8

    def describe(self) -> str:
        """Short label such as ``cgRX (32)`` used in benchmark tables."""
        return f"cgRX ({self.bucket_size})"


@dataclass
class CgRXuConfig:
    """Configuration of the node-based updatable cgRXu index (Section IV)."""

    #: Bytes per node.  The paper evaluates nodes matching a 128-byte cache
    #: line ("1 cl") and half a cache line ("0.5 cl").
    node_bytes: int = 128
    #: Fraction of a node filled at bulk-load time (buckets of size N/2).
    initial_fill: float = 0.5
    #: Width of the indexed keys in bits (32 or 64).
    key_bits: int = 64
    #: Apply the Section V-A y/z scaling to the key mapping.
    scaled_mapping: bool = True
    #: Scene representation used for the bucket representatives.
    representation: Representation = Representation.OPTIMIZED
    #: Maximum number of triangles per BVH leaf.
    bvh_leaf_size: int = 4
    #: Batch execution engine: ``"vector"`` (SoA/wavefront) or ``"scalar"``.
    engine: str = "vector"
    #: Escalate a post-compaction BVH refit into a full rebuild once the
    #: total node overlap area grew past this multiple of the freshly built
    #: tree's (the Figure-1c degradation signal, applied to cgRXu's own
    #: representative scene).
    refit_escalation_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.node_bytes < 32:
            raise ValueError("node_bytes must be >= 32")
        if not 0.0 < self.initial_fill <= 1.0:
            raise ValueError("initial_fill must be in (0, 1]")
        if self.key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        if self.refit_escalation_ratio < 1.0:
            raise ValueError("refit_escalation_ratio must be >= 1.0")
        if isinstance(self.representation, str):
            self.representation = Representation(self.representation)
        validate_engine(self.engine)

    @property
    def key_bytes(self) -> int:
        """Bytes per key."""
        return self.key_bits // 8

    @property
    def rowid_bytes(self) -> int:
        """Bytes per rowID."""
        return 4

    #: Bytes of per-node metadata: maxKey (8), next pointer (4), size (4).
    NODE_HEADER_BYTES = 16

    @property
    def node_capacity(self) -> int:
        """Number of key-rowID entries a node can hold."""
        payload = self.node_bytes - self.NODE_HEADER_BYTES
        per_entry = self.key_bytes + self.rowid_bytes
        capacity = payload // per_entry
        if capacity < 2:
            raise ValueError(
                f"node_bytes={self.node_bytes} too small for keys of {self.key_bits} bits"
            )
        return capacity

    @property
    def initial_bucket_size(self) -> int:
        """Entries per bucket at bulk-load time (``node_capacity * initial_fill``)."""
        return max(1, int(self.node_capacity * self.initial_fill))

    def describe(self) -> str:
        """Short label such as ``cgRXu (1 cl)`` used in benchmark tables."""
        cache_lines = self.node_bytes / 128.0
        if cache_lines == int(cache_lines):
            cache_lines = int(cache_lines)
        return f"cgRXu ({cache_lines} cl)"
