"""The optimized scene representation (Section III-B, Algorithm 3).

Instead of explicit marker triangles at x = -1, the optimized representation
turns a subset of representatives into *implicit* markers:

* a representative that is the last one in its row and whose following key
  lives in a different row is **moved** to the end of the row (x = xmax);
* if the last representative of a row cannot be moved, an **auxiliary**
  representative is inserted at x = xmax, mapping to the next bucket;
* the last representative of a plane additionally produces a marker at
  (xmax, ymax) unless its own row already is the last row;
* a moved representative that is the *only* representative of its row is
  **flipped** (winding order inverted) so that the y-axis ray recognises the
  situation as a back-side hit and the final x-axis ray can be skipped.

This keeps every populated row terminated by a triangle at x = xmax, so the
y/z discovery rays are fired along the x = xmax column (and y = ymax row)
instead of the dedicated marker lanes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.representation import MISS, SceneRepresentation
from repro.rtx.traversal import RayStats


class OptimizedRepresentation(SceneRepresentation):
    """Moved/auxiliary representatives serve as implicit row and plane markers."""

    # ------------------------------------------------------------ construction

    def _build_scene(self) -> None:
        """Algorithm 3: place representatives, implicit markers and flips."""
        bucketed = self.bucketed
        mapping = self.mapping
        buffer = self.pipeline.vertex_buffer

        num_buckets = self.num_buckets
        keys = bucketed.keys.astype(np.uint64)
        n = len(bucketed)
        x_max = mapping.x_max
        y_max = mapping.y_max

        marker_sections = int(self.multi_line) + int(self.multi_plane)
        buffer.reserve((1 + marker_sections) * num_buckets)

        bucket_ids = np.arange(num_buckets, dtype=np.int64)
        rep_idx = np.minimum((bucket_ids + 1) * bucketed.bucket_size, n) - 1
        reps = keys[rep_idx]
        rep_x = mapping.x_of(reps).astype(np.int64)
        rep_y = mapping.y_of(reps).astype(np.int64)
        rep_z = mapping.z_of(reps).astype(np.int64)
        rep_yz = mapping.yz_of(reps).astype(np.uint64)

        # The key following each representative (nonexistent for the last
        # bucket, which makes its representative trivially movable).
        has_next_key = rep_idx + 1 < n
        next_key = keys[np.minimum(rep_idx + 1, n - 1)]
        next_key_yz = mapping.yz_of(next_key).astype(np.uint64)

        has_prev = bucket_ids > 0
        prev_rep = np.empty_like(reps)
        prev_rep[1:] = reps[:-1]
        prev_rep[0] = reps[0]
        prev_yz = mapping.yz_of(prev_rep).astype(np.uint64)

        has_next_rep = bucket_ids + 1 < num_buckets
        next_rep = np.empty_like(reps)
        next_rep[:-1] = reps[1:]
        next_rep[-1] = reps[-1]
        next_rep_yz = mapping.yz_of(next_rep).astype(np.uint64)
        next_rep_z = mapping.z_of(next_rep).astype(np.int64)

        movable = ~has_next_key | (next_key_yz != rep_yz)
        needs_rep = ~has_prev | (reps != prev_rep) | (movable & (rep_x != x_max))
        needs_row_marker = (~movable) & (~has_next_rep | (rep_yz != next_rep_yz))
        needs_plane_marker = (rep_y != y_max) & (~has_next_rep | (rep_z != next_rep_z))
        do_flip = movable & (~has_prev | (prev_yz != rep_yz))

        #: Slot offsets of the auxiliary sections (used by primitive remapping).
        self.row_marker_offset = num_buckets
        self.plane_marker_offset = 2 * num_buckets

        scene_y = rep_y.astype(np.float64) * mapping.y_scale
        scene_z = rep_z.astype(np.float64) * mapping.z_scale
        placed_x = np.where(movable, float(x_max), rep_x.astype(np.float64))

        rep_slots = np.nonzero(needs_rep)[0]
        buffer.write_key_triangles(
            rep_slots,
            placed_x[rep_slots],
            scene_y[rep_slots],
            scene_z[rep_slots],
            flipped=do_flip[rep_slots],
        )

        if self.multi_line:
            marker_slots = np.nonzero(needs_row_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.row_marker_offset,
                np.full(marker_slots.shape[0], float(x_max)),
                scene_y[marker_slots],
                scene_z[marker_slots],
            )

        if self.multi_plane:
            marker_slots = np.nonzero(needs_plane_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.plane_marker_offset,
                np.full(marker_slots.shape[0], float(x_max)),
                np.full(marker_slots.shape[0], float(y_max) * mapping.y_scale),
                scene_z[marker_slots],
            )

    # ------------------------------------------------------------- remapping

    def remap_primitive_index(self, primitive_index: int) -> int:
        """Map a primitive index back to a bucketID.

        Auxiliary triangles are stored after the regular representatives, and
        an auxiliary triangle produced by bucket ``b`` marks the transition
        *into* bucket ``b + 1``, hence the ``+ 1`` in the remapping (the
        formula from Section III-B of the paper).
        """
        if primitive_index >= self.plane_marker_offset and self.multi_plane:
            return primitive_index - self.plane_marker_offset + 1
        if primitive_index >= self.row_marker_offset:
            return primitive_index - self.row_marker_offset + 1
        return primitive_index

    # ----------------------------------------------------------------- lookups

    def locate_bucket(self, key: int, stats: Optional[RayStats] = None) -> int:
        """Point lookup using at most five (usually one or two) rays."""
        key = int(key)
        if key > self.max_representative:
            return MISS
        if key < self.min_representative:
            return 0

        mapping = self.mapping
        caster = self.caster
        kx = int(mapping.x_of(key))
        ky = int(mapping.y_of(key))
        kz = int(mapping.z_of(key))
        x_max = mapping.x_max
        y_max = mapping.y_max

        # Ray 1: along +x in the key's own row.  Because every populated row
        # ends with a triangle at x = xmax, this ray only misses when the row
        # holds no representative at all.
        same_row = caster.x_cast(kx, ky, kz, stats=stats)
        if same_row:
            return self.remap_primitive_index(int(same_row.primitive_index))

        # Ray 2: along +y in the x = xmax column to find the next populated
        # row.  A back-face hit means the row's only representative was moved
        # there (flipped), so it already is the answer.
        if self.multi_line:
            next_row = caster.y_cast(x_max, ky + 1, kz, stats=stats)
            if next_row:
                if not next_row.front_face:
                    return self.remap_primitive_index(int(next_row.primitive_index))
                row_y = caster.hit_grid_y(next_row)
                hit = caster.x_cast(0, row_y, kz, stats=stats)
                if hit:
                    return self.remap_primitive_index(int(hit.primitive_index))
                return MISS

        # Rays 3-5: find the next populated plane along the (xmax, ymax)
        # column, then its first populated row, then the leftmost
        # representative of that row.
        if self.multi_plane:
            next_plane = caster.z_cast(x_max, y_max, kz + 1, stats=stats)
            if next_plane:
                plane_z = caster.hit_grid_z(next_plane)
                next_row = caster.y_cast(x_max, 0, plane_z, stats=stats)
                if next_row:
                    if not next_row.front_face:
                        return self.remap_primitive_index(int(next_row.primitive_index))
                    row_y = caster.hit_grid_y(next_row)
                    hit = caster.x_cast(0, row_y, plane_z, stats=stats)
                    if hit:
                        return self.remap_primitive_index(int(hit.primitive_index))
                return MISS

        # Defensive fallback, unreachable for keys inside the indexed range.
        return MISS

    # ---------------------------------------------------------- batched lookups

    def _remap_batch(self, primitive_index: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`remap_primitive_index`."""
        plane = (primitive_index >= self.plane_marker_offset) & self.multi_plane
        row = primitive_index >= self.row_marker_offset
        return np.where(
            plane,
            primitive_index - self.plane_marker_offset + 1,
            np.where(row, primitive_index - self.row_marker_offset + 1, primitive_index),
        )

    def locate_bucket_batch(self, keys: np.ndarray, stats=None):
        """Wavefront point routing: all keys advance stage by stage.

        Every key fires exactly the rays :meth:`locate_bucket` would fire, as
        per-stage wavefront launches (all stage rays share an axis).  Returns
        ``(bucket_ids, nodes_visited)`` with :data:`MISS` for out-of-range
        keys and the per-key BVH node visits used for divergence sampling;
        ``stats`` accumulates the identical ray totals.
        """
        keys = np.asarray(keys)
        num_keys = int(keys.shape[0])
        out = np.full(num_keys, MISS, dtype=np.int64)
        nodes = np.zeros(num_keys, dtype=np.int64)
        if num_keys == 0:
            return out, nodes

        mapping = self.mapping
        caster = self.caster
        keys64 = keys.astype(np.uint64)
        below = keys64 < np.uint64(self.min_representative)
        in_range = keys64 <= np.uint64(self.max_representative)
        out[below] = 0

        kx = mapping.x_of(keys64).astype(np.int64)
        ky = mapping.y_of(keys64).astype(np.int64)
        kz = mapping.z_of(keys64).astype(np.int64)
        x_max = mapping.x_max
        y_max = mapping.y_max

        # Ray 1: along +x in each key's own row.
        todo = np.nonzero(in_range & ~below)[0]
        if todo.size == 0:
            return out, nodes
        same_row = caster.x_cast_batch(kx[todo], ky[todo], kz[todo], stats=stats)
        nodes[todo] += same_row.nodes_visited
        resolved = same_row.hit
        out[todo[resolved]] = self._remap_batch(same_row.primitive_index[resolved])
        pending = todo[~resolved]

        # Ray 2 (+ ray 3 for front-face hits): next populated row via the
        # x = xmax column.
        if self.multi_line and pending.size:
            next_row = caster.y_cast_batch(
                np.full(pending.size, x_max, dtype=np.int64),
                ky[pending] + 1,
                kz[pending],
                stats=stats,
            )
            nodes[pending] += next_row.nodes_visited
            hit = next_row.hit
            back = hit & ~next_row.front_face
            out[pending[back]] = self._remap_batch(next_row.primitive_index[back])
            front = np.nonzero(hit & next_row.front_face)[0]
            if front.size:
                front_keys = pending[front]
                row_y = caster.hit_grid_y_batch(next_row.point)[front]
                leftmost = caster.x_cast_batch(
                    np.zeros(front.size, dtype=np.int64),
                    row_y,
                    kz[front_keys],
                    stats=stats,
                )
                nodes[front_keys] += leftmost.nodes_visited
                found = leftmost.hit
                out[front_keys[found]] = self._remap_batch(
                    leftmost.primitive_index[found]
                )
            pending = pending[~hit]

        # Rays 3-5: next populated plane, then its first row, then the
        # leftmost representative of that row.
        if self.multi_plane and pending.size:
            next_plane = caster.z_cast_batch(
                np.full(pending.size, x_max, dtype=np.int64),
                np.full(pending.size, y_max, dtype=np.int64),
                kz[pending] + 1,
                stats=stats,
            )
            nodes[pending] += next_plane.nodes_visited
            planed = np.nonzero(next_plane.hit)[0]
            if planed.size:
                plane_keys = pending[planed]
                plane_z = caster.hit_grid_z_batch(next_plane.point)[planed]
                next_row = caster.y_cast_batch(
                    np.full(planed.size, x_max, dtype=np.int64),
                    np.zeros(planed.size, dtype=np.int64),
                    plane_z,
                    stats=stats,
                )
                nodes[plane_keys] += next_row.nodes_visited
                hit = next_row.hit
                back = hit & ~next_row.front_face
                out[plane_keys[back]] = self._remap_batch(next_row.primitive_index[back])
                front = np.nonzero(hit & next_row.front_face)[0]
                if front.size:
                    front_keys = plane_keys[front]
                    row_y = caster.hit_grid_y_batch(next_row.point)[front]
                    leftmost = caster.x_cast_batch(
                        np.zeros(front.size, dtype=np.int64),
                        row_y,
                        plane_z[front],
                        stats=stats,
                    )
                    nodes[front_keys] += leftmost.nodes_visited
                    found = leftmost.hit
                    out[front_keys[found]] = self._remap_batch(
                        leftmost.primitive_index[found]
                    )
        return out, nodes
