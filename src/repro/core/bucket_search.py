"""Cost accounting for searching a bucket after the raytracing stage located it.

cgRX supports linear and binary search over buckets stored in row layout
(interleaved key-rowID pairs) or column layout (two parallel arrays).  The
paper reports that binary search on a row layout wins both for tiny (4) and
huge (65,536) buckets, so that is the default.  The actual result values come
from :class:`~repro.core.bucketing.BucketedKeys`; this module only computes
how much *work* the configured strategy performs, which is what the cost
model needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import BucketLayout, SearchStrategy
from repro.gpu.cost_model import UNCOALESCED_ACCESS_BYTES
from repro.gpu.simt import COOPERATIVE_GROUP_SIZE, cooperative_scan_steps


@dataclass
class BucketSearchCost:
    """Work performed by one bucket search."""

    bytes_read: int = 0
    compute_ops: int = 0


class BucketSearchModel:
    """Computes the per-lookup work of a bucket search strategy."""

    def __init__(
        self,
        strategy: SearchStrategy = SearchStrategy.BINARY,
        layout: BucketLayout = BucketLayout.ROW,
        key_bytes: int = 8,
        rowid_bytes: int = 4,
        group_size: int = COOPERATIVE_GROUP_SIZE,
    ) -> None:
        self.strategy = strategy
        self.layout = layout
        self.key_bytes = int(key_bytes)
        self.rowid_bytes = int(rowid_bytes)
        self.group_size = int(group_size)

    @property
    def entry_bytes(self) -> int:
        """Bytes of one key-rowID entry."""
        return self.key_bytes + self.rowid_bytes

    def _probe_bytes(self) -> int:
        """DRAM bytes of a single uncoalesced search probe.

        A random access always drags in a full memory sector; in row layout
        that sector already contains the rowID, in column layout only keys.
        Either way the traffic per probe is one sector.
        """
        if self.layout is BucketLayout.ROW:
            return max(self.entry_bytes, UNCOALESCED_ACCESS_BYTES)
        return max(self.key_bytes, UNCOALESCED_ACCESS_BYTES)

    def point_search(self, bucket_size: int, entries_scanned: int) -> BucketSearchCost:
        """Work of locating a key inside a bucket.

        ``entries_scanned`` is the number of entries the duplicate-aware scan
        actually touched (reported by
        :meth:`repro.core.bucketing.BucketedKeys.scan_point`), which bounds
        the linear-search cost and the trailing duplicate scan of the binary
        search.
        """
        bucket_size = max(1, int(bucket_size))
        entries_scanned = max(1, int(entries_scanned))

        if self.strategy is SearchStrategy.LINEAR:
            # A cooperative linear scan reads neighbouring entries coalesced.
            steps = cooperative_scan_steps(entries_scanned, self.group_size)
            touched = min(entries_scanned, steps * self.group_size)
            bytes_read = touched * self.entry_bytes + self.rowid_bytes
            compute_ops = touched
        else:
            probes = max(1, math.ceil(math.log2(bucket_size + 1)))
            # Duplicates (entries beyond the bucket) are resolved by a
            # coalesced cooperative scan after the binary search found the
            # first match.
            trailing = max(0, entries_scanned - bucket_size)
            trailing_steps = cooperative_scan_steps(trailing, self.group_size)
            bytes_read = (
                probes * self._probe_bytes()
                + trailing_steps * self.group_size * self.entry_bytes
                + self.rowid_bytes
            )
            compute_ops = probes + trailing_steps * self.group_size

        return BucketSearchCost(bytes_read=bytes_read, compute_ops=compute_ops)

    def range_scan(self, entries_scanned: int) -> BucketSearchCost:
        """Work of the cooperative scan answering a range lookup.

        The scan always runs as a separate kernel with a 16-thread group per
        lookup, loading neighbouring entries coalesced.
        """
        entries_scanned = max(1, int(entries_scanned))
        steps = cooperative_scan_steps(entries_scanned, self.group_size)
        touched = steps * self.group_size
        bytes_read = touched * self.entry_bytes
        compute_ops = touched
        return BucketSearchCost(bytes_read=bytes_read, compute_ops=compute_ops)
