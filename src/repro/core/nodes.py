"""Slab-allocated node storage for the updatable index cgRXu (Section IV).

Buckets are linked lists of fixed-size nodes.  Rather than allocating nodes
individually, cgRXu carves them out of two large slabs:

* the **representative node region** holds exactly one node per bucket (the
  head of each list); a representative triangle's primitive index multiplied
  by the node size yields the address of its representative node, and
* the **linked node region** provides the nodes appended when inserts force a
  node to split.

Both regions live permanently on the device and count towards the index's
memory footprint even when nodes are only partially occupied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.gpu.memory import MemoryFootprint

#: ``next`` pointer value marking the end of a bucket's chain.
NO_NEXT = -1


@dataclass
class NodeView:
    """A lightweight read view of one node (used by tests and debugging)."""

    index: int
    keys: np.ndarray
    row_ids: np.ndarray
    max_key: int
    next_node: int
    size: int


class NodeStorage:
    """Two-region slab of fixed-capacity nodes."""

    def __init__(
        self,
        num_representative_nodes: int,
        node_capacity: int,
        node_bytes: int,
        key_dtype=np.uint64,
        linked_region_initial: int = 0,
    ) -> None:
        if num_representative_nodes < 1:
            raise ValueError("need at least one representative node")
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")

        self.node_capacity = int(node_capacity)
        self.node_bytes = int(node_bytes)
        self.key_dtype = np.dtype(key_dtype)
        self.num_representative_nodes = int(num_representative_nodes)

        linked_region_initial = max(int(linked_region_initial), self.num_representative_nodes // 4, 16)
        total = self.num_representative_nodes + linked_region_initial

        self._keys = np.zeros((total, self.node_capacity), dtype=self.key_dtype)
        self._row_ids = np.zeros((total, self.node_capacity), dtype=np.uint32)
        self._sizes = np.zeros(total, dtype=np.int32)
        self._max_keys = np.zeros(total, dtype=np.uint64)
        self._next = np.full(total, NO_NEXT, dtype=np.int64)
        #: Number of linked-region nodes handed out so far (high-water mark).
        self._linked_used = 0
        #: Linked-region nodes released by chain compaction, available for
        #: reuse before the bump allocator hands out fresh slots.
        self._free_nodes: List[int] = []

    # ------------------------------------------------------------- allocation

    @property
    def linked_region_capacity(self) -> int:
        """Total linked-region nodes currently reserved (used or not)."""
        return int(self._keys.shape[0]) - self.num_representative_nodes

    @property
    def linked_nodes_used(self) -> int:
        """Linked-region nodes currently *live* (allocated and not released)."""
        return self._linked_used - len(self._free_nodes)

    @property
    def total_nodes(self) -> int:
        """Representative nodes plus live linked nodes."""
        return self.num_representative_nodes + self.linked_nodes_used

    def allocate_linked_node(self) -> int:
        """Hand out a node from the linked region, preferring released ones."""
        if self._free_nodes:
            return self._free_nodes.pop()
        if self._linked_used >= self.linked_region_capacity:
            self._grow_linked_region()
        index = self.num_representative_nodes + self._linked_used
        self._linked_used += 1
        return index

    def release_linked_node(self, index: int) -> None:
        """Return a linked-region node to the allocator (compaction reclaim)."""
        if index < self.num_representative_nodes:
            raise ValueError("representative nodes cannot be released")
        self._keys[index] = 0
        self._row_ids[index] = 0
        self._sizes[index] = 0
        self._max_keys[index] = 0
        self._next[index] = NO_NEXT
        self._free_nodes.append(index)

    def _grow_linked_region(self) -> None:
        """Double the linked region (the paper enlarges the slab when exhausted)."""
        additional = max(self.linked_region_capacity, 16)
        new_total = self._keys.shape[0] + additional
        for attribute, fill in (
            ("_keys", 0),
            ("_row_ids", 0),
            ("_sizes", 0),
            ("_max_keys", 0),
            ("_next", NO_NEXT),
        ):
            old = getattr(self, attribute)
            grown = np.full((new_total,) + old.shape[1:], fill, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, attribute, grown)

    # ----------------------------------------------------------------- access

    def node_size(self, index: int) -> int:
        return int(self._sizes[index])

    def node_max_key(self, index: int) -> int:
        return int(self._max_keys[index])

    def node_next(self, index: int) -> int:
        return int(self._next[index])

    def node_keys(self, index: int) -> np.ndarray:
        """The occupied key slots of a node (a view, not a copy)."""
        return self._keys[index, : self._sizes[index]]

    def node_row_ids(self, index: int) -> np.ndarray:
        """The occupied rowID slots of a node (a view, not a copy)."""
        return self._row_ids[index, : self._sizes[index]]

    def set_next(self, index: int, next_index: int) -> None:
        self._next[index] = next_index

    def set_max_key(self, index: int, max_key: int) -> None:
        self._max_keys[index] = np.uint64(max_key)

    def view(self, index: int) -> NodeView:
        """Materialise a read-only snapshot of a node."""
        return NodeView(
            index=index,
            keys=self.node_keys(index).copy(),
            row_ids=self.node_row_ids(index).copy(),
            max_key=self.node_max_key(index),
            next_node=self.node_next(index),
            size=self.node_size(index),
        )

    # ------------------------------------------------------------- mutations

    def fill_node(
        self, index: int, keys: np.ndarray, row_ids: np.ndarray, max_key: int
    ) -> None:
        """Bulk-fill a node with sorted keys (used during initial construction)."""
        count = int(keys.shape[0])
        if count > self.node_capacity:
            raise ValueError("too many entries for one node")
        self._keys[index, :count] = keys
        self._row_ids[index, :count] = row_ids
        self._sizes[index] = count
        self._max_keys[index] = np.uint64(max_key)
        self._next[index] = NO_NEXT

    def insert_into_node(self, index: int, key: int, row_id: int) -> bool:
        """Insert ``key`` into a node keeping it sorted; False when the node is full."""
        size = int(self._sizes[index])
        if size >= self.node_capacity:
            return False
        keys = self._keys[index]
        position = int(np.searchsorted(keys[:size], np.asarray(key, dtype=self.key_dtype)))
        keys[position + 1 : size + 1] = keys[position:size]
        self._row_ids[index, position + 1 : size + 1] = self._row_ids[index, position:size]
        keys[position] = key
        self._row_ids[index, position] = row_id
        self._sizes[index] = size + 1
        return True

    def delete_from_node(self, index: int, key: int) -> bool:
        """Delete one occurrence of ``key`` from a node; False when not present."""
        size = int(self._sizes[index])
        keys = self._keys[index]
        position = int(np.searchsorted(keys[:size], np.asarray(key, dtype=self.key_dtype)))
        if position >= size or keys[position] != np.asarray(key, dtype=self.key_dtype):
            return False
        keys[position : size - 1] = keys[position + 1 : size]
        self._row_ids[index, position : size - 1] = self._row_ids[index, position + 1 : size]
        self._sizes[index] = size - 1
        return True

    def split_node(self, index: int) -> int:
        """Split a full node, moving its upper half into a fresh linked node.

        The new node inherits the old node's ``maxKey`` and its position in
        the chain; the old node's largest remaining key becomes its new
        ``maxKey``.  Returns the index of the new node.
        """
        size = int(self._sizes[index])
        if size < 2:
            raise ValueError("cannot split a node with fewer than two entries")
        new_index = self.allocate_linked_node()
        half = size // 2

        moved_keys = self._keys[index, half:size].copy()
        moved_row_ids = self._row_ids[index, half:size].copy()
        self.fill_node(new_index, moved_keys, moved_row_ids, self.node_max_key(index))

        self._sizes[index] = half
        self._max_keys[index] = self._keys[index, half - 1].astype(np.uint64)
        self._next[new_index] = self._next[index]
        self._next[index] = new_index
        return new_index

    def compact_chain(
        self,
        head: int,
        max_key: int,
        entries: "Tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> Tuple[int, int]:
        """Fold ``head``'s chain into the fewest nodes that hold its entries.

        Entries are re-packed head-first: every node but the chain's final
        one is filled to capacity and surplus linked nodes are released back
        to the allocator.  The final node's ``maxKey`` becomes ``max_key``
        (the bucket's routing upper bound) while interior nodes carry their
        own largest key — the same invariant node splits maintain.  A caller
        that already gathered the chain's ``(keys, row_ids)`` passes them as
        ``entries`` to skip the second walk.  Returns ``(nodes_before,
        nodes_after)``.
        """
        chain = list(self.chain(head))
        keys, row_ids = entries if entries is not None else self.chain_entries(head)
        count = int(keys.shape[0])
        nodes_after = max(1, -(-count // self.node_capacity))
        kept = chain[:nodes_after]
        for position, node in enumerate(kept):
            low = position * self.node_capacity
            high = min(count, low + self.node_capacity)
            node_max = max_key if position == nodes_after - 1 else int(keys[high - 1])
            self.fill_node(node, keys[low:high], row_ids[low:high], node_max)
        for position in range(nodes_after - 1):
            self._next[kept[position]] = kept[position + 1]
        for node in chain[nodes_after:]:
            self.release_linked_node(node)
        return len(chain), nodes_after

    # ------------------------------------------------------------- traversal

    def chain(self, head: int) -> Iterator[int]:
        """Iterate over the node indices of a bucket's chain, head first."""
        index = head
        while index != NO_NEXT:
            yield index
            index = self.node_next(index)

    # ------------------------------------------------------------- SoA access
    #
    # The batch execution engine walks many chains at once; these views expose
    # the slab arrays directly so its kernels can gather node rows without
    # per-node Python calls.

    @property
    def keys_matrix(self) -> np.ndarray:
        """All node key slots as a ``(total, capacity)`` matrix (shared view)."""
        return self._keys

    @property
    def row_ids_matrix(self) -> np.ndarray:
        """All node rowID slots as a ``(total, capacity)`` matrix (shared view)."""
        return self._row_ids

    @property
    def sizes_array(self) -> np.ndarray:
        """Occupied-slot count per node (shared view)."""
        return self._sizes

    @property
    def max_keys_array(self) -> np.ndarray:
        """``maxKey`` per node (shared view)."""
        return self._max_keys

    @property
    def next_array(self) -> np.ndarray:
        """``next`` pointer per node (shared view)."""
        return self._next

    def flatten_chains(self, num_chains: int) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten the first ``num_chains`` chains into one node-order table.

        Returns ``(order, starts)`` where ``order`` lists node indices in
        bucket-major chain order (chain 0 head-to-tail, then chain 1, ...)
        and ``starts[b]`` is chain ``b``'s offset into ``order``
        (``starts[num_chains]`` is the total).  Built with lockstep pointer
        chasing — the cost is O(max chain length) numpy passes, not O(nodes)
        Python iterations.
        """
        heads = np.arange(num_chains, dtype=np.int64)
        lengths = np.ones(num_chains, dtype=np.int64)
        cursor = self._next[heads]
        live = np.nonzero(cursor != NO_NEXT)[0]
        cursor = cursor[live]
        while live.size:
            lengths[live] += 1
            cursor = self._next[cursor]
            keep = cursor != NO_NEXT
            live = live[keep]
            cursor = cursor[keep]

        starts = np.zeros(num_chains + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        order = np.empty(int(starts[-1]), dtype=np.int64)
        live = heads
        cursor = heads.copy()
        level = 0
        while live.size:
            order[starts[live] + level] = cursor
            cursor = self._next[cursor]
            keep = cursor != NO_NEXT
            live = live[keep]
            cursor = cursor[keep]
            level += 1
        return order, starts

    def chain_entries(self, head: int) -> Tuple[np.ndarray, np.ndarray]:
        """All keys and rowIDs of a chain, in sorted order."""
        keys: List[np.ndarray] = []
        row_ids: List[np.ndarray] = []
        for index in self.chain(head):
            keys.append(self.node_keys(index).copy())
            row_ids.append(self.node_row_ids(index).copy())
        if not keys:
            return (
                np.empty(0, dtype=self.key_dtype),
                np.empty(0, dtype=np.uint32),
            )
        return np.concatenate(keys), np.concatenate(row_ids)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        """Device bytes of both slab regions (including unused reserved nodes)."""
        footprint = MemoryFootprint()
        footprint.add(
            "representative_node_region", self.num_representative_nodes * self.node_bytes
        )
        footprint.add("linked_node_region", self.linked_region_capacity * self.node_bytes)
        return footprint
