"""Base class shared by the naive and optimized scene representations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.core.bucketing import BucketedKeys
from repro.core.casting import SceneCaster
from repro.core.key_mapping import KeyMapping
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Sentinel returned by ``locate_bucket`` when the key lies outside the
#: indexed key range (Algorithm 2, line 3).
MISS = -1


class SceneRepresentation(ABC):
    """A strategy for materialising bucket representatives as triangles.

    Subclasses build the triangles into the pipeline's vertex buffer at
    construction time and implement the ray-firing sequence that maps a
    lookup key to its bucketID.
    """

    def __init__(
        self,
        bucketed: BucketedKeys,
        mapping: KeyMapping,
        pipeline: RaytracingPipeline,
    ) -> None:
        self.bucketed = bucketed
        self.mapping = mapping
        self.pipeline = pipeline
        self.num_buckets = bucketed.num_buckets

        representatives = bucketed.representatives()
        min_rep = int(representatives[0])
        max_rep = int(representatives[-1])
        #: True when representatives span more than one row (Algorithm 1, line 2).
        self.multi_line = int(mapping.yz_of(min_rep)) != int(mapping.yz_of(max_rep))
        #: True when representatives span more than one plane (line 3).
        self.multi_plane = int(mapping.z_of(min_rep)) != int(mapping.z_of(max_rep))

        self._build_scene()
        self.pipeline.build_acceleration_structure()
        self.caster = SceneCaster(pipeline, mapping)

    # ------------------------------------------------------------------ hooks

    @abstractmethod
    def _build_scene(self) -> None:
        """Write all representative (and marker) triangles into the vertex buffer."""

    @abstractmethod
    def locate_bucket(self, key: int, stats: Optional[RayStats] = None) -> int:
        """Return the bucketID whose representative is the first one >= ``key``.

        Returns :data:`MISS` when ``key`` is larger than the largest indexed
        key.  ``stats`` accumulates the ray-traversal work of the lookup.
        """

    def locate_bucket_batch(self, keys, stats: Optional[RayStats] = None):
        """Batched :meth:`locate_bucket`: ``(bucket_ids, nodes_visited)`` arrays.

        Subclasses override this with wavefront launches; the fallback loops
        the scalar procedure, so results and counters are identical by
        construction either way.
        """
        import numpy as np

        keys = np.asarray(keys)
        bucket_ids = np.empty(keys.shape[0], dtype=np.int64)
        nodes = np.zeros(keys.shape[0], dtype=np.int64)
        for position, key in enumerate(keys):
            local = RayStats()
            bucket_ids[position] = self.locate_bucket(int(key), local)
            nodes[position] = local.nodes_visited
            if stats is not None:
                stats.merge(local)
        return bucket_ids, nodes

    # ------------------------------------------------------------ maintenance

    def reanchor_representative(self, bucket_id: int, old_key: int, new_key: int) -> bool:
        """Move bucket ``bucket_id``'s representative triangle from ``old_key``
        to ``new_key``'s grid position, when that is provably safe.

        Compaction tightens a bucket whose largest entries were deleted by
        re-anchoring its representative to the bucket's current maximum key.
        The move is only legal when it cannot disturb the marker structure of
        either scene representation:

        * both keys map to the same (y, z) row — rays discover rows through
          markers/terminators whose placement depends on row membership;
        * the slot holds the *unmoved*, unflipped representative exactly at
          ``old_key``'s grid position (moved/auxiliary terminators at
          ``x = xmax`` and flipped representatives encode row-termination
          state and must stay put).

        Returns ``True`` when the triangle was rewritten; the caller is then
        responsible for refitting the acceleration structure.
        """
        mapping = self.mapping
        buffer = self.pipeline.vertex_buffer
        old_key = int(old_key)
        new_key = int(new_key)
        if not 0 <= bucket_id < self.num_buckets:
            return False
        if int(mapping.yz_of(old_key)) != int(mapping.yz_of(new_key)):
            return False
        old_x = int(mapping.x_of(old_key))
        new_x = int(mapping.x_of(new_key))
        if new_x == old_x:
            return False
        if not buffer.slot_occupied(bucket_id) or buffer.slot_flipped(bucket_id):
            return False
        scene_y = float(mapping.y_of(old_key)) * mapping.y_scale
        scene_z = float(mapping.z_of(old_key)) * mapping.z_scale
        centre = buffer.centres[bucket_id]
        if tuple(centre) != (float(old_x), scene_y, scene_z):
            return False
        buffer.write_key_triangle(bucket_id, float(new_x), scene_y, scene_z)
        return True

    # ------------------------------------------------------------- shared API

    @property
    def min_representative(self) -> int:
        return self.bucketed.min_representative

    @property
    def max_representative(self) -> int:
        return self.bucketed.max_representative

    def triangle_count(self) -> int:
        """Number of triangles materialised in the scene."""
        return self.pipeline.vertex_buffer.num_occupied

    def memory_footprint_bytes(self) -> int:
        """Device bytes of the vertex buffer plus the acceleration structure."""
        return self.pipeline.memory_footprint_bytes()
