"""Compiled node-chain kernels for cgRXu point lookups.

The vector engine's batched chain walk (``CgRXuIndex._collect_batch``)
advances all still-searching keys one node per lockstep iteration — ~15
numpy dispatches per level over gathered ``(key, slot)`` matrices.  The
compiled tier runs the whole walk per key in one fused loop over the
:class:`~repro.core.nodes.NodeStorage` slabs, using the same backend
machinery as the traversal megakernel (:mod:`repro.rtx.compiled`).

Zero-copy by construction: the kernels read the live ``NodeStorage`` slab
arrays directly (keys matrix, rowIDs, sizes, maxKeys, next pointers); only
the flattened ``(order, starts)`` chain tables are packed into the index's
shard-local arena, rebuilt in place whenever the chain cache is invalidated
by an update or compaction.

The walk mirrors ``CgRXuIndex._collect`` exactly — skip rule, per-node
``searchsorted`` window, entries-touched accounting and the cross-bucket
duplicate-group continuation — so results and kernel counters stay
byte-identical to both reference engines.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.rtx.compiled import Arena, available_backend, backend_kernels


class CompiledChainTables:
    """Arena-packed flattened chain tables for the compiled walk."""

    def __init__(self, order: np.ndarray, starts: np.ndarray, arena: Arena) -> None:
        self.arena = arena
        align = Arena.aligned
        arena.begin(align(order.shape[0] * 8) + align(starts.shape[0] * 8))
        self.order = arena.alloc(order.shape[0], np.int64)
        np.copyto(self.order, order)
        self.starts = arena.alloc(starts.shape[0], np.int64)
        np.copyto(self.starts, starts)


def chain_walk_batch(
    storage,
    tables: CompiledChainTables,
    buckets: np.ndarray,
    keys: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Fused point-lookup chain walk for a whole key batch.

    Returns per-key ``(row_sum, matches, nodes_visited, entries)`` exactly as
    ``CgRXuIndex._collect_batch`` would, or ``None`` when no compiled backend
    is available (caller falls back to the vector walk).
    """
    if available_backend() is None:
        return None
    chain_kernel = backend_kernels()[1]

    num_keys = int(keys.shape[0])
    key_is_64 = keys.dtype.itemsize == 8
    target64 = np.ascontiguousarray(keys.astype(np.uint64))
    start_pos = np.ascontiguousarray(tables.starts[buckets], dtype=np.int64)

    keys_matrix = storage.keys_matrix
    row_ids = storage.row_ids_matrix
    sizes = storage.sizes_array
    max_keys = storage.max_keys_array
    next_node = storage.next_array
    # The slabs are contiguous by construction; the kernels index them raw.
    keys64 = keys_matrix if key_is_64 else np.empty((0, 0), dtype=np.uint64)
    keys32 = keys_matrix if not key_is_64 else np.empty((0, 0), dtype=np.uint32)

    row_sum = np.zeros(num_keys, dtype=np.int64)
    matches = np.zeros(num_keys, dtype=np.int64)
    nodes_visited = np.zeros(num_keys, dtype=np.int64)
    entries = np.zeros(num_keys, dtype=np.int64)

    chain_kernel(
        target64,
        start_pos,
        int(tables.order.shape[0]),
        tables.order,
        int(storage.node_capacity),
        key_is_64,
        keys64,
        keys32,
        row_ids,
        sizes,
        max_keys,
        next_node,
        row_sum,
        matches,
        nodes_visited,
        entries,
    )
    return row_sum, matches, nodes_visited, entries
