"""The public cgRX index facade.

:class:`CgRXIndex` wires together the sorted bucketed key-rowID array, the key
mapping, the raytracing pipeline and one of the two scene representations,
and exposes the :class:`~repro.baselines.base.GpuIndex` interface (batched
point lookups, batched range lookups, rebuild-based updates and
memory-footprint reporting).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
)
from repro.core.bucket_search import BucketSearchModel
from repro.core.bucketing import BucketedKeys
from repro.core.config import CgRXConfig, Representation, resolve_engine
from repro.core.key_mapping import KeyMapping
from repro.core.naive import NaiveRepresentation
from repro.core.optimized import OptimizedRepresentation
from repro.core.representation import MISS
from repro.gpu.accel import accel_build_stats, triangle_generation_stats
from repro.gpu.cost_model import RT_NODE_RESIDUAL_BYTES, RT_TRIANGLE_RESIDUAL_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.simt import divergence_factor
from repro.rtx.bvh import BvhBuildConfig
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Number of per-lookup work samples used to estimate warp divergence.
_DIVERGENCE_SAMPLE = 4096


class CgRXIndex(GpuIndex):
    """Coarse-granular raytraced index (the paper's contribution)."""

    name = "cgRX"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = False
    supports_bulk_load = True
    memory_class = "low"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        config: Optional[CgRXConfig] = None,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        self.config = config or CgRXConfig()
        self.name = self.config.describe()

        key_dtype = np.uint32 if self.config.key_bits == 32 else np.uint64
        keys = np.asarray(keys, dtype=key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self.mapping = KeyMapping.for_key_bits(
            self.config.key_bits, scaled=self.config.scaled_mapping
        )
        #: Build generation, bumped by the snapshot lifecycle on replacement.
        self.epoch = 0
        self._build(keys, row_ids)

    # ------------------------------------------------------------------ build

    def _build(self, keys: np.ndarray, row_ids: np.ndarray) -> None:
        """Bulk load: sort, bucket, materialise triangles, build the BVH."""
        self.bucketed = BucketedKeys(
            keys,
            row_ids,
            bucket_size=self.config.bucket_size,
            key_bytes=self.config.key_bytes,
        )
        self.pipeline = RaytracingPipeline(
            bvh_config=BvhBuildConfig(max_leaf_size=self.config.bvh_leaf_size)
        )
        representation_cls = (
            NaiveRepresentation
            if self.config.representation is Representation.NAIVE
            else OptimizedRepresentation
        )
        self.representation = representation_cls(self.bucketed, self.mapping, self.pipeline)
        self.search_model = BucketSearchModel(
            strategy=self.config.search_strategy,
            layout=self.config.bucket_layout,
            key_bytes=self.config.key_bytes,
        )
        # Prefix sums over rowIDs let batched lookups aggregate duplicate
        # groups without per-lookup slicing.
        self._rowid_prefix = np.concatenate(
            [[0], np.cumsum(self.bucketed.row_ids.astype(np.int64))]
        )

        num_triangles = self.representation.triangle_count()
        bvh_bytes = self.pipeline.bvh.memory_footprint_bytes()
        self.build_stats = [
            self.bucketed.sort_stats,
            triangle_generation_stats(self.bucketed.num_buckets, num_triangles),
            accel_build_stats(num_triangles, bvh_bytes),
        ]

    # ---------------------------------------------------------------- lookups

    def _locate_buckets(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, RayStats, List[int]]:
        """Run the raytracing stage for a batch of keys.

        Returns the bucketID per key (:data:`MISS` for out-of-range keys), the
        aggregated ray statistics and a sample of per-lookup work used for the
        divergence estimate.  The vector engine answers the batch with
        wavefront launches; the compiled engine swaps the wavefront traversal
        for the fused megakernel.  Counters and samples are identical across
        all three.
        """
        stats = RayStats()
        sample_every = max(1, keys.shape[0] // _DIVERGENCE_SAMPLE)
        engine = resolve_engine(self.config.engine)
        if engine != "scalar":
            self.pipeline.batch_engine = engine
            try:
                bucket_ids, ray_nodes = self.representation.locate_bucket_batch(keys, stats)
            finally:
                self.pipeline.batch_engine = "vector"
            work_sample = [int(nodes) for nodes in ray_nodes[::sample_every]]
            return bucket_ids, stats, work_sample
        bucket_ids = np.empty(keys.shape[0], dtype=np.int64)
        work_sample: List[int] = []
        previous_nodes = 0
        for position, key in enumerate(keys):
            bucket_ids[position] = self.representation.locate_bucket(int(key), stats)
            if position % sample_every == 0:
                work_sample.append(stats.nodes_visited - previous_nodes)
            previous_nodes = stats.nodes_visited
        return bucket_ids, stats, work_sample

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Batched point lookups: raytracing stage followed by a bucket-scan kernel."""
        keys = np.asarray(keys, dtype=self.bucketed.keys.dtype)
        num_lookups = keys.shape[0]
        bucket_ids, ray_stats, work_sample = self._locate_buckets(keys)

        sorted_keys = self.bucketed.keys
        left = np.searchsorted(sorted_keys, keys, side="left")
        right = np.searchsorted(sorted_keys, keys, side="right")
        starts = np.where(bucket_ids >= 0, bucket_ids * self.bucketed.bucket_size, 0)

        located = bucket_ids >= 0
        # A lookup is a hit when matches exist and the scan starting at the
        # located bucket reaches them going forward.
        hit = located & (left < right) & (starts <= left)
        row_agg = np.where(
            hit, self._rowid_prefix[right] - self._rowid_prefix[left], -1
        ).astype(np.int64)
        match_counts = np.where(hit, right - left, 0).astype(np.int64)

        # The scan touches everything from the bucket start to the first key
        # larger than the target (misses included); out-of-range misses touch
        # nothing.
        scan_end = np.where(left < right, right, left)
        entries_scanned = np.where(
            located, np.maximum(scan_end - starts + 1, 1), 0
        ).astype(np.int64)

        stats = self._lookup_stats(
            name="cgrx.point_lookup",
            keys=keys,
            ray_stats=ray_stats,
            entries_scanned=entries_scanned,
            work_sample=work_sample,
            range_mode=False,
        )
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Batched range lookups: locate the lower bound, then scan forward."""
        lows = np.asarray(lows, dtype=self.bucketed.keys.dtype)
        highs = np.asarray(highs, dtype=self.bucketed.keys.dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        bucket_ids, ray_stats, work_sample = self._locate_buckets(lows)
        sorted_keys = self.bucketed.keys
        first = np.searchsorted(sorted_keys, lows, side="left")
        stop = np.searchsorted(sorted_keys, highs, side="right")
        starts = np.where(bucket_ids >= 0, bucket_ids * self.bucketed.bucket_size, 0)

        row_ids: List[np.ndarray] = []
        entries_scanned = np.zeros(lows.shape[0], dtype=np.int64)
        for position in range(lows.shape[0]):
            if bucket_ids[position] < 0:
                row_ids.append(np.empty(0, dtype=self.bucketed.row_ids.dtype))
                continue
            begin = max(int(first[position]), int(starts[position]))
            end = int(stop[position])
            if end <= begin:
                row_ids.append(np.empty(0, dtype=self.bucketed.row_ids.dtype))
            else:
                row_ids.append(self.bucketed.row_ids[begin:end].copy())
            entries_scanned[position] = max(1, end - int(starts[position]) + 1)

        stats = self._lookup_stats(
            name="cgrx.range_lookup",
            keys=lows,
            ray_stats=ray_stats,
            entries_scanned=entries_scanned,
            work_sample=work_sample,
            range_mode=True,
        )
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    def _lookup_stats(
        self,
        name: str,
        keys: np.ndarray,
        ray_stats: RayStats,
        entries_scanned: np.ndarray,
        work_sample: List[int],
        range_mode: bool,
    ) -> KernelStats:
        """Assemble the kernel record of a lookup batch."""
        num_lookups = int(keys.shape[0])
        stats = KernelStats(name=name, threads=num_lookups, launches=2)

        # Raytracing stage: the traversal itself is charged to the RT cores;
        # only the residual (uncompressed / uncached) part of the BVH and
        # triangle fetches shows up as global-memory traffic.
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        ray_bytes = (
            ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
            + ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        )
        stats.bytes_read += ray_bytes

        # Bucket-search stage: a cooperative-group kernel per batch.
        search_bytes = 0
        search_ops = 0
        bucket_size = self.bucketed.bucket_size
        for scanned in entries_scanned:
            if scanned <= 0:
                continue
            if range_mode:
                cost = self.search_model.range_scan(int(scanned))
            else:
                cost = self.search_model.point_search(bucket_size, int(scanned))
            search_bytes += cost.bytes_read
            search_ops += cost.compute_ops
        stats.bytes_read += search_bytes
        stats.compute_ops += search_ops

        # Each lookup reads its key and writes an aggregated result.
        stats.bytes_read += num_lookups * self.config.key_bytes
        stats.bytes_written += num_lookups * 8

        stats.divergence = divergence_factor(work_sample)
        # Cache behaviour differs per structure: the (small) acceleration
        # structure serves the rays, the (large) key-rowID array serves the
        # bucket searches.  Weight the two hit rates by their traffic.
        unique = self._unique_fraction(keys)
        footprint = self.memory_footprint()
        ray_hit = self.cost_model.cache_hit_fraction(
            footprint.get("bvh") + footprint.get("vertex_buffer"), unique
        )
        data_hit = self.cost_model.cache_hit_fraction(footprint.get("key_rowid_array"), unique)
        data_bytes = max(1, stats.total_bytes - ray_bytes)
        stats.cache_hit_fraction = (ray_hit * ray_bytes + data_hit * data_bytes) / (
            ray_bytes + data_bytes
        )
        return stats

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Apply updates by rebuilding the whole index (the static cgRX strategy)."""
        keys = self.bucketed.keys
        row_ids = self.bucketed.row_ids

        deleted = 0
        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=keys.dtype)
            keep = np.ones(keys.shape[0], dtype=bool)
            positions = np.searchsorted(keys, delete_keys, side="left")
            for target, position in zip(delete_keys, positions):
                position = int(position)
                # Delete the first still-present duplicate of the target key.
                while (
                    position < keys.shape[0]
                    and keys[position] == target
                    and not keep[position]
                ):
                    position += 1
                if position < keys.shape[0] and keys[position] == target:
                    keep[position] = False
                    deleted += 1
            keys = keys[keep]
            row_ids = row_ids[keep]

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=keys.dtype)
            if insert_row_ids is None:
                insert_row_ids = np.arange(
                    row_ids.max() + 1 if row_ids.size else 0,
                    (row_ids.max() + 1 if row_ids.size else 0) + insert_keys.shape[0],
                    dtype=np.uint32,
                )
            insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
            keys = np.concatenate([keys, insert_keys])
            row_ids = np.concatenate([row_ids, insert_row_ids])
            inserted = int(insert_keys.shape[0])

        self._build(keys, row_ids)
        rebuild_stats = KernelStats(name="cgrx.rebuild")
        for part in self.build_stats:
            rebuild_stats.merge(part)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=rebuild_stats, rebuilt=True)

    # -------------------------------------------------------------- lifecycle

    def export_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """The authoritative sorted entry arrays (copies)."""
        return self.bucketed.keys.copy(), self.bucketed.row_ids.copy()

    def snapshot(self):
        """Freeze the current entries for the epoch rebuild lifecycle."""
        from repro.core.updatable import IndexSnapshot

        keys, row_ids = self.export_entries()
        return IndexSnapshot(keys=keys, row_ids=row_ids, config=self.config, epoch=self.epoch)

    @classmethod
    def build_from_snapshot(cls, snapshot, device: GpuDevice = RTX_4090) -> "CgRXIndex":
        """Bulk-load a replacement index; its epoch supersedes the snapshot's."""
        replacement = cls(
            snapshot.keys, snapshot.row_ids, config=snapshot.config, device=device
        )
        replacement.epoch = snapshot.epoch + 1
        return replacement

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        """Key-rowID array + vertex buffer + acceleration structure.

        Deliberately excludes the compiled tier's host-side arena: this
        simulated-device footprint feeds the cost model's cache fractions,
        which must stay identical across engines.  See
        :meth:`compiled_buffers_bytes`.
        """
        footprint = self.bucketed.memory_footprint()
        footprint.add("vertex_buffer", self.pipeline.vertex_buffer.memory_footprint_bytes())
        footprint.add("bvh", self.pipeline.bvh.memory_footprint_bytes())
        return footprint

    def compiled_buffers_bytes(self) -> int:
        """Host bytes held by the compiled tier's arenas (0 when unused)."""
        return self.pipeline.compiled_buffers_bytes()

    # ------------------------------------------------------------ conveniences

    def __len__(self) -> int:
        return len(self.bucketed)

    @property
    def num_buckets(self) -> int:
        """Number of buckets the key set is partitioned into."""
        return self.bucketed.num_buckets

    @property
    def num_triangles(self) -> int:
        """Number of triangles materialised in the 3D scene."""
        return self.representation.triangle_count()
