"""cgRX: the paper's contribution — coarse-granular raytraced indexing.

The public entry points are:

* :class:`~repro.core.config.CgRXConfig` / :class:`~repro.core.config.CgRXuConfig`
  — configuration objects,
* :class:`~repro.core.index.CgRXIndex` — the static, bulk-loaded index with
  the naive or optimized scene representation (Section III of the paper), and
* :class:`~repro.core.updatable.CgRXuIndex` — the node-based updatable
  variant (Section IV).
"""

from repro.core.config import BucketLayout, CgRXConfig, CgRXuConfig, Representation, SearchStrategy
from repro.core.key_mapping import KeyMapping
from repro.core.bucketing import BucketedKeys
from repro.core.index import CgRXIndex
from repro.core.updatable import CgRXuIndex

__all__ = [
    "BucketLayout",
    "CgRXConfig",
    "CgRXuConfig",
    "Representation",
    "SearchStrategy",
    "KeyMapping",
    "BucketedKeys",
    "CgRXIndex",
    "CgRXuIndex",
]
