"""Ray-casting helpers shared by the scene representations.

The lookup procedures of cgRX fire axis-aligned rays from positions described
in *grid* coordinates (the integer coordinates produced by the key mapping).
:class:`SceneCaster` translates those grid positions into scene coordinates
(applying the y/z scaling), fires the rays through the raytracing pipeline's
fast axis path and snaps hit positions back onto the grid.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.key_mapping import KeyMapping
from repro.rtx.geometry import HitRecord
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Rays start half a grid cell before the first candidate position so that a
#: triangle located exactly at that position is intersected.
RAY_START_OFFSET = 0.5


class SceneCaster:
    """Fires the x/y/z lookup rays of cgRX (``xCast``/``yCast``/``zCast`` in the paper)."""

    def __init__(self, pipeline: RaytracingPipeline, mapping: KeyMapping) -> None:
        self._pipeline = pipeline
        self._mapping = mapping

    @property
    def mapping(self) -> KeyMapping:
        return self._mapping

    def x_cast(
        self,
        from_x: float,
        grid_y: float,
        grid_z: float,
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +x starting just before grid column ``from_x`` in row (y, z)."""
        origin = (
            float(from_x) - RAY_START_OFFSET,
            float(grid_y) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(0, origin, tmax, stats)

    def x_cast_all(
        self,
        from_x: float,
        grid_y: float,
        grid_z: float,
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> List[HitRecord]:
        """All hits of a +x ray (used by RX-style range lookups)."""
        origin = (
            float(from_x) - RAY_START_OFFSET,
            float(grid_y) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_all(0, origin, tmax, stats)

    def y_cast(
        self,
        grid_x: float,
        from_y: float,
        grid_z: float,
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +y in column ``grid_x`` starting just before grid row ``from_y``."""
        origin = (
            float(grid_x),
            (float(from_y) - RAY_START_OFFSET) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(1, origin, float("inf"), stats)

    def z_cast(
        self,
        grid_x: float,
        grid_y: float,
        from_z: float,
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +z at column/row (x, y) starting just before grid plane ``from_z``."""
        origin = (
            float(grid_x),
            float(grid_y) * self._mapping.y_scale,
            (float(from_z) - RAY_START_OFFSET) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(2, origin, float("inf"), stats)

    def hit_grid_y(self, hit: HitRecord) -> int:
        """Grid row of a hit (snaps the scene y coordinate back to the grid)."""
        return self._mapping.scene_y_to_grid(hit.y)

    def hit_grid_z(self, hit: HitRecord) -> int:
        """Grid plane of a hit."""
        return self._mapping.scene_z_to_grid(hit.z)
