"""Ray-casting helpers shared by the scene representations.

The lookup procedures of cgRX fire axis-aligned rays from positions described
in *grid* coordinates (the integer coordinates produced by the key mapping).
:class:`SceneCaster` translates those grid positions into scene coordinates
(applying the y/z scaling), fires the rays through the raytracing pipeline's
fast axis path and snaps hit positions back onto the grid.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.key_mapping import KeyMapping
from repro.rtx.geometry import HitRecord
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Rays start half a grid cell before the first candidate position so that a
#: triangle located exactly at that position is intersected.
RAY_START_OFFSET = 0.5


class SceneCaster:
    """Fires the x/y/z lookup rays of cgRX (``xCast``/``yCast``/``zCast`` in the paper)."""

    def __init__(self, pipeline: RaytracingPipeline, mapping: KeyMapping) -> None:
        self._pipeline = pipeline
        self._mapping = mapping

    @property
    def mapping(self) -> KeyMapping:
        return self._mapping

    def x_cast(
        self,
        from_x: float,
        grid_y: float,
        grid_z: float,
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +x starting just before grid column ``from_x`` in row (y, z)."""
        origin = (
            float(from_x) - RAY_START_OFFSET,
            float(grid_y) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(0, origin, tmax, stats)

    def x_cast_all(
        self,
        from_x: float,
        grid_y: float,
        grid_z: float,
        tmax: float = float("inf"),
        stats: Optional[RayStats] = None,
    ) -> List[HitRecord]:
        """All hits of a +x ray (used by RX-style range lookups)."""
        origin = (
            float(from_x) - RAY_START_OFFSET,
            float(grid_y) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_all(0, origin, tmax, stats)

    def y_cast(
        self,
        grid_x: float,
        from_y: float,
        grid_z: float,
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +y in column ``grid_x`` starting just before grid row ``from_y``."""
        origin = (
            float(grid_x),
            (float(from_y) - RAY_START_OFFSET) * self._mapping.y_scale,
            float(grid_z) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(1, origin, float("inf"), stats)

    def z_cast(
        self,
        grid_x: float,
        grid_y: float,
        from_z: float,
        stats: Optional[RayStats] = None,
    ) -> HitRecord:
        """Ray along +z at column/row (x, y) starting just before grid plane ``from_z``."""
        origin = (
            float(grid_x),
            float(grid_y) * self._mapping.y_scale,
            (float(from_z) - RAY_START_OFFSET) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest(2, origin, float("inf"), stats)

    def hit_grid_y(self, hit: HitRecord) -> int:
        """Grid row of a hit (snaps the scene y coordinate back to the grid)."""
        return self._mapping.scene_y_to_grid(hit.y)

    def hit_grid_z(self, hit: HitRecord) -> int:
        """Grid plane of a hit."""
        return self._mapping.scene_z_to_grid(hit.z)

    # -------------------------------------------------------- wavefront batches
    #
    # The batch variants fire one wavefront launch for a whole array of grid
    # positions; origins are computed with the same float operations as the
    # scalar methods, so hits and ray counters are identical per ray.

    def _origins(self, x, y, z) -> "np.ndarray":
        xs, ys, zs = np.broadcast_arrays(
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.float64),
            np.asarray(z, dtype=np.float64),
        )
        return np.stack([xs, ys, zs], axis=1)

    def x_cast_batch(
        self, from_x, grid_y, grid_z, tmax=None, stats: Optional[RayStats] = None
    ):
        """Batched :meth:`x_cast`: one +x ray per grid position."""
        origins = self._origins(
            np.asarray(from_x, dtype=np.float64) - RAY_START_OFFSET,
            np.asarray(grid_y, dtype=np.float64) * self._mapping.y_scale,
            np.asarray(grid_z, dtype=np.float64) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest_batch(0, origins, tmax, stats)

    def x_cast_all_batch(
        self, from_x, grid_y, grid_z, tmax=None, stats: Optional[RayStats] = None
    ):
        """Batched :meth:`x_cast_all`: every hit of one +x ray per position."""
        origins = self._origins(
            np.asarray(from_x, dtype=np.float64) - RAY_START_OFFSET,
            np.asarray(grid_y, dtype=np.float64) * self._mapping.y_scale,
            np.asarray(grid_z, dtype=np.float64) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_all_batch(0, origins, tmax, stats)

    def y_cast_batch(self, grid_x, from_y, grid_z, stats: Optional[RayStats] = None):
        """Batched :meth:`y_cast`."""
        origins = self._origins(
            np.asarray(grid_x, dtype=np.float64),
            (np.asarray(from_y, dtype=np.float64) - RAY_START_OFFSET)
            * self._mapping.y_scale,
            np.asarray(grid_z, dtype=np.float64) * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest_batch(1, origins, None, stats)

    def z_cast_batch(self, grid_x, grid_y, from_z, stats: Optional[RayStats] = None):
        """Batched :meth:`z_cast`."""
        origins = self._origins(
            np.asarray(grid_x, dtype=np.float64),
            np.asarray(grid_y, dtype=np.float64) * self._mapping.y_scale,
            (np.asarray(from_z, dtype=np.float64) - RAY_START_OFFSET)
            * self._mapping.z_scale,
        )
        return self._pipeline.cast_axis_closest_batch(2, origins, None, stats)

    def hit_grid_y_batch(self, points: "np.ndarray") -> "np.ndarray":
        """Grid rows of batched hit points (same rounding as :meth:`hit_grid_y`)."""
        return np.round(
            points[:, 1].astype(np.float64) / self._mapping.y_scale
        ).astype(np.int64)

    def hit_grid_z_batch(self, points: "np.ndarray") -> "np.ndarray":
        """Grid planes of batched hit points."""
        return np.round(
            points[:, 2].astype(np.float64) / self._mapping.z_scale
        ).astype(np.int64)
