"""The naive scene representation (Section III, Algorithms 1 and 2).

One representative triangle per bucket at the position of the bucket's last
key, plus explicit *row markers* at x = -1 and *plane markers* at
x = -1, y = -1 that let the lookup procedure discover the next populated row
or plane with a single additional ray.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.representation import MISS, SceneRepresentation
from repro.rtx.traversal import RayStats

#: Grid x position of the explicit row and plane markers.
MARKER_X = -1.0
#: Grid y position of the explicit plane markers.
MARKER_Y = -1.0


class NaiveRepresentation(SceneRepresentation):
    """Representative triangles plus explicit row/plane marker triangles."""

    # ------------------------------------------------------------ construction

    def _build_scene(self) -> None:
        """Algorithm 1: create representatives and row/plane markers."""
        bucketed = self.bucketed
        mapping = self.mapping
        buffer = self.pipeline.vertex_buffer

        num_buckets = self.num_buckets
        marker_sections = int(self.multi_line) + int(self.multi_plane)
        buffer.reserve((1 + marker_sections) * num_buckets)

        reps = bucketed.representatives().astype(np.uint64)
        rep_x = mapping.x_of(reps).astype(np.int64)
        rep_y = mapping.y_of(reps).astype(np.int64)
        rep_z = mapping.z_of(reps).astype(np.int64)
        rep_yz = mapping.yz_of(reps).astype(np.uint64)

        # prev_rep[b] is the representative of bucket b-1; bucket 0 has none
        # and always materialises its representative.
        prev_rep = np.empty_like(reps)
        prev_rep[1:] = reps[:-1]
        prev_yz = np.empty_like(rep_yz)
        prev_yz[1:] = rep_yz[:-1]
        prev_z = np.empty_like(rep_z)
        prev_z[1:] = rep_z[:-1]

        is_first = np.zeros(num_buckets, dtype=bool)
        is_first[0] = True

        needs_rep = is_first | (reps != prev_rep)
        needs_row_marker = self.multi_line & (is_first | (rep_yz != prev_yz))
        needs_plane_marker = self.multi_plane & (is_first | (rep_z != prev_z))

        #: Slot offset of the row-marker section in the vertex buffer.
        self.row_marker_offset = num_buckets
        #: Slot offset of the plane-marker section.
        self.plane_marker_offset = num_buckets * (1 + int(self.multi_line))

        scene_y = rep_y.astype(np.float64) * mapping.y_scale
        scene_z = rep_z.astype(np.float64) * mapping.z_scale

        rep_slots = np.nonzero(needs_rep)[0]
        buffer.write_key_triangles(
            rep_slots, rep_x[rep_slots].astype(np.float64), scene_y[rep_slots], scene_z[rep_slots]
        )

        if self.multi_line:
            marker_slots = np.nonzero(needs_row_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.row_marker_offset,
                np.full(marker_slots.shape[0], MARKER_X),
                scene_y[marker_slots],
                scene_z[marker_slots],
            )

        if self.multi_plane:
            marker_slots = np.nonzero(needs_plane_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.plane_marker_offset,
                np.full(marker_slots.shape[0], MARKER_X),
                np.full(marker_slots.shape[0], MARKER_Y * mapping.y_scale),
                scene_z[marker_slots],
            )

    # ----------------------------------------------------------------- lookups

    def locate_bucket(self, key: int, stats: Optional[RayStats] = None) -> int:
        """Algorithm 2: point the key to its bucket with up to five rays."""
        key = int(key)
        if key > self.max_representative:
            return MISS
        if key < self.min_representative:
            return 0

        mapping = self.mapping
        caster = self.caster
        kx = int(mapping.x_of(key))
        ky = int(mapping.y_of(key))
        kz = int(mapping.z_of(key))

        # Ray 1: along +x in the key's own row.
        same_row = caster.x_cast(kx, ky, kz, stats=stats)
        if same_row:
            return int(same_row.primitive_index)

        # Rays 2+3: find the next populated row on the same plane via the
        # row markers at x = -1, then take its leftmost representative.
        if self.multi_line:
            next_row = caster.y_cast(MARKER_X, ky + 1, kz, stats=stats)
            if next_row:
                row_y = caster.hit_grid_y(next_row)
                hit = caster.x_cast(0, row_y, kz, stats=stats)
                if hit:
                    return int(hit.primitive_index)
                return MISS

        # Rays 3-5: find the next populated plane via the plane markers at
        # x = -1, y = -1, then its first populated row, then its leftmost
        # representative.
        if self.multi_plane:
            next_plane = caster.z_cast(MARKER_X, MARKER_Y, kz + 1, stats=stats)
            if next_plane:
                plane_z = caster.hit_grid_z(next_plane)
                next_row = caster.y_cast(MARKER_X, 0, plane_z, stats=stats)
                if next_row:
                    row_y = caster.hit_grid_y(next_row)
                    hit = caster.x_cast(0, row_y, plane_z, stats=stats)
                    if hit:
                        return int(hit.primitive_index)
                return MISS

        # Unreachable for keys within the indexed range; kept as a defensive
        # fallback so a traversal bug surfaces as a wrong result in tests
        # instead of an exception.
        return MISS

    # ---------------------------------------------------------- batched lookups

    def locate_bucket_batch(self, keys: np.ndarray, stats=None):
        """Wavefront version of Algorithm 2: stage-synchronous batched rays.

        Fires exactly the rays :meth:`locate_bucket` would fire per key, one
        wavefront launch per stage.  Returns ``(bucket_ids, nodes_visited)``;
        ``stats`` accumulates identical ray totals.
        """
        keys = np.asarray(keys)
        num_keys = int(keys.shape[0])
        out = np.full(num_keys, MISS, dtype=np.int64)
        nodes = np.zeros(num_keys, dtype=np.int64)
        if num_keys == 0:
            return out, nodes

        mapping = self.mapping
        caster = self.caster
        keys64 = keys.astype(np.uint64)
        below = keys64 < np.uint64(self.min_representative)
        in_range = keys64 <= np.uint64(self.max_representative)
        out[below] = 0

        kx = mapping.x_of(keys64).astype(np.int64)
        ky = mapping.y_of(keys64).astype(np.int64)
        kz = mapping.z_of(keys64).astype(np.int64)

        # Ray 1: along +x in the key's own row.
        todo = np.nonzero(in_range & ~below)[0]
        if todo.size == 0:
            return out, nodes
        same_row = caster.x_cast_batch(kx[todo], ky[todo], kz[todo], stats=stats)
        nodes[todo] += same_row.nodes_visited
        resolved = same_row.hit
        out[todo[resolved]] = same_row.primitive_index[resolved]
        pending = todo[~resolved]

        # Rays 2+3: next populated row via the x = -1 marker lane.
        if self.multi_line and pending.size:
            next_row = caster.y_cast_batch(
                np.full(pending.size, MARKER_X),
                ky[pending] + 1,
                kz[pending],
                stats=stats,
            )
            nodes[pending] += next_row.nodes_visited
            hit = np.nonzero(next_row.hit)[0]
            if hit.size:
                hit_keys = pending[hit]
                row_y = caster.hit_grid_y_batch(next_row.point)[hit]
                leftmost = caster.x_cast_batch(
                    np.zeros(hit.size, dtype=np.int64), row_y, kz[hit_keys], stats=stats
                )
                nodes[hit_keys] += leftmost.nodes_visited
                found = leftmost.hit
                out[hit_keys[found]] = leftmost.primitive_index[found]
            pending = pending[~next_row.hit]

        # Rays 3-5: next populated plane via the x = -1, y = -1 marker lane.
        if self.multi_plane and pending.size:
            next_plane = caster.z_cast_batch(
                np.full(pending.size, MARKER_X),
                np.full(pending.size, MARKER_Y),
                kz[pending] + 1,
                stats=stats,
            )
            nodes[pending] += next_plane.nodes_visited
            planed = np.nonzero(next_plane.hit)[0]
            if planed.size:
                plane_keys = pending[planed]
                plane_z = caster.hit_grid_z_batch(next_plane.point)[planed]
                next_row = caster.y_cast_batch(
                    np.full(planed.size, MARKER_X),
                    np.zeros(planed.size, dtype=np.int64),
                    plane_z,
                    stats=stats,
                )
                nodes[plane_keys] += next_row.nodes_visited
                hit = np.nonzero(next_row.hit)[0]
                if hit.size:
                    hit_keys = plane_keys[hit]
                    row_y = caster.hit_grid_y_batch(next_row.point)[hit]
                    leftmost = caster.x_cast_batch(
                        np.zeros(hit.size, dtype=np.int64),
                        row_y,
                        plane_z[hit],
                        stats=stats,
                    )
                    nodes[hit_keys] += leftmost.nodes_visited
                    found = leftmost.hit
                    out[hit_keys[found]] = leftmost.primitive_index[found]
        return out, nodes
