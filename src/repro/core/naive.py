"""The naive scene representation (Section III, Algorithms 1 and 2).

One representative triangle per bucket at the position of the bucket's last
key, plus explicit *row markers* at x = -1 and *plane markers* at
x = -1, y = -1 that let the lookup procedure discover the next populated row
or plane with a single additional ray.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.representation import MISS, SceneRepresentation
from repro.rtx.traversal import RayStats

#: Grid x position of the explicit row and plane markers.
MARKER_X = -1.0
#: Grid y position of the explicit plane markers.
MARKER_Y = -1.0


class NaiveRepresentation(SceneRepresentation):
    """Representative triangles plus explicit row/plane marker triangles."""

    # ------------------------------------------------------------ construction

    def _build_scene(self) -> None:
        """Algorithm 1: create representatives and row/plane markers."""
        bucketed = self.bucketed
        mapping = self.mapping
        buffer = self.pipeline.vertex_buffer

        num_buckets = self.num_buckets
        marker_sections = int(self.multi_line) + int(self.multi_plane)
        buffer.reserve((1 + marker_sections) * num_buckets)

        reps = bucketed.representatives().astype(np.uint64)
        rep_x = mapping.x_of(reps).astype(np.int64)
        rep_y = mapping.y_of(reps).astype(np.int64)
        rep_z = mapping.z_of(reps).astype(np.int64)
        rep_yz = mapping.yz_of(reps).astype(np.uint64)

        # prev_rep[b] is the representative of bucket b-1; bucket 0 has none
        # and always materialises its representative.
        prev_rep = np.empty_like(reps)
        prev_rep[1:] = reps[:-1]
        prev_yz = np.empty_like(rep_yz)
        prev_yz[1:] = rep_yz[:-1]
        prev_z = np.empty_like(rep_z)
        prev_z[1:] = rep_z[:-1]

        is_first = np.zeros(num_buckets, dtype=bool)
        is_first[0] = True

        needs_rep = is_first | (reps != prev_rep)
        needs_row_marker = self.multi_line & (is_first | (rep_yz != prev_yz))
        needs_plane_marker = self.multi_plane & (is_first | (rep_z != prev_z))

        #: Slot offset of the row-marker section in the vertex buffer.
        self.row_marker_offset = num_buckets
        #: Slot offset of the plane-marker section.
        self.plane_marker_offset = num_buckets * (1 + int(self.multi_line))

        scene_y = rep_y.astype(np.float64) * mapping.y_scale
        scene_z = rep_z.astype(np.float64) * mapping.z_scale

        rep_slots = np.nonzero(needs_rep)[0]
        buffer.write_key_triangles(
            rep_slots, rep_x[rep_slots].astype(np.float64), scene_y[rep_slots], scene_z[rep_slots]
        )

        if self.multi_line:
            marker_slots = np.nonzero(needs_row_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.row_marker_offset,
                np.full(marker_slots.shape[0], MARKER_X),
                scene_y[marker_slots],
                scene_z[marker_slots],
            )

        if self.multi_plane:
            marker_slots = np.nonzero(needs_plane_marker)[0]
            buffer.write_key_triangles(
                marker_slots + self.plane_marker_offset,
                np.full(marker_slots.shape[0], MARKER_X),
                np.full(marker_slots.shape[0], MARKER_Y * mapping.y_scale),
                scene_z[marker_slots],
            )

    # ----------------------------------------------------------------- lookups

    def locate_bucket(self, key: int, stats: Optional[RayStats] = None) -> int:
        """Algorithm 2: point the key to its bucket with up to five rays."""
        key = int(key)
        if key > self.max_representative:
            return MISS
        if key < self.min_representative:
            return 0

        mapping = self.mapping
        caster = self.caster
        kx = int(mapping.x_of(key))
        ky = int(mapping.y_of(key))
        kz = int(mapping.z_of(key))

        # Ray 1: along +x in the key's own row.
        same_row = caster.x_cast(kx, ky, kz, stats=stats)
        if same_row:
            return int(same_row.primitive_index)

        # Rays 2+3: find the next populated row on the same plane via the
        # row markers at x = -1, then take its leftmost representative.
        if self.multi_line:
            next_row = caster.y_cast(MARKER_X, ky + 1, kz, stats=stats)
            if next_row:
                row_y = caster.hit_grid_y(next_row)
                hit = caster.x_cast(0, row_y, kz, stats=stats)
                if hit:
                    return int(hit.primitive_index)
                return MISS

        # Rays 3-5: find the next populated plane via the plane markers at
        # x = -1, y = -1, then its first populated row, then its leftmost
        # representative.
        if self.multi_plane:
            next_plane = caster.z_cast(MARKER_X, MARKER_Y, kz + 1, stats=stats)
            if next_plane:
                plane_z = caster.hit_grid_z(next_plane)
                next_row = caster.y_cast(MARKER_X, 0, plane_z, stats=stats)
                if next_row:
                    row_y = caster.hit_grid_y(next_row)
                    hit = caster.x_cast(0, row_y, plane_z, stats=stats)
                    if hit:
                        return int(hit.primitive_index)
                return MISS

        # Unreachable for keys within the indexed range; kept as a defensive
        # fallback so a traversal bug surfaces as a wrong result in tests
        # instead of an exception.
        return MISS
