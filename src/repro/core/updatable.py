"""cgRXu: the node-based updatable variant of cgRX (Section IV of the paper).

Each bucket is a linked list of fixed-size nodes.  The raytraced
representative scene is built once over the bulk-loaded buckets and never
touched again: inserts and deletes only modify the node chains, so the BVH is
never refit and lookup performance does not deteriorate the way RX's does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    cancel_opposing_updates,
)
from repro.core.bucketing import BucketedKeys
from repro.core.config import CgRXuConfig, Representation
from repro.core.key_mapping import KeyMapping
from repro.core.naive import NaiveRepresentation
from repro.core.nodes import NO_NEXT, NodeStorage
from repro.core.optimized import OptimizedRepresentation
from repro.core.representation import MISS
from repro.gpu.accel import accel_build_stats, triangle_generation_stats
from repro.gpu.cost_model import RT_NODE_RESIDUAL_BYTES, RT_TRIANGLE_RESIDUAL_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.simt import divergence_factor
from repro.gpu.sort import device_radix_sort
from repro.rtx.bvh import BvhBuildConfig
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Number of per-lookup / per-bucket work samples used for divergence estimates.
_DIVERGENCE_SAMPLE = 4096


class CgRXuIndex(GpuIndex):
    """Updatable coarse-granular raytraced index with node-based buckets."""

    name = "cgRXu"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = True
    supports_bulk_load = True
    memory_class = "low"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        config: Optional[CgRXuConfig] = None,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        self.config = config or CgRXuConfig()
        self.name = self.config.describe()

        self._key_dtype = np.uint32 if self.config.key_bits == 32 else np.uint64
        keys = np.asarray(keys, dtype=self._key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self.mapping = KeyMapping.for_key_bits(
            self.config.key_bits, scaled=self.config.scaled_mapping
        )
        self._bulk_load(keys, row_ids)

    # -------------------------------------------------------------- bulk load

    def _bulk_load(self, keys: np.ndarray, row_ids: np.ndarray) -> None:
        """Initial construction: buckets of N/2 entries, one node per bucket."""
        bucket_size = self.config.initial_bucket_size
        self.bucketed = BucketedKeys(
            keys, row_ids, bucket_size=bucket_size, key_bytes=self.config.key_bytes
        )
        self.num_buckets = self.bucketed.num_buckets
        #: Index of the overflow bucket (keys larger than any bulk-loaded key).
        self.overflow_bucket = self.num_buckets

        self.pipeline = RaytracingPipeline(
            bvh_config=BvhBuildConfig(max_leaf_size=self.config.bvh_leaf_size)
        )
        representation_cls = (
            NaiveRepresentation
            if self.config.representation is Representation.NAIVE
            else OptimizedRepresentation
        )
        self.representation = representation_cls(self.bucketed, self.mapping, self.pipeline)

        self.nodes = NodeStorage(
            num_representative_nodes=self.num_buckets + 1,
            node_capacity=self.config.node_capacity,
            node_bytes=self.config.node_bytes,
            key_dtype=self._key_dtype,
        )
        for bucket_id in range(self.num_buckets):
            start, end = self.bucketed.bucket_bounds(bucket_id)
            bucket_keys = self.bucketed.keys[start:end]
            bucket_row_ids = self.bucketed.row_ids[start:end]
            self.nodes.fill_node(bucket_id, bucket_keys, bucket_row_ids, int(bucket_keys[-1]))
        # The overflow bucket catches keys beyond the bulk-loaded key range.
        self.nodes.fill_node(
            self.overflow_bucket,
            np.empty(0, dtype=self._key_dtype),
            np.empty(0, dtype=np.uint32),
            int(np.iinfo(np.uint64).max),
        )

        #: Inclusive upper bound of every bucket, used to route update batches.
        self._bucket_uppers = np.concatenate(
            [
                self.bucketed.representatives().astype(np.uint64),
                np.asarray([np.iinfo(np.uint64).max], dtype=np.uint64),
            ]
        )

        num_triangles = self.representation.triangle_count()
        bvh_bytes = self.pipeline.bvh.memory_footprint_bytes()
        self.build_stats = [
            self.bucketed.sort_stats,
            triangle_generation_stats(self.num_buckets, num_triangles),
            accel_build_stats(num_triangles, bvh_bytes),
            KernelStats(
                name="cgrxu.node_fill",
                threads=self.num_buckets,
                bytes_read=len(self.bucketed) * (self.config.key_bytes + 4),
                bytes_written=(self.num_buckets + 1) * self.config.node_bytes,
                compute_ops=len(self.bucketed),
            ),
        ]

    # ---------------------------------------------------------------- lookups

    def _route_key(self, key: int, stats: Optional[RayStats]) -> int:
        """BucketID responsible for ``key`` (the overflow bucket for out-of-range keys)."""
        bucket = self.representation.locate_bucket(int(key), stats)
        if bucket == MISS:
            return self.overflow_bucket
        return bucket

    def _collect(self, bucket: int, key: int) -> Tuple[List[int], int, int]:
        """Collect all rowIDs matching ``key`` starting at ``bucket``'s chain.

        Mirrors the array-scan semantics of static cgRX: the search continues
        across nodes (and, for duplicate groups hugging a bucket boundary,
        into the next bucket) until the first key larger than the target is
        seen.  Returns ``(row_ids, nodes_visited, entries_touched)``.
        """
        key_value = int(key)
        row_ids: List[int] = []
        nodes_visited = 0
        entries_touched = 0

        current_bucket = bucket
        while current_bucket <= self.overflow_bucket:
            saw_larger = False
            for node in self.nodes.chain(current_bucket):
                nodes_visited += 1
                size = self.nodes.node_size(node)
                if self.nodes.node_max_key(node) < key_value and self.nodes.node_next(node) != NO_NEXT:
                    continue
                node_keys = self.nodes.node_keys(node)
                target = np.asarray(key_value, dtype=self._key_dtype)
                left = int(np.searchsorted(node_keys, target, side="left"))
                right = int(np.searchsorted(node_keys, target, side="right"))
                entries_touched += max(1, right - left)
                if left < right:
                    row_ids.extend(int(r) for r in self.nodes.node_row_ids(node)[left:right])
                if right < size:
                    saw_larger = True
                    break
            if saw_larger:
                break
            # The chain ended without any key above the target — it was empty,
            # ended exactly at the target, or deletes drained every entry >=
            # the target from this bucket.  In all three cases the target (or
            # the rest of its duplicate group) may live in the next bucket.
            if current_bucket < self.overflow_bucket:
                current_bucket += 1
                continue
            break

        return row_ids, nodes_visited, entries_touched

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Batched point lookups: raytracing stage plus node-chain traversal."""
        keys = np.asarray(keys, dtype=self._key_dtype)
        num_lookups = keys.shape[0]

        ray_stats = RayStats()
        row_agg = np.full(num_lookups, -1, dtype=np.int64)
        match_counts = np.zeros(num_lookups, dtype=np.int64)
        total_nodes = 0
        total_entries = 0
        work_sample: List[int] = []
        sample_every = max(1, num_lookups // _DIVERGENCE_SAMPLE)
        previous_nodes = 0

        for position, key in enumerate(keys):
            bucket = self._route_key(int(key), ray_stats)
            matches, nodes_visited, entries = self._collect(bucket, int(key))
            total_nodes += nodes_visited
            total_entries += entries
            if matches:
                row_agg[position] = sum(matches)
                match_counts[position] = len(matches)
            if position % sample_every == 0:
                work_sample.append(ray_stats.nodes_visited - previous_nodes + nodes_visited)
            previous_nodes = ray_stats.nodes_visited

        stats = KernelStats(name="cgrxu.point_lookup", threads=num_lookups, launches=2)
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        stats.bytes_read += ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
        stats.bytes_read += ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        stats.bytes_read += total_nodes * self.config.node_bytes
        stats.bytes_read += num_lookups * self.config.key_bytes
        stats.bytes_written += num_lookups * 8
        stats.compute_ops += total_entries + total_nodes * 4
        stats.divergence = divergence_factor(work_sample)
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(keys)
        )
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Batched range lookups: locate the lower bound, then walk chains forward."""
        lows = np.asarray(lows, dtype=self._key_dtype)
        highs = np.asarray(highs, dtype=self._key_dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        ray_stats = RayStats()
        results: List[np.ndarray] = []
        total_nodes = 0
        total_entries = 0

        for low, high in zip(lows, highs):
            low_value, high_value = int(low), int(high)
            bucket = self._route_key(low_value, ray_stats)
            collected: List[np.ndarray] = []
            done = False
            for current_bucket in range(bucket, self.overflow_bucket + 1):
                for node in self.nodes.chain(current_bucket):
                    total_nodes += 1
                    node_keys = self.nodes.node_keys(node)
                    size = node_keys.shape[0]
                    if size == 0:
                        continue
                    left = int(
                        np.searchsorted(node_keys, np.asarray(low_value, dtype=self._key_dtype), side="left")
                    )
                    right = int(
                        np.searchsorted(node_keys, np.asarray(high_value, dtype=self._key_dtype), side="right")
                    )
                    total_entries += max(1, right - left)
                    if left < right:
                        collected.append(self.nodes.node_row_ids(node)[left:right].copy())
                    if right < size:
                        done = True
                        break
                if done:
                    break
            if collected:
                results.append(np.concatenate(collected))
            else:
                results.append(np.empty(0, dtype=np.uint32))

        stats = KernelStats(name="cgrxu.range_lookup", threads=lows.shape[0], launches=2)
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        stats.bytes_read += ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
        stats.bytes_read += ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        stats.bytes_read += total_nodes * self.config.node_bytes
        stats.bytes_written += sum(r.shape[0] for r in results) * 4
        stats.compute_ops += total_entries
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(lows)
        )
        return RangeLookupResult(row_ids=results, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Apply a batch of updates with one simulated thread per bucket.

        Deletions are processed before insertions (freeing space may avoid
        splits), and keys appearing in both halves of the batch cancel out, as
        described in Section IV.
        """
        stats = KernelStats(name="cgrxu.update", launches=0)

        insert_keys = (
            np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)

        insert_keys, insert_row_ids, insert_sort = device_radix_sort(insert_keys, insert_row_ids)
        delete_keys, _, delete_sort = device_radix_sort(delete_keys)
        stats.merge(insert_sort)
        stats.merge(delete_sort)

        insert_keys, insert_row_ids, delete_keys = cancel_opposing_updates(
            insert_keys, insert_row_ids, delete_keys
        )

        uppers = self._bucket_uppers
        lowers = np.concatenate([[np.uint64(0)], uppers[:-1] + np.uint64(1)])

        inserted = 0
        deleted = 0
        per_bucket_work: List[int] = []
        apply_stats = KernelStats(
            name="cgrxu.apply", threads=self.overflow_bucket + 1, launches=1
        )

        for bucket in range(self.overflow_bucket + 1):
            low = int(lowers[bucket])
            high = int(uppers[bucket])
            delete_lo, delete_hi = self._batch_range(delete_keys, low, high)
            bucket_deletes = delete_keys[delete_lo:delete_hi]
            bucket_inserts_lo, bucket_inserts_hi = self._batch_range(insert_keys, low, high)
            work = 0
            # Two binary searches on the sorted batch identify this thread's slice.
            apply_stats.compute_ops += 2 * max(1, int(np.log2(max(insert_keys.shape[0], 2))))

            for key in bucket_deletes:
                removed, visited = self._delete_one(bucket, int(key))
                deleted += int(removed)
                work += visited
                apply_stats.bytes_read += visited * self.config.node_bytes
                apply_stats.bytes_written += self.config.node_bytes // 2

            for offset in range(bucket_inserts_lo, bucket_inserts_hi):
                visited = self._insert_one(
                    bucket, int(insert_keys[offset]), int(insert_row_ids[offset])
                )
                inserted += 1
                work += visited
                apply_stats.bytes_read += visited * self.config.node_bytes
                apply_stats.bytes_written += self.config.node_bytes // 2

            if work:
                per_bucket_work.append(work)

        apply_stats.divergence = divergence_factor(per_bucket_work)
        stats.merge(apply_stats)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=False)

    def _batch_range(self, sorted_keys: np.ndarray, low: int, high: int) -> Tuple[int, int]:
        """Index range of a sorted batch falling into a bucket's ``[low, high]`` range.

        Bounds are clamped to the key dtype so the overflow bucket (whose
        upper bound is the uint64 sentinel) works for 32-bit keys too.
        """
        if sorted_keys.size == 0:
            return 0, 0
        dtype_max = int(np.iinfo(self._key_dtype).max)
        if low > dtype_max:
            return 0, 0
        low_key = np.asarray(low, dtype=self._key_dtype)
        high_key = np.asarray(min(high, dtype_max), dtype=self._key_dtype)
        lo = int(np.searchsorted(sorted_keys, low_key, side="left"))
        hi = int(np.searchsorted(sorted_keys, high_key, side="right"))
        return lo, hi

    def _delete_one(self, bucket: int, key: int) -> Tuple[bool, int]:
        """Delete one occurrence of ``key`` starting at ``bucket``'s chain.

        Mirrors :meth:`_collect`: a duplicate group hugging a bucket boundary
        continues in the next bucket, so when the routed bucket's chain ends
        without a key larger than the target, the search moves on rather
        than reporting a miss.
        """
        visited = 0
        current_bucket = bucket
        while current_bucket <= self.overflow_bucket:
            saw_larger = False
            for node in self.nodes.chain(current_bucket):
                visited += 1
                size = self.nodes.node_size(node)
                if self.nodes.node_max_key(node) < key and self.nodes.node_next(node) != NO_NEXT:
                    continue
                if self.nodes.delete_from_node(node, key):
                    return True, visited
                node_keys = self.nodes.node_keys(node)
                target = np.asarray(key, dtype=self._key_dtype)
                if size and int(np.searchsorted(node_keys, target, side="right")) < size:
                    saw_larger = True
                    break
            if saw_larger:
                break
            if current_bucket < self.overflow_bucket:
                current_bucket += 1
                continue
            break
        return False, visited

    def _insert_one(self, bucket: int, key: int, row_id: int) -> int:
        """Insert ``key`` into the bucket's chain, splitting a full node if needed."""
        visited = 0
        target_node = bucket
        for node in self.nodes.chain(bucket):
            visited += 1
            target_node = node
            if self.nodes.node_max_key(node) >= key:
                break
        if not self.nodes.insert_into_node(target_node, key, row_id):
            new_node = self.nodes.split_node(target_node)
            visited += 1
            if key > self.nodes.node_max_key(target_node):
                target_node = new_node
            inserted = self.nodes.insert_into_node(target_node, key, row_id)
            assert inserted, "insert after split must succeed"
        return visited

    def export_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """All (key, rowID) entries in bucket/chain order (sorted by key)."""
        keys: List[np.ndarray] = []
        row_ids: List[np.ndarray] = []
        for bucket in range(self.overflow_bucket + 1):
            chain_keys, chain_rows = self.nodes.chain_entries(bucket)
            if chain_keys.shape[0]:
                keys.append(chain_keys)
                row_ids.append(chain_rows)
        if not keys:
            return (
                np.empty(0, dtype=self._key_dtype),
                np.empty(0, dtype=np.uint32),
            )
        return np.concatenate(keys), np.concatenate(row_ids)

    # ------------------------------------------------------------ maintenance

    def chain_statistics(self) -> dict:
        """Node-chain health of the bucket lists.

        Insert waves split nodes and grow the per-bucket chains; every extra
        node is an extra dependent load on the lookup path.  The serving
        layer's maintenance worker watches these numbers to decide when a
        shard is worth rebuilding.
        """
        chain_lengths = [
            sum(1 for _ in self.nodes.chain(bucket))
            for bucket in range(self.overflow_bucket + 1)
        ]
        lengths = np.asarray(chain_lengths, dtype=np.int64)
        return {
            "num_chains": int(lengths.shape[0]),
            "max_chain_nodes": int(lengths.max()),
            "mean_chain_nodes": float(lengths.mean()),
            "chained_buckets": int((lengths > 1).sum()),
        }

    def degradation_score(self) -> float:
        """Mean number of *extra* chain nodes per bucket (0.0 = fresh build).

        O(1): every chain starts as its one representative node and only
        node splits append linked-region nodes, so the extra nodes per
        bucket are exactly the allocated linked nodes over the chain count.
        """
        return self.nodes.linked_nodes_used / self.nodes.num_representative_nodes

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        """Node regions + vertex buffer + acceleration structure."""
        footprint = self.nodes.memory_footprint()
        footprint.add("vertex_buffer", self.pipeline.vertex_buffer.memory_footprint_bytes())
        footprint.add("bvh", self.pipeline.bvh.memory_footprint_bytes())
        return footprint

    # ------------------------------------------------------------ conveniences

    def __len__(self) -> int:
        """Current number of indexed entries (bulk load plus net updates)."""
        total = 0
        for bucket in range(self.overflow_bucket + 1):
            for node in self.nodes.chain(bucket):
                total += self.nodes.node_size(node)
        return total

    @property
    def num_triangles(self) -> int:
        """Number of triangles materialised in the 3D scene."""
        return self.representation.triangle_count()
