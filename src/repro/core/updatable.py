"""cgRXu: the node-based updatable variant of cgRX (Section IV of the paper).

Each bucket is a linked list of fixed-size nodes.  The raytraced
representative scene is built once over the bulk-loaded buckets and never
touched again: inserts and deletes only modify the node chains, so the BVH is
never refit and lookup performance does not deteriorate the way RX's does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    cancel_opposing_updates,
)
from repro.core.bucketing import BucketedKeys
from repro.core.config import CgRXuConfig, Representation, resolve_engine
from repro.core.key_mapping import KeyMapping
from repro.core.naive import NaiveRepresentation
from repro.core.nodes import NO_NEXT, NodeStorage
from repro.core.optimized import OptimizedRepresentation
from repro.core.representation import MISS
from repro.gpu.accel import accel_build_stats, triangle_generation_stats
from repro.gpu.cost_model import RT_NODE_RESIDUAL_BYTES, RT_TRIANGLE_RESIDUAL_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.simt import divergence_factor
from repro.gpu.sort import device_radix_sort
from repro.obs import profile as _profile
from repro.rtx.bvh import BvhBuildConfig
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.refit import overlap_ratio, total_overlap_area
from repro.rtx.traversal import RayStats

#: Number of per-lookup / per-bucket work samples used for divergence estimates.
_DIVERGENCE_SAMPLE = 4096


@dataclass(frozen=True)
class IndexSnapshot:
    """A consistent, epoch-tagged copy of an index's entries.

    Taken off the serving path by :meth:`CgRXuIndex.snapshot` so a
    replacement index can be built in the background
    (:meth:`CgRXuIndex.build_from_snapshot`) while the live one keeps
    serving; the double-buffered shard rebuild in ``repro.serve`` swaps the
    replacement in atomically once it is ready.
    """

    keys: np.ndarray
    row_ids: np.ndarray
    config: CgRXuConfig
    #: Epoch of the source index at snapshot time; the index built from this
    #: snapshot starts at ``epoch + 1``.
    epoch: int

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])


class CgRXuIndex(GpuIndex):
    """Updatable coarse-granular raytraced index with node-based buckets."""

    name = "cgRXu"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = True
    supports_bulk_load = True
    memory_class = "low"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        config: Optional[CgRXuConfig] = None,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        self.config = config or CgRXuConfig()
        self.name = self.config.describe()

        self._key_dtype = np.uint32 if self.config.key_bits == 32 else np.uint64
        keys = np.asarray(keys, dtype=self._key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self.mapping = KeyMapping.for_key_bits(
            self.config.key_bits, scaled=self.config.scaled_mapping
        )
        self._bulk_load(keys, row_ids)

    # -------------------------------------------------------------- bulk load

    def _bulk_load(self, keys: np.ndarray, row_ids: np.ndarray) -> None:
        """Initial construction: buckets of N/2 entries, one node per bucket."""
        bucket_size = self.config.initial_bucket_size
        self.bucketed = BucketedKeys(
            keys, row_ids, bucket_size=bucket_size, key_bytes=self.config.key_bytes
        )
        self.num_buckets = self.bucketed.num_buckets
        #: Index of the overflow bucket (keys larger than any bulk-loaded key).
        self.overflow_bucket = self.num_buckets

        self.pipeline = RaytracingPipeline(
            bvh_config=BvhBuildConfig(max_leaf_size=self.config.bvh_leaf_size)
        )
        representation_cls = (
            NaiveRepresentation
            if self.config.representation is Representation.NAIVE
            else OptimizedRepresentation
        )
        self.representation = representation_cls(self.bucketed, self.mapping, self.pipeline)

        self.nodes = NodeStorage(
            num_representative_nodes=self.num_buckets + 1,
            node_capacity=self.config.node_capacity,
            node_bytes=self.config.node_bytes,
            key_dtype=self._key_dtype,
        )
        for bucket_id in range(self.num_buckets):
            start, end = self.bucketed.bucket_bounds(bucket_id)
            bucket_keys = self.bucketed.keys[start:end]
            bucket_row_ids = self.bucketed.row_ids[start:end]
            self.nodes.fill_node(bucket_id, bucket_keys, bucket_row_ids, int(bucket_keys[-1]))
        # The overflow bucket catches keys beyond the bulk-loaded key range.
        self.nodes.fill_node(
            self.overflow_bucket,
            np.empty(0, dtype=self._key_dtype),
            np.empty(0, dtype=np.uint32),
            int(np.iinfo(np.uint64).max),
        )

        #: Inclusive upper bound of every bucket, used to route update batches.
        self._bucket_uppers = np.concatenate(
            [
                self.bucketed.representatives().astype(np.uint64),
                np.asarray([np.iinfo(np.uint64).max], dtype=np.uint64),
            ]
        )

        #: Cached entry count, kept incrementally up to date by the update
        #: path so ``__len__`` never re-walks the chains.
        self._num_entries = len(self.bucketed)
        #: Cached flattened chain tables, invalidated by updates.
        self._chain_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Arena-packed copy of the chain tables for the compiled walk, keyed
        #: by the identity of ``_chain_cache`` so invalidations and patches
        #: trigger an in-place repack.
        self._compiled_chain = None
        #: Shard-local arena backing the compiled chain tables (lazy).
        self._compiled_arena = None

        #: Storage-lifecycle version: bumped by every compaction pass and by
        #: building from a snapshot, so the serving layer can tell rebuilt
        #: state apart from the state a snapshot was taken of.
        self.epoch = 0
        #: Lifecycle event counters (compaction passes, refits, escalations).
        self.lifecycle: Dict[str, int] = {
            "compaction_passes": 0,
            "buckets_compacted": 0,
            "nodes_reclaimed": 0,
            "reanchored_representatives": 0,
            "bvh_refits": 0,
            "bvh_rebuilds": 0,
        }
        #: Overlap area of the freshly built BVH — the refit quality baseline.
        self._built_overlap_area = total_overlap_area(self.pipeline.bvh)
        #: Memoised overlap ratio keyed by (build, refit) generation, so the
        #: maintenance scan's per-cycle quality probe is O(1) between refits.
        self._overlap_ratio_cache: Optional[Tuple[tuple, float]] = None

        num_triangles = self.representation.triangle_count()
        bvh_bytes = self.pipeline.bvh.memory_footprint_bytes()
        self.build_stats = [
            self.bucketed.sort_stats,
            triangle_generation_stats(self.num_buckets, num_triangles),
            accel_build_stats(num_triangles, bvh_bytes),
            KernelStats(
                name="cgrxu.node_fill",
                threads=self.num_buckets,
                bytes_read=len(self.bucketed) * (self.config.key_bytes + 4),
                bytes_written=(self.num_buckets + 1) * self.config.node_bytes,
                compute_ops=len(self.bucketed),
            ),
        ]

    # ---------------------------------------------------------------- lookups

    def _route_key(self, key: int, stats: Optional[RayStats]) -> int:
        """BucketID responsible for ``key`` (the overflow bucket for out-of-range keys)."""
        bucket = self.representation.locate_bucket(int(key), stats)
        if bucket == MISS:
            return self.overflow_bucket
        return bucket

    def _collect(self, bucket: int, key: int) -> Tuple[int, int, int, int]:
        """Collect the rowID aggregate for ``key`` starting at ``bucket``'s chain.

        Mirrors the array-scan semantics of static cgRX: the search continues
        across nodes (and, for duplicate groups hugging a bucket boundary,
        into the next bucket) until the first key larger than the target is
        seen.  Returns ``(row_sum, matches, nodes_visited, entries_touched)``.
        """
        key_value = int(key)
        row_sum = 0
        matches = 0
        nodes_visited = 0
        entries_touched = 0

        current_bucket = bucket
        while current_bucket <= self.overflow_bucket:
            saw_larger = False
            for node in self.nodes.chain(current_bucket):
                nodes_visited += 1
                size = self.nodes.node_size(node)
                if self.nodes.node_max_key(node) < key_value and self.nodes.node_next(node) != NO_NEXT:
                    continue
                node_keys = self.nodes.node_keys(node)
                target = np.asarray(key_value, dtype=self._key_dtype)
                left = int(np.searchsorted(node_keys, target, side="left"))
                right = int(np.searchsorted(node_keys, target, side="right"))
                entries_touched += max(1, right - left)
                if left < right:
                    row_sum += int(
                        self.nodes.node_row_ids(node)[left:right].sum(dtype=np.int64)
                    )
                    matches += right - left
                if right < size:
                    saw_larger = True
                    break
            if saw_larger:
                break
            # The chain ended without any key above the target — it was empty,
            # ended exactly at the target, or deletes drained every entry >=
            # the target from this bucket.  In all three cases the target (or
            # the rest of its duplicate group) may live in the next bucket.
            if current_bucket < self.overflow_bucket:
                current_bucket += 1
                continue
            break

        return row_sum, matches, nodes_visited, entries_touched

    def _point_lookup_stats(
        self,
        keys: np.ndarray,
        ray_stats: RayStats,
        total_nodes: int,
        total_entries: int,
        work_sample: List[int],
    ) -> KernelStats:
        """Kernel record of a point-lookup batch (shared by both engines)."""
        num_lookups = int(keys.shape[0])
        stats = KernelStats(name="cgrxu.point_lookup", threads=num_lookups, launches=2)
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        stats.bytes_read += ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
        stats.bytes_read += ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        stats.bytes_read += total_nodes * self.config.node_bytes
        stats.bytes_read += num_lookups * self.config.key_bytes
        stats.bytes_written += num_lookups * 8
        stats.compute_ops += total_entries + total_nodes * 4
        stats.divergence = divergence_factor(work_sample)
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(keys)
        )
        return stats

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Batched point lookups: raytracing stage plus node-chain traversal.

        The ``vector`` engine answers the whole batch with wavefront routing
        and a lockstep chain walk over the flattened chain tables; the
        ``compiled`` engine swaps both stages for fused compiled kernels.
        Results and counters are byte-identical to the scalar reference path
        under every engine.
        """
        keys = np.asarray(keys, dtype=self._key_dtype)
        engine = resolve_engine(self.config.engine)
        if engine == "scalar":
            return self._point_lookup_batch_scalar(keys)
        return self._point_lookup_batch_vector(keys, engine)

    def _point_lookup_batch_scalar(self, keys: np.ndarray) -> LookupResult:
        """Reference path: one key and one ray at a time."""
        num_lookups = keys.shape[0]

        ray_stats = RayStats()
        row_agg = np.full(num_lookups, -1, dtype=np.int64)
        match_counts = np.zeros(num_lookups, dtype=np.int64)
        total_nodes = 0
        total_entries = 0
        work_sample: List[int] = []
        sample_every = max(1, num_lookups // _DIVERGENCE_SAMPLE)
        previous_nodes = 0

        for position, key in enumerate(keys):
            bucket = self._route_key(int(key), ray_stats)
            row_sum, matches, nodes_visited, entries = self._collect(bucket, int(key))
            total_nodes += nodes_visited
            total_entries += entries
            if matches:
                row_agg[position] = row_sum
                match_counts[position] = matches
            if position % sample_every == 0:
                work_sample.append(ray_stats.nodes_visited - previous_nodes + nodes_visited)
            previous_nodes = ray_stats.nodes_visited

        stats = self._point_lookup_stats(
            keys, ray_stats, total_nodes, total_entries, work_sample
        )
        prof = _profile.profiler()
        if prof is not None:
            prof.observe_chain_walk("scalar", total_nodes, num_lookups)
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def _point_lookup_batch_vector(self, keys: np.ndarray, engine: str = "vector") -> LookupResult:
        """Batch path: wavefront or compiled routing plus a batched chain walk."""
        num_lookups = int(keys.shape[0])
        ray_stats = RayStats()
        self.pipeline.batch_engine = engine
        try:
            bucket_ids, ray_nodes = self.representation.locate_bucket_batch(keys, ray_stats)
        finally:
            self.pipeline.batch_engine = "vector"
        buckets = np.where(bucket_ids == MISS, self.overflow_bucket, bucket_ids)

        walk = None
        if engine == "compiled":
            walk = self._collect_batch_compiled(buckets, keys)
        if walk is None:
            engine = "vector" if engine == "compiled" else engine
            walk = self._collect_batch(buckets, keys)
        row_sum, match_counts, chain_nodes, entries = walk
        row_agg = np.where(match_counts > 0, row_sum, -1).astype(np.int64)

        sample_every = max(1, num_lookups // _DIVERGENCE_SAMPLE)
        per_key_work = ray_nodes + chain_nodes
        work_sample = [int(work) for work in per_key_work[::sample_every]]
        stats = self._point_lookup_stats(
            keys,
            ray_stats,
            int(chain_nodes.sum()),
            int(entries.sum()),
            work_sample,
        )
        prof = _profile.profiler()
        if prof is not None:
            prof.observe_chain_walk(engine, int(chain_nodes.sum()), num_lookups)
        return LookupResult(
            row_ids=row_agg, match_counts=match_counts.astype(np.int64), stats=stats
        )

    # --------------------------------------------------- vectorized chain walk

    def _chain_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened chain tables ``(order, starts)``, cached until an update.

        ``order`` lists every node in bucket-major chain order; a batched walk
        that starts at bucket ``b`` simply advances through
        ``order[starts[b]:]`` — crossing into the next bucket's chain is the
        same ``+= 1`` step the scalar walk performs explicitly.
        """
        if self._chain_cache is None:
            self._chain_cache = self.nodes.flatten_chains(self.overflow_bucket + 1)
        return self._chain_cache

    def _collect_batch(
        self, buckets: np.ndarray, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Lockstep :meth:`_collect` for a whole batch.

        All still-searching keys advance one node per iteration; the per-node
        binary searches become masked comparisons over gathered ``(key, slot)``
        matrices.  Returns per-key ``(row_sum, matches, nodes, entries)``.
        """
        order, starts = self._chain_table()
        nodes = self.nodes
        keys_matrix = nodes.keys_matrix
        row_ids_matrix = nodes.row_ids_matrix
        sizes = nodes.sizes_array
        max_keys = nodes.max_keys_array
        next_nodes = nodes.next_array
        lanes = np.arange(nodes.node_capacity)

        num_keys = int(keys.shape[0])
        row_sum = np.zeros(num_keys, dtype=np.int64)
        matches = np.zeros(num_keys, dtype=np.int64)
        nodes_visited = np.zeros(num_keys, dtype=np.int64)
        entries = np.zeros(num_keys, dtype=np.int64)

        keys64 = keys.astype(np.uint64)
        position = starts[buckets].copy()
        end = int(order.shape[0])
        active = np.nonzero(position < end)[0]
        while active.size:
            node = order[position[active]]
            nodes_visited[active] += 1
            node_sizes = sizes[node].astype(np.int64)
            skip = (max_keys[node] < keys64[active]) & (next_nodes[node] != NO_NEXT)
            search = np.nonzero(~skip)[0]
            done = np.zeros(active.size, dtype=bool)
            if search.size:
                search_keys = active[search]
                search_nodes = node[search]
                search_sizes = node_sizes[search]
                node_keys = keys_matrix[search_nodes]
                occupied = lanes[None, :] < search_sizes[:, None]
                target = keys[search_keys][:, None]
                left = ((node_keys < target) & occupied).sum(axis=1)
                right = ((node_keys <= target) & occupied).sum(axis=1)
                entries[search_keys] += np.maximum(1, right - left)
                matched = occupied & (node_keys == target)
                matches[search_keys] += matched.sum(axis=1)
                row_sum[search_keys] += np.where(
                    matched, row_ids_matrix[search_nodes].astype(np.int64), 0
                ).sum(axis=1)
                done[search] = right < search_sizes
            position[active] += 1
            keep = ~done & (position[active] < end)
            active = active[keep]
        return row_sum, matches, nodes_visited, entries

    def _compiled_chain_tables(self):
        """Arena-packed chain tables for the compiled walk (identity-cached).

        Keyed on the identity of the ``_chain_cache`` tuple: ``update_batch``
        invalidates it to ``None`` and ``_patch_chain_cache`` swaps in a new
        tuple, so an ``is`` check catches every mutation and repacks into the
        shard-local arena in place.
        """
        from repro.core import compiled as core_compiled
        from repro.rtx.compiled import Arena

        order, starts = self._chain_table()
        cached = self._compiled_chain
        if cached is not None and cached[0] is self._chain_cache:
            return cached[1]
        if self._compiled_arena is None:
            self._compiled_arena = Arena()
        tables = core_compiled.CompiledChainTables(order, starts, self._compiled_arena)
        self._compiled_chain = (self._chain_cache, tables)
        return tables

    def _collect_batch_compiled(
        self, buckets: np.ndarray, keys: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Compiled chain walk; returns ``None`` when no backend is available."""
        from repro.core import compiled as core_compiled

        tables = self._compiled_chain_tables()
        return core_compiled.chain_walk_batch(self.nodes, tables, buckets, keys)

    def _range_lookup_stats(
        self,
        lows: np.ndarray,
        ray_stats: RayStats,
        total_nodes: int,
        total_entries: int,
        total_results: int,
    ) -> KernelStats:
        """Kernel record of a range-lookup batch (shared by both engines)."""
        stats = KernelStats(name="cgrxu.range_lookup", threads=lows.shape[0], launches=2)
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        stats.bytes_read += ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
        stats.bytes_read += ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        stats.bytes_read += total_nodes * self.config.node_bytes
        stats.bytes_written += total_results * 4
        stats.compute_ops += total_entries
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(lows)
        )
        return stats

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Batched range lookups: locate the lower bound, then walk chains forward."""
        lows = np.asarray(lows, dtype=self._key_dtype)
        highs = np.asarray(highs, dtype=self._key_dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")
        engine = resolve_engine(self.config.engine)
        if engine == "scalar":
            return self._range_lookup_batch_scalar(lows, highs)
        return self._range_lookup_batch_vector(lows, highs, engine)

    def _range_lookup_batch_scalar(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> RangeLookupResult:
        """Reference path: one range and one ray at a time."""
        ray_stats = RayStats()
        results: List[np.ndarray] = []
        total_nodes = 0
        total_entries = 0

        for low, high in zip(lows, highs):
            low_value, high_value = int(low), int(high)
            bucket = self._route_key(low_value, ray_stats)
            collected: List[np.ndarray] = []
            done = False
            for current_bucket in range(bucket, self.overflow_bucket + 1):
                for node in self.nodes.chain(current_bucket):
                    total_nodes += 1
                    node_keys = self.nodes.node_keys(node)
                    size = node_keys.shape[0]
                    if size == 0:
                        continue
                    left = int(
                        np.searchsorted(node_keys, np.asarray(low_value, dtype=self._key_dtype), side="left")
                    )
                    right = int(
                        np.searchsorted(node_keys, np.asarray(high_value, dtype=self._key_dtype), side="right")
                    )
                    total_entries += max(1, right - left)
                    if left < right:
                        collected.append(self.nodes.node_row_ids(node)[left:right].copy())
                    if right < size:
                        done = True
                        break
                if done:
                    break
            if collected:
                results.append(np.concatenate(collected))
            else:
                results.append(np.empty(0, dtype=np.uint32))

        stats = self._range_lookup_stats(
            lows,
            ray_stats,
            total_nodes,
            total_entries,
            sum(r.shape[0] for r in results),
        )
        return RangeLookupResult(row_ids=results, stats=stats)

    def _range_lookup_batch_vector(
        self, lows: np.ndarray, highs: np.ndarray, engine: str = "vector"
    ) -> RangeLookupResult:
        """Batch path: wavefront or compiled routing plus a lockstep forward walk.

        The compiled tier accelerates the lower-bound routing rays only; the
        forward range walk emits variable-length row slices and stays on the
        lockstep vector path under every batch engine.
        """
        num_queries = int(lows.shape[0])
        ray_stats = RayStats()
        self.pipeline.batch_engine = engine
        try:
            bucket_ids, _ = self.representation.locate_bucket_batch(lows, ray_stats)
        finally:
            self.pipeline.batch_engine = "vector"
        buckets = np.where(bucket_ids == MISS, self.overflow_bucket, bucket_ids)

        order, starts = self._chain_table()
        nodes = self.nodes
        keys_matrix = nodes.keys_matrix
        sizes = nodes.sizes_array
        lanes = np.arange(nodes.node_capacity)

        total_nodes = 0
        total_entries = 0
        segment_query: List[np.ndarray] = []
        segment_node: List[np.ndarray] = []
        segment_left: List[np.ndarray] = []
        segment_right: List[np.ndarray] = []

        position = starts[buckets].copy()
        end = int(order.shape[0])
        active = np.nonzero(position < end)[0] if num_queries else np.empty(0, np.int64)
        while active.size:
            node = order[position[active]]
            total_nodes += int(active.size)
            node_sizes = sizes[node].astype(np.int64)
            nonempty = np.nonzero(node_sizes > 0)[0]
            done = np.zeros(active.size, dtype=bool)
            if nonempty.size:
                query = active[nonempty]
                query_nodes = node[nonempty]
                query_sizes = node_sizes[nonempty]
                node_keys = keys_matrix[query_nodes]
                occupied = lanes[None, :] < query_sizes[:, None]
                left = ((node_keys < lows[query][:, None]) & occupied).sum(axis=1)
                right = ((node_keys <= highs[query][:, None]) & occupied).sum(axis=1)
                total_entries += int(np.maximum(1, right - left).sum())
                has_rows = left < right
                if has_rows.any():
                    segment_query.append(query[has_rows])
                    segment_node.append(query_nodes[has_rows])
                    segment_left.append(left[has_rows])
                    segment_right.append(right[has_rows])
                done[nonempty] = right < query_sizes
            position[active] += 1
            keep = ~done & (position[active] < end)
            active = active[keep]

        results = self._assemble_range_results(
            num_queries, segment_query, segment_node, segment_left, segment_right
        )
        stats = self._range_lookup_stats(
            lows,
            ray_stats,
            total_nodes,
            total_entries,
            sum(r.shape[0] for r in results),
        )
        return RangeLookupResult(row_ids=results, stats=stats)

    def _assemble_range_results(
        self,
        num_queries: int,
        segment_query: List[np.ndarray],
        segment_node: List[np.ndarray],
        segment_left: List[np.ndarray],
        segment_right: List[np.ndarray],
    ) -> List[np.ndarray]:
        """Gather the collected per-node slices into per-query result arrays.

        Segments were recorded in lockstep-walk order, so a stable sort by
        query id reproduces the scalar walk order per query; one flattened
        gather then materialises every slice without per-entry Python work.
        """
        empty = np.empty(0, dtype=np.uint32)
        if not segment_query:
            return [empty for _ in range(num_queries)]
        query = np.concatenate(segment_query)
        node = np.concatenate(segment_node)
        left = np.concatenate(segment_left)
        right = np.concatenate(segment_right)
        order = np.argsort(query, kind="stable")
        query, node, left, right = query[order], node[order], left[order], right[order]

        lengths = right - left
        total = int(lengths.sum())
        slice_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        capacity = self.nodes.node_capacity
        flat_base = node * capacity + left
        offsets = np.arange(total, dtype=np.int64) - np.repeat(slice_starts, lengths)
        values = self.nodes.row_ids_matrix.reshape(-1)[
            np.repeat(flat_base, lengths) + offsets
        ]

        per_query = np.zeros(num_queries + 1, dtype=np.int64)
        np.add.at(per_query, query + 1, lengths)
        bounds = np.cumsum(per_query)
        return [
            values[bounds[index] : bounds[index + 1]].copy()
            if bounds[index + 1] > bounds[index]
            else empty
            for index in range(num_queries)
        ]

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Apply a batch of updates with one simulated thread per bucket.

        Deletions are processed before insertions (freeing space may avoid
        splits), and keys appearing in both halves of the batch cancel out, as
        described in Section IV.
        """
        stats = KernelStats(name="cgrxu.update", launches=0)

        insert_keys = (
            np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)

        insert_keys, insert_row_ids, insert_sort = device_radix_sort(insert_keys, insert_row_ids)
        delete_keys, _, delete_sort = device_radix_sort(delete_keys)
        stats.merge(insert_sort)
        stats.merge(delete_sort)

        insert_keys, insert_row_ids, delete_keys = cancel_opposing_updates(
            insert_keys, insert_row_ids, delete_keys
        )

        uppers = self._bucket_uppers
        lowers = np.concatenate([[np.uint64(0)], uppers[:-1] + np.uint64(1)])

        inserted = 0
        deleted = 0
        per_bucket_work: List[int] = []
        apply_stats = KernelStats(
            name="cgrxu.apply", threads=self.overflow_bucket + 1, launches=1
        )
        num_buckets = self.overflow_bucket + 1
        # Two binary searches on the sorted batch identify each thread's slice.
        slice_ops = 2 * max(1, int(np.log2(max(insert_keys.shape[0], 2))))

        if self.config.engine in ("vector", "compiled"):
            # Vectorized partitioning: both binary-search sweeps over the
            # sorted batch run as single searchsorted calls, and only buckets
            # that actually received work are visited below.
            deletes_lo, deletes_hi = self._batch_ranges(delete_keys, lowers, uppers)
            inserts_lo_all, inserts_hi_all = self._batch_ranges(insert_keys, lowers, uppers)
            apply_stats.compute_ops += num_buckets * slice_ops
            touched = np.nonzero(
                (deletes_hi > deletes_lo) | (inserts_hi_all > inserts_lo_all)
            )[0]
            bucket_slices = [
                (
                    int(bucket),
                    int(deletes_lo[bucket]),
                    int(deletes_hi[bucket]),
                    int(inserts_lo_all[bucket]),
                    int(inserts_hi_all[bucket]),
                )
                for bucket in touched
            ]
        else:
            bucket_slices = []
            for bucket in range(num_buckets):
                low = int(lowers[bucket])
                high = int(uppers[bucket])
                d_lo, d_hi = self._batch_range(delete_keys, low, high)
                i_lo, i_hi = self._batch_range(insert_keys, low, high)
                apply_stats.compute_ops += slice_ops
                bucket_slices.append((bucket, d_lo, d_hi, i_lo, i_hi))

        # Invalidate before mutating and keep the entry count per-operation:
        # even if the apply is interrupted mid-batch, later reads see the
        # live chains and a correct count.
        self._chain_cache = None

        for bucket, delete_lo, delete_hi, inserts_lo, inserts_hi in bucket_slices:
            work = 0

            for key in delete_keys[delete_lo:delete_hi]:
                removed, visited = self._delete_one(bucket, int(key))
                deleted += int(removed)
                self._num_entries -= int(removed)
                work += visited
                apply_stats.bytes_read += visited * self.config.node_bytes
                apply_stats.bytes_written += self.config.node_bytes // 2

            for offset in range(inserts_lo, inserts_hi):
                visited = self._insert_one(
                    bucket, int(insert_keys[offset]), int(insert_row_ids[offset])
                )
                inserted += 1
                self._num_entries += 1
                work += visited
                apply_stats.bytes_read += visited * self.config.node_bytes
                apply_stats.bytes_written += self.config.node_bytes // 2

            if work:
                per_bucket_work.append(work)

        apply_stats.divergence = divergence_factor(per_bucket_work)
        stats.merge(apply_stats)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=False)

    def _batch_range(self, sorted_keys: np.ndarray, low: int, high: int) -> Tuple[int, int]:
        """Index range of a sorted batch falling into a bucket's ``[low, high]`` range.

        Bounds are clamped to the key dtype so the overflow bucket (whose
        upper bound is the uint64 sentinel) works for 32-bit keys too.
        """
        if sorted_keys.size == 0:
            return 0, 0
        dtype_max = int(np.iinfo(self._key_dtype).max)
        if low > dtype_max:
            return 0, 0
        low_key = np.asarray(low, dtype=self._key_dtype)
        high_key = np.asarray(min(high, dtype_max), dtype=self._key_dtype)
        lo = int(np.searchsorted(sorted_keys, low_key, side="left"))
        hi = int(np.searchsorted(sorted_keys, high_key, side="right"))
        return lo, hi

    def _batch_ranges(
        self, sorted_keys: np.ndarray, lowers: np.ndarray, uppers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_batch_range` over every bucket at once."""
        num_buckets = int(lowers.shape[0])
        if sorted_keys.size == 0:
            zeros = np.zeros(num_buckets, dtype=np.int64)
            return zeros, zeros.copy()
        dtype_max = np.uint64(np.iinfo(self._key_dtype).max)
        valid = lowers <= dtype_max
        low_keys = np.minimum(lowers, dtype_max).astype(self._key_dtype)
        high_keys = np.minimum(uppers, dtype_max).astype(self._key_dtype)
        lo = np.searchsorted(sorted_keys, low_keys, side="left").astype(np.int64)
        hi = np.searchsorted(sorted_keys, high_keys, side="right").astype(np.int64)
        lo[~valid] = 0
        hi[~valid] = 0
        return lo, hi

    def _delete_one(self, bucket: int, key: int) -> Tuple[bool, int]:
        """Delete one occurrence of ``key`` starting at ``bucket``'s chain.

        Mirrors :meth:`_collect`: a duplicate group hugging a bucket boundary
        continues in the next bucket, so when the routed bucket's chain ends
        without a key larger than the target, the search moves on rather
        than reporting a miss.
        """
        visited = 0
        current_bucket = bucket
        while current_bucket <= self.overflow_bucket:
            saw_larger = False
            for node in self.nodes.chain(current_bucket):
                visited += 1
                size = self.nodes.node_size(node)
                if self.nodes.node_max_key(node) < key and self.nodes.node_next(node) != NO_NEXT:
                    continue
                if self.nodes.delete_from_node(node, key):
                    return True, visited
                node_keys = self.nodes.node_keys(node)
                target = np.asarray(key, dtype=self._key_dtype)
                if size and int(np.searchsorted(node_keys, target, side="right")) < size:
                    saw_larger = True
                    break
            if saw_larger:
                break
            if current_bucket < self.overflow_bucket:
                current_bucket += 1
                continue
            break
        return False, visited

    def _insert_one(self, bucket: int, key: int, row_id: int) -> int:
        """Insert ``key`` into the bucket's chain, splitting a full node if needed."""
        visited = 0
        target_node = bucket
        for node in self.nodes.chain(bucket):
            visited += 1
            target_node = node
            if self.nodes.node_max_key(node) >= key:
                break
        if not self.nodes.insert_into_node(target_node, key, row_id):
            new_node = self.nodes.split_node(target_node)
            visited += 1
            if key > self.nodes.node_max_key(target_node):
                target_node = new_node
            inserted = self.nodes.insert_into_node(target_node, key, row_id)
            assert inserted, "insert after split must succeed"
        return visited

    def export_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """All (key, rowID) entries in bucket/chain order (sorted by key).

        One flattened gather over the chain tables — no per-node Python loop
        or per-entry ``int()`` conversion.
        """
        order, _ = self._chain_table()
        sizes = self.nodes.sizes_array[order]
        occupied = np.arange(self.nodes.node_capacity)[None, :] < sizes[:, None]
        return (
            self.nodes.keys_matrix[order][occupied],
            self.nodes.row_ids_matrix[order][occupied],
        )

    # ------------------------------------------------------------ maintenance

    def compact_buckets(self, bucket_ids: Sequence[int]) -> KernelStats:
        """Fold the chains of ``bucket_ids`` back into minimal node chains.

        Per-bucket incremental maintenance, the middle tier of the index
        lifecycle: each selected bucket's chain is re-packed into the fewest
        nodes that hold its entries (one node when they fit, exactly as after
        a fresh bulk load) and the surplus linked nodes return to the slab
        allocator, healing the chain debt updates accumulated without
        touching any other bucket.  Where deletes shrank a bucket's largest
        key, its representative triangle is additionally *re-anchored* to
        the current maximum (when provably safe, see
        :meth:`~repro.core.representation.SceneRepresentation.reanchor_representative`)
        and the BVH is **refit** against the moved geometry rather than
        rebuilt — unless the accumulated overlap area escalates past
        ``config.refit_escalation_ratio``, in which case the tree is rebuilt
        and the quality baseline reset.

        Lookup answers are unchanged by construction (both engines walk the
        same, now shorter, chains); only the lookup *cost* drops.  The
        cached chain tables are patched per bucket instead of being
        invalidated globally.
        """
        bucket_ids = np.unique(np.asarray(bucket_ids, dtype=np.int64))
        if bucket_ids.size and (
            int(bucket_ids[0]) < 0 or int(bucket_ids[-1]) > self.overflow_bucket
        ):
            raise ValueError("bucket ids out of range")
        stats = KernelStats(
            name="cgrxu.compact", threads=int(bucket_ids.size), launches=1
        )
        uppers = self._bucket_uppers
        reanchored = 0
        per_bucket_work: List[int] = []
        prof = _profile.profiler()
        for bucket in bucket_ids:
            bucket = int(bucket)
            chain_keys, chain_rows = self.nodes.chain_entries(bucket)
            upper = int(uppers[bucket])
            new_upper = upper
            if (
                bucket < self.overflow_bucket
                and chain_keys.size
                and int(chain_keys[-1]) < upper
                # A following bucket sharing this routing bound must keep
                # resolving through this representative: never re-anchor it.
                and int(uppers[bucket + 1]) != upper
                and self.representation.reanchor_representative(
                    bucket, upper, int(chain_keys[-1])
                )
            ):
                new_upper = int(chain_keys[-1])
                uppers[bucket] = np.uint64(new_upper)
                reanchored += 1
            before, after = self.nodes.compact_chain(
                bucket, new_upper, entries=(chain_keys, chain_rows)
            )
            if prof is not None:
                prof.observe_chain_compaction(before, after)
            self.lifecycle["nodes_reclaimed"] += before - after
            stats.bytes_read += before * self.config.node_bytes
            stats.bytes_written += after * self.config.node_bytes
            stats.compute_ops += int(chain_keys.shape[0])
            per_bucket_work.append(before)
        stats.divergence = divergence_factor(per_bucket_work)

        if reanchored:
            # Geometry moved: refit the existing BVH (the cheap OptiX update
            # build) and escalate to a full rebuild only when the overlap
            # quality signal says refitting has degraded the tree too far.
            self.pipeline.update_acceleration_structure()
            self.lifecycle["bvh_refits"] += 1
            self.lifecycle["reanchored_representatives"] += reanchored
            stats.bytes_read += self.num_triangles * RT_TRIANGLE_RESIDUAL_BYTES
            stats.bytes_written += self.pipeline.bvh.num_nodes * RT_NODE_RESIDUAL_BYTES
            if self.bvh_overlap_ratio() > self.config.refit_escalation_ratio:
                self.pipeline.build_acceleration_structure()
                self._built_overlap_area = total_overlap_area(self.pipeline.bvh)
                self.lifecycle["bvh_rebuilds"] += 1

        self._patch_chain_cache(bucket_ids)
        self.lifecycle["compaction_passes"] += 1
        self.lifecycle["buckets_compacted"] += int(bucket_ids.size)
        self.epoch += 1
        return stats

    def _patch_chain_cache(self, bucket_ids: np.ndarray) -> None:
        """Splice the compacted buckets' new chains into the cached tables.

        Only the touched buckets' chains are re-walked; every other chain's
        segment is copied wholesale from the existing ``(order, starts)``
        tables, so compaction re-chases the pointers of the buckets it
        touched rather than of every chain in the index.
        """
        if self._chain_cache is None:
            return
        order, starts = self._chain_cache
        num_chains = int(starts.shape[0]) - 1
        lengths = np.diff(starts)
        touched = np.zeros(num_chains, dtype=bool)
        segments: Dict[int, np.ndarray] = {}
        for bucket in bucket_ids:
            bucket = int(bucket)
            segment = np.fromiter(self.nodes.chain(bucket), dtype=np.int64)
            segments[bucket] = segment
            touched[bucket] = True
            lengths[bucket] = segment.shape[0]
        new_starts = np.zeros(num_chains + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_starts[1:])
        new_order = np.empty(int(new_starts[-1]), dtype=np.int64)
        untouched = np.nonzero(~touched)[0]
        if untouched.size:
            kept = lengths[untouched]
            total = int(kept.sum())
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.concatenate([[0], np.cumsum(kept)[:-1]]), kept
            )
            new_order[np.repeat(new_starts[untouched], kept) + offsets] = order[
                np.repeat(starts[untouched], kept) + offsets
            ]
        for bucket, segment in segments.items():
            new_order[new_starts[bucket] : new_starts[bucket] + segment.shape[0]] = segment
        self._chain_cache = (new_order, new_starts)

    def bucket_chain_lengths(self) -> np.ndarray:
        """Chain length in nodes per bucket (overflow bucket last).

        The serving layer's compaction tier sorts on this to pick the
        hottest-chained buckets first.
        """
        _, starts = self._chain_table()
        return np.diff(starts)

    def bvh_overlap_ratio(self) -> float:
        """Overlap-area growth of the (possibly refit) BVH vs its fresh build.

        Memoised per (build, refit) generation: the area only moves when the
        acceleration structure does, while the maintenance scan probes this
        on every cycle.
        """
        key = (
            self.pipeline.build_count,
            self.pipeline.refit_count,
            self._built_overlap_area,
        )
        if self._overlap_ratio_cache is not None and self._overlap_ratio_cache[0] == key:
            return self._overlap_ratio_cache[1]
        value = overlap_ratio(self.pipeline.bvh, self._built_overlap_area)
        self._overlap_ratio_cache = (key, value)
        return value

    def snapshot(self) -> IndexSnapshot:
        """A consistent, epoch-tagged copy of the current entries.

        Taken off the request path; the live index keeps serving while a
        replacement is built from the snapshot in the background.
        """
        keys, row_ids = self.export_entries()
        return IndexSnapshot(
            keys=keys,
            row_ids=row_ids,
            config=replace(self.config),
            epoch=self.epoch,
        )

    @classmethod
    def build_from_snapshot(
        cls, snapshot: IndexSnapshot, device: GpuDevice = RTX_4090
    ) -> "CgRXuIndex":
        """Build a fresh (chain-free) index off-path from a snapshot.

        The replacement answers every lookup exactly like the snapshotted
        index (entries and duplicate tie-order are preserved by
        ``export_entries``) and starts one epoch later, which is how the
        double-buffered shard swap distinguishes the generations.
        """
        replacement = cls(
            snapshot.keys, snapshot.row_ids, config=snapshot.config, device=device
        )
        replacement.epoch = snapshot.epoch + 1
        return replacement

    def chain_statistics(self) -> dict:
        """Node-chain health of the bucket lists.

        Insert waves split nodes and grow the per-bucket chains; every extra
        node is an extra dependent load on the lookup path.  The serving
        layer's maintenance worker watches these numbers to decide when a
        shard is worth rebuilding.
        """
        lengths = self.bucket_chain_lengths()
        return {
            "num_chains": int(lengths.shape[0]),
            "max_chain_nodes": int(lengths.max()),
            "mean_chain_nodes": float(lengths.mean()),
            "chained_buckets": int((lengths > 1).sum()),
        }

    def degradation_score(self) -> float:
        """Mean number of *extra* chain nodes per bucket (0.0 = fresh build).

        O(1): every chain starts as its one representative node and only
        node splits append linked-region nodes, so the extra nodes per
        bucket are exactly the allocated linked nodes over the chain count.
        """
        return self.nodes.linked_nodes_used / self.nodes.num_representative_nodes

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        """Node regions + vertex buffer + acceleration structure.

        The compiled tier's arenas are deliberately excluded: this footprint
        feeds the cost model's cache fractions, which must stay identical
        across engines.  See :meth:`compiled_buffers_bytes`.
        """
        footprint = self.nodes.memory_footprint()
        footprint.add("vertex_buffer", self.pipeline.vertex_buffer.memory_footprint_bytes())
        footprint.add("bvh", self.pipeline.bvh.memory_footprint_bytes())
        return footprint

    def compiled_buffers_bytes(self) -> int:
        """Bytes held by the compiled tier's shard-local arenas.

        Covers both the pipeline's quantized BVH node tables and this index's
        packed chain tables; zero when the compiled tier has never run.
        """
        total = self.pipeline.compiled_buffers_bytes()
        if self._compiled_arena is not None:
            total += self._compiled_arena.capacity_bytes
        return total

    # ------------------------------------------------------------ conveniences

    def __len__(self) -> int:
        """Current number of indexed entries (bulk load plus net updates).

        O(1): maintained incrementally by the update path (validated against
        :meth:`_count_entries` in the test suite).
        """
        return self._num_entries

    def _count_entries(self) -> int:
        """Reference entry count: re-walk every chain (tests only)."""
        total = 0
        for bucket in range(self.overflow_bucket + 1):
            for node in self.nodes.chain(bucket):
                total += self.nodes.node_size(node)
        return total

    @property
    def num_triangles(self) -> int:
        """Number of triangles materialised in the 3D scene."""
        return self.representation.triangle_count()
