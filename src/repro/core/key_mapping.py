"""Key mappings from integer keys to positions in the 3D scene.

RX and cgRX place a triangle for a key ``k`` at the grid point obtained by
slicing ``k`` into an x, y and z component.  Because triangle vertices are
32-bit floats, at most 23 bits can be represented exactly per dimension, so
the default mapping for 64-bit keys is ``k -> (k[22:0], k[45:23], k[63:46])``.

Section V-A of the paper shows that this mapping alone produces poor BVHs for
sparse key sets: the builder clusters triangles across rows, so the
unavoidable x-axis ray has to test triangles from neighbouring rows.  The fix
is to scale the y and z coordinates by large constants (2^15 and 2^25), which
stretches the scene along y/z and makes the builder separate rows and planes
first.  :class:`KeyMapping` implements both the unscaled and the scaled
mapping, plus the small illustrative mapping used in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

ArrayLike = Union[int, np.ndarray]

#: Maximum bits representable exactly per float32 dimension.
MAX_BITS_PER_DIMENSION = 23

#: Scale factors of the "scaled" mapping introduced in Section V-A.
DEFAULT_Y_SCALE = float(1 << 15)
DEFAULT_Z_SCALE = float(1 << 25)


@dataclass(frozen=True)
class KeyMapping:
    """Slices keys into (x, y, z) grid coordinates and scales them into scene space.

    ``x_bits``/``y_bits``/``z_bits`` partition the key starting from the least
    significant bit.  ``y_scale``/``z_scale`` multiply the grid coordinate when
    converting to scene coordinates; grid coordinates (used for all equality
    and ordering logic) are unaffected by scaling.
    """

    x_bits: int = MAX_BITS_PER_DIMENSION
    y_bits: int = MAX_BITS_PER_DIMENSION
    z_bits: int = 18
    y_scale: float = 1.0
    z_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.x_bits <= 0:
            raise ValueError("x_bits must be positive")
        if self.y_bits < 0 or self.z_bits < 0:
            raise ValueError("y_bits and z_bits must be non-negative")
        if self.x_bits > MAX_BITS_PER_DIMENSION:
            raise ValueError(
                f"x_bits must not exceed {MAX_BITS_PER_DIMENSION} (float32 precision)"
            )
        if self.y_bits > MAX_BITS_PER_DIMENSION:
            raise ValueError(
                f"y_bits must not exceed {MAX_BITS_PER_DIMENSION} (float32 precision)"
            )
        if self.y_scale < 1.0 or self.z_scale < 1.0:
            raise ValueError("scale factors must be >= 1")

    # ------------------------------------------------------------ constructors

    @staticmethod
    def for_key_bits(key_bits: int, scaled: bool = True) -> "KeyMapping":
        """Default mapping for 32-bit or 64-bit keys.

        64-bit keys use the paper's ``(23, 23, 18)`` split; 32-bit keys fit
        into ``(23, 9, 0)`` and therefore always live on a single plane.
        ``scaled=True`` applies the Section V-A scaling, which is the
        configuration all evaluation experiments use.
        """
        if key_bits == 64:
            mapping = KeyMapping(
                x_bits=23,
                y_bits=23,
                z_bits=18,
                y_scale=DEFAULT_Y_SCALE if scaled else 1.0,
                z_scale=DEFAULT_Z_SCALE if scaled else 1.0,
            )
        elif key_bits == 32:
            mapping = KeyMapping(
                x_bits=23,
                y_bits=9,
                z_bits=0,
                y_scale=DEFAULT_Y_SCALE if scaled else 1.0,
                z_scale=1.0,
            )
        else:
            raise ValueError("key_bits must be 32 or 64")
        return mapping

    @staticmethod
    def example_mapping() -> "KeyMapping":
        """The tiny ``(3, 2, rest)`` mapping used by the paper's running examples."""
        return KeyMapping(x_bits=3, y_bits=2, z_bits=10)

    # ------------------------------------------------------------- grid coords

    @property
    def x_max(self) -> int:
        """Largest x grid coordinate."""
        return (1 << self.x_bits) - 1

    @property
    def y_max(self) -> int:
        """Largest y grid coordinate (0 when the mapping has no y bits)."""
        return (1 << self.y_bits) - 1 if self.y_bits else 0

    @property
    def z_max(self) -> int:
        """Largest z grid coordinate (0 when the mapping has no z bits)."""
        return (1 << self.z_bits) - 1 if self.z_bits else 0

    def x_of(self, key: ArrayLike) -> ArrayLike:
        """x grid coordinate(s) of ``key``."""
        key = self._as_uint(key)
        return key & self._mask(self.x_bits)

    def y_of(self, key: ArrayLike) -> ArrayLike:
        """y grid coordinate(s) of ``key``."""
        if self.y_bits == 0:
            return self._zeros_like(key)
        key = self._as_uint(key)
        return (key >> np.uint64(self.x_bits)) & self._mask(self.y_bits)

    def z_of(self, key: ArrayLike) -> ArrayLike:
        """z grid coordinate(s) of ``key``."""
        if self.z_bits == 0:
            return self._zeros_like(key)
        key = self._as_uint(key)
        return (key >> np.uint64(self.x_bits + self.y_bits)) & self._mask(self.z_bits)

    def yz_of(self, key: ArrayLike) -> ArrayLike:
        """Combined (y, z) identifier — two keys share a row iff these are equal."""
        key = self._as_uint(key)
        return key >> np.uint64(self.x_bits)

    def key_to_grid(self, key: ArrayLike) -> Tuple[ArrayLike, ArrayLike, ArrayLike]:
        """Grid coordinates ``(x, y, z)`` of ``key`` (scalars or arrays)."""
        return self.x_of(key), self.y_of(key), self.z_of(key)

    def grid_to_key(self, x: int, y: int = 0, z: int = 0) -> int:
        """Inverse of :meth:`key_to_grid` for scalar grid coordinates."""
        if not 0 <= x <= self.x_max:
            raise ValueError(f"x={x} out of range [0, {self.x_max}]")
        if not 0 <= y <= self.y_max:
            raise ValueError(f"y={y} out of range [0, {self.y_max}]")
        if not 0 <= z <= self.z_max:
            raise ValueError(f"z={z} out of range [0, {self.z_max}]")
        return int(x) | (int(y) << self.x_bits) | (int(z) << (self.x_bits + self.y_bits))

    # ------------------------------------------------------------ scene coords

    def grid_to_scene(self, x: float, y: float, z: float) -> Tuple[float, float, float]:
        """Scene coordinates of a grid point (applies the y/z scaling)."""
        return float(x), float(y) * self.y_scale, float(z) * self.z_scale

    def key_to_scene(self, key: int) -> Tuple[float, float, float]:
        """Scene coordinates of ``key``'s triangle centre."""
        x, y, z = self.key_to_grid(int(key))
        return self.grid_to_scene(float(x), float(y), float(z))

    def scene_y_to_grid(self, scene_y: float) -> int:
        """Grid row of a scene y coordinate (used to snap ray-hit positions)."""
        return int(round(scene_y / self.y_scale))

    def scene_z_to_grid(self, scene_z: float) -> int:
        """Grid plane of a scene z coordinate."""
        return int(round(scene_z / self.z_scale))

    @property
    def single_plane(self) -> bool:
        """True when the mapping cannot produce more than one plane (z_bits == 0)."""
        return self.z_bits == 0

    @property
    def key_bits(self) -> int:
        """Number of key bits the mapping consumes."""
        return self.x_bits + self.y_bits + self.z_bits

    def describe(self) -> str:
        """One-line description, e.g. for benchmark output."""
        scaling = (
            f", y_scale=2^{int(np.log2(self.y_scale))}, z_scale=2^{int(np.log2(self.z_scale))}"
            if self.y_scale > 1.0 or self.z_scale > 1.0
            else ""
        )
        return f"KeyMapping(x={self.x_bits}b, y={self.y_bits}b, z={self.z_bits}b{scaling})"

    # -------------------------------------------------------------- internals

    @staticmethod
    def _as_uint(key: ArrayLike) -> ArrayLike:
        if isinstance(key, np.ndarray):
            return key.astype(np.uint64, copy=False)
        return np.uint64(int(key))

    @staticmethod
    def _zeros_like(key: ArrayLike) -> ArrayLike:
        if isinstance(key, np.ndarray):
            return np.zeros_like(key, dtype=np.uint64)
        return np.uint64(0)

    @staticmethod
    def _mask(bits: int) -> np.uint64:
        return np.uint64((1 << bits) - 1)
