"""Kernel work descriptions.

Every operation an index performs — a batch of point lookups, a range scan, a
sort, a BVH build — is summarised as a :class:`KernelStats` record: how many
threads ran, how many bytes they moved, how much RT-core work and how much
plain compute they did, and how divergent they were.  The cost model turns one
of these records into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List


@dataclass
class KernelStats:
    """Work performed by one (simulated) kernel launch."""

    #: Human-readable label, e.g. ``"cgrx.point_lookup"``.
    name: str = "kernel"
    #: Number of logical threads (usually one per lookup, or one per bucket).
    threads: int = 0
    #: Bytes read from global memory.
    bytes_read: int = 0
    #: Bytes written to global memory.
    bytes_written: int = 0
    #: Bounding-volume (AABB) tests executed by the RT cores.
    bvh_node_visits: int = 0
    #: Ray/triangle intersection tests executed by the RT cores.
    triangle_tests: int = 0
    #: Rays fired (used for reporting, not directly for time).
    rays_cast: int = 0
    #: Plain compute operations (comparisons, address arithmetic, hashing).
    compute_ops: int = 0
    #: Multiplier >= 1 describing warp divergence / synchronisation pressure.
    divergence: float = 1.0
    #: Fraction of global-memory traffic served by cache (0 = none, 1 = all).
    cache_hit_fraction: float = 0.0
    #: Number of separate kernel launches this record aggregates.
    launches: int = 1

    @property
    def total_bytes(self) -> int:
        """Total global-memory traffic."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate ``other`` into ``self`` (weighted for divergence/cache) and return self."""
        total_bytes = self.total_bytes + other.total_bytes
        if total_bytes > 0:
            self.cache_hit_fraction = (
                self.cache_hit_fraction * self.total_bytes
                + other.cache_hit_fraction * other.total_bytes
            ) / total_bytes
        self.divergence = max(self.divergence, other.divergence)
        self.threads = max(self.threads, other.threads)
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.bvh_node_visits += other.bvh_node_visits
        self.triangle_tests += other.triangle_tests
        self.rays_cast += other.rays_cast
        self.compute_ops += other.compute_ops
        self.launches += other.launches
        return self

    def copy(self) -> "KernelStats":
        return KernelStats(
            name=self.name,
            threads=self.threads,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            bvh_node_visits=self.bvh_node_visits,
            triangle_tests=self.triangle_tests,
            rays_cast=self.rays_cast,
            compute_ops=self.compute_ops,
            divergence=self.divergence,
            cache_hit_fraction=self.cache_hit_fraction,
            launches=self.launches,
        )


def combine(name: str, parts: Iterable[KernelStats]) -> KernelStats:
    """Aggregate several kernel records into one, preserving total work."""
    result = KernelStats(name=name, launches=0)
    for part in parts:
        result.merge(part)
    if result.launches == 0:
        result.launches = 1
    return result
