"""Device descriptions for the GPUs used in the paper's evaluation.

The numbers are public spec-sheet values (memory bandwidth, SM count, VRAM)
plus calibration constants for the analytical cost model (per-operation RT
traversal throughput, compute throughput, kernel launch overhead, the batch
size at which the device saturates).  The calibration constants are not meant
to reproduce absolute milliseconds from the paper — they only need to keep
the *relative* cost of memory traffic, RT work and compute in a realistic
regime so the experiment shapes carry over.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDevice:
    """Static properties of a simulated GPU."""

    name: str
    #: Total device memory in bytes.
    vram_bytes: int
    #: Peak global-memory bandwidth in bytes per second.
    memory_bandwidth: float
    #: Number of streaming multiprocessors.
    sm_count: int
    #: Number of dedicated raytracing cores.
    rt_core_count: int
    #: Aggregate BVH-node (AABB) tests the RT cores can perform per second.
    rt_node_tests_per_second: float
    #: Aggregate ray/triangle intersection tests per second.
    rt_triangle_tests_per_second: float
    #: Simple integer/comparison operations per second (all SMs combined).
    compute_ops_per_second: float
    #: Fixed overhead per kernel launch in milliseconds.
    kernel_launch_overhead_ms: float
    #: Number of concurrently resident lookup threads needed to saturate the
    #: device; smaller batches pay an underutilisation penalty (Figure 15).
    saturation_threads: int
    #: Size of the L2 cache in bytes (drives the benefit of skewed lookups).
    l2_cache_bytes: int

    @property
    def vram_gib(self) -> float:
        """Device memory in GiB."""
        return self.vram_bytes / float(1 << 30)

    def fits_in_memory(self, footprint_bytes: int) -> bool:
        """Whether a structure of ``footprint_bytes`` fits into device memory."""
        return footprint_bytes <= self.vram_bytes


#: NVIDIA GeForce RTX 4090 (Ada Lovelace), the primary evaluation device.
RTX_4090 = GpuDevice(
    name="NVIDIA GeForce RTX 4090",
    vram_bytes=24 * (1 << 30),
    memory_bandwidth=1008e9,
    sm_count=128,
    rt_core_count=128,
    rt_node_tests_per_second=180e9,
    rt_triangle_tests_per_second=95e9,
    compute_ops_per_second=82e12,
    kernel_launch_overhead_ms=0.004,
    saturation_threads=1 << 15,
    l2_cache_bytes=72 * (1 << 20),
)

#: NVIDIA RTX A6000 (Ampere), used for the bucket-size robustness study.
RTX_A6000 = GpuDevice(
    name="NVIDIA RTX A6000",
    vram_bytes=48 * (1 << 30),
    memory_bandwidth=768e9,
    sm_count=84,
    rt_core_count=84,
    rt_node_tests_per_second=110e9,
    rt_triangle_tests_per_second=58e9,
    compute_ops_per_second=39e12,
    kernel_launch_overhead_ms=0.004,
    saturation_threads=1 << 15,
    l2_cache_bytes=6 * (1 << 20),
)
