"""Device memory footprint accounting.

Figures 12a/13a of the paper compare the *permanent* device memory footprint
of every index.  :class:`MemoryFootprint` tracks the footprint as a set of
named components (vertex buffer, BVH, key-rowID array, node regions, hash
table slots, ...) so that tests and benchmarks can both report the total and
inspect where the bytes come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

GIB = float(1 << 30)
MIB = float(1 << 20)


@dataclass
class MemoryFootprint:
    """A named breakdown of device bytes."""

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, num_bytes: int) -> "MemoryFootprint":
        """Add ``num_bytes`` to component ``name`` (creating it if necessary)."""
        if num_bytes < 0:
            raise ValueError("component sizes must be non-negative")
        self.components[name] = self.components.get(name, 0) + int(num_bytes)
        return self

    def set(self, name: str, num_bytes: int) -> "MemoryFootprint":
        """Set component ``name`` to exactly ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("component sizes must be non-negative")
        self.components[name] = int(num_bytes)
        return self

    def remove(self, name: str) -> None:
        """Drop component ``name`` if present."""
        self.components.pop(name, None)

    def get(self, name: str) -> int:
        """Bytes of component ``name`` (0 if absent)."""
        return self.components.get(name, 0)

    @property
    def total_bytes(self) -> int:
        """Total device bytes across all components."""
        return sum(self.components.values())

    @property
    def total_gib(self) -> float:
        """Total footprint in GiB."""
        return self.total_bytes / GIB

    @property
    def total_mib(self) -> float:
        """Total footprint in MiB."""
        return self.total_bytes / MIB

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.components.items()))

    def merged_with(self, other: "MemoryFootprint") -> "MemoryFootprint":
        """Return a new footprint combining both operands."""
        merged = MemoryFootprint(dict(self.components))
        for name, num_bytes in other.components.items():
            merged.add(name, num_bytes)
        return merged

    def describe(self) -> str:
        """Human-readable multi-line breakdown."""
        lines = [f"total: {self.total_bytes} B ({self.total_mib:.2f} MiB)"]
        for name, num_bytes in self:
            lines.append(f"  {name}: {num_bytes} B ({num_bytes / MIB:.2f} MiB)")
        return "\n".join(lines)


def array_bytes(length: int, element_bytes: int) -> int:
    """Bytes of a dense device array of ``length`` elements."""
    if length < 0 or element_bytes < 0:
        raise ValueError("length and element size must be non-negative")
    return int(length) * int(element_bytes)
