"""GPU execution model: devices, memory accounting, SIMT batching and the cost model.

The real evaluation ran on an RTX 4090 (and an RTX A6000 for the robustness
study).  This package replaces the hardware with an analytical model: every
index operation produces a :class:`~repro.gpu.kernels.KernelStats` record of
the work it performed (bytes moved, BVH nodes visited, triangles tested,
comparisons executed, threads launched) and
:class:`~repro.gpu.cost_model.CostModel` converts that work into simulated
milliseconds for a given device.  Absolute times are synthetic; relative
behaviour (who wins, where crossovers happen) follows from the counted work.
"""

from repro.gpu.device import RTX_4090, RTX_A6000, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.cost_model import CostModel
from repro.gpu.simt import (
    COOPERATIVE_GROUP_SIZE,
    WARP_SIZE,
    cooperative_scan_steps,
    divergence_factor,
    warps_for_threads,
)
from repro.gpu.sort import device_radix_sort, radix_sort_stats

__all__ = [
    "GpuDevice",
    "RTX_4090",
    "RTX_A6000",
    "KernelStats",
    "MemoryFootprint",
    "CostModel",
    "WARP_SIZE",
    "COOPERATIVE_GROUP_SIZE",
    "warps_for_threads",
    "divergence_factor",
    "cooperative_scan_steps",
    "device_radix_sort",
    "radix_sort_stats",
]
