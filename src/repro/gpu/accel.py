"""Cost accounting for acceleration-structure builds and refits.

``optixAccelBuild`` is a black box on real hardware; what matters for the
paper's experiments is that its cost scales with the number of triangles and
that a *refit* is roughly an order of magnitude cheaper than a full build
(which is why RX is tempted into the refit path for updates, with the known
consequences for lookup performance).
"""

from __future__ import annotations

from repro.gpu.kernels import KernelStats

#: Bytes of one triangle in the vertex buffer (nine 4-byte floats).
TRIANGLE_BYTES = 36

#: Compute operations per triangle of a full BVH build (sorting by Morton
#: code, hierarchy emission, bounding-box fitting).
BUILD_OPS_PER_TRIANGLE = 64

#: Number of passes over the triangle data a full builder makes (Morton-code
#: sort, radix passes, hierarchy emission, fitting, compaction).  BVH builds
#: are memory bound; this constant puts the simulated build throughput in the
#: hundreds-of-millions-of-triangles-per-second regime of ``optixAccelBuild``.
BUILD_PASSES = 15

#: Compute operations per triangle of a refit (a bottom-up bounding-box pass).
REFIT_OPS_PER_TRIANGLE = 6


def accel_build_stats(num_triangles: int, output_bytes: int) -> KernelStats:
    """Work of a full acceleration-structure build over ``num_triangles``."""
    num_triangles = int(num_triangles)
    return KernelStats(
        name="optix.accel_build",
        threads=max(1, num_triangles),
        bytes_read=num_triangles * TRIANGLE_BYTES * BUILD_PASSES,
        bytes_written=num_triangles * TRIANGLE_BYTES * BUILD_PASSES + int(output_bytes),
        compute_ops=num_triangles * BUILD_OPS_PER_TRIANGLE,
        launches=BUILD_PASSES,
    )


def accel_refit_stats(num_triangles: int, structure_bytes: int) -> KernelStats:
    """Work of a refit-only update of an existing acceleration structure."""
    num_triangles = int(num_triangles)
    return KernelStats(
        name="optix.accel_refit",
        threads=max(1, num_triangles),
        bytes_read=num_triangles * TRIANGLE_BYTES + int(structure_bytes),
        bytes_written=int(structure_bytes),
        compute_ops=num_triangles * REFIT_OPS_PER_TRIANGLE,
        launches=1,
    )


def triangle_generation_stats(num_keys_read: int, num_triangles_written: int) -> KernelStats:
    """Work of the kernel that converts keys into vertex-buffer triangles."""
    return KernelStats(
        name="triangle_generation",
        threads=max(1, int(num_triangles_written)),
        bytes_read=int(num_keys_read) * 8,
        bytes_written=int(num_triangles_written) * TRIANGLE_BYTES,
        compute_ops=int(num_triangles_written) * 8,
        launches=1,
    )
