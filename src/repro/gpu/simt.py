"""SIMT execution helpers: warps, cooperative groups and divergence estimates.

The paper's indexes all use batch execution where each lookup is handled by a
single thread (RX, cgRX ray stage, SA, HT) or by a cooperative group of 16
threads (B+ traversal, cgRX/B+ bucket/leaf scans).  The helpers here express
those execution patterns as numbers the cost model understands.
"""

from __future__ import annotations

import math

#: Threads per warp on all NVIDIA GPUs relevant to the paper.
WARP_SIZE = 32

#: Cooperative group size used by the B+-tree traversal and by cgRX's bucket
#: scan kernel ("a separate CUDA kernel to spawn a group of 16 threads per
#: lookup").
COOPERATIVE_GROUP_SIZE = 16


def warps_for_threads(threads: int) -> int:
    """Number of warps needed to run ``threads`` logical threads."""
    if threads <= 0:
        return 0
    return math.ceil(threads / WARP_SIZE)


def cooperative_scan_steps(elements: int, group_size: int = COOPERATIVE_GROUP_SIZE) -> int:
    """Number of group-wide steps to scan ``elements`` contiguous entries.

    A cooperative group loads ``group_size`` neighbouring entries per step in
    a coalesced fashion, which is why cgRX and B+ scan buckets/leaves quickly.
    """
    if elements <= 0:
        return 0
    return math.ceil(elements / group_size)


#: Fraction of the raw warp-pacing imbalance that actually shows up as lost
#: time.  The hardware hides most of it by switching to other resident warps,
#: so only part of the imbalance translates into a slowdown.
DIVERGENCE_EXPOSURE = 0.35


def divergence_factor(per_thread_work: "list[int] | tuple[int, ...]") -> float:
    """Estimate the warp-divergence penalty of a batch.

    SIMT execution is paced by the slowest thread of each warp.  Given the
    per-thread work of a (sample of a) batch, the raw imbalance is the ratio
    between warp-maximum-paced cost and mean-paced cost; the returned factor
    exposes only :data:`DIVERGENCE_EXPOSURE` of it (latency hiding).
    """
    work = [max(int(w), 0) for w in per_thread_work]
    if not work:
        return 1.0
    total = sum(work)
    if total == 0:
        return 1.0
    paced = 0
    for start in range(0, len(work), WARP_SIZE):
        chunk = work[start : start + WARP_SIZE]
        paced += max(chunk) * len(chunk)
    raw = max(1.0, paced / total)
    return 1.0 + (raw - 1.0) * DIVERGENCE_EXPOSURE


def occupancy(threads: int, saturation_threads: int) -> float:
    """Fraction of the device kept busy by a batch of ``threads`` lookups.

    Below the saturation point the device is underutilised and the effective
    throughput scales down linearly (Figure 15); above it, adding more
    lookups does not make each one cheaper.
    """
    if threads <= 0:
        return 0.0
    if saturation_threads <= 0:
        return 1.0
    return min(1.0, threads / float(saturation_threads))
