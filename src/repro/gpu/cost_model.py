"""Analytical cost model converting kernel work into simulated GPU time.

The model is intentionally simple and transparent:

* global-memory time   = effective bytes / memory bandwidth,
* RT-core time         = node tests / node throughput + triangle tests /
  triangle throughput,
* compute time         = operations / compute throughput,
* the kernel time is the *maximum* of the three (the bottleneck resource),
  multiplied by the divergence factor, divided by the occupancy implied by the
  batch size, plus a fixed launch overhead per kernel.

Cache effects (which is what makes skewed lookups faster, Figure 17) are
modelled by discounting the fraction of memory traffic that hits in L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.simt import occupancy

#: Cached bytes are not free: they still occupy L2 bandwidth.  This constant
#: is the relative cost of an L2 hit compared to a DRAM access.
L2_HIT_RELATIVE_COST = 0.15

#: Residual DRAM traffic per BVH-node visit.  RT cores traverse a compressed
#: BVH through their own caches, so only a fraction of the node shows up as
#: global-memory traffic; the traversal itself is charged to the RT resource.
RT_NODE_RESIDUAL_BYTES = 8

#: Residual DRAM traffic per ray/triangle intersection test.
RT_TRIANGLE_RESIDUAL_BYTES = 12

#: Effective DRAM traffic of an uncoalesced random access (binary-search
#: probe, hash probe).  Scattered accesses fetch a full L2 cache line and pay
#: DRAM overfetch, so the effective cost is far above the few bytes actually
#: consumed; 128 bytes per probe matches the line granularity of the target
#: GPUs and is what makes pointer-chasing structures (binary search over a
#: huge array, long probe chains) expensive relative to RT-core traversals.
UNCOALESCED_ACCESS_BYTES = 128

#: Time (in multiples of a DRAM access) a fully divergent warp wastes per
#: synchronisation point; folded into the divergence multiplier by callers.
MIN_OCCUPANCY = 1.0 / 4096.0


@dataclass
class CostBreakdown:
    """Per-resource timing of a kernel, in milliseconds."""

    memory_ms: float = 0.0
    rt_ms: float = 0.0
    compute_ms: float = 0.0
    launch_ms: float = 0.0
    total_ms: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Name of the dominating resource."""
        candidates = {
            "memory": self.memory_ms,
            "rt": self.rt_ms,
            "compute": self.compute_ms,
        }
        return max(candidates, key=candidates.get)


class CostModel:
    """Converts :class:`KernelStats` into simulated milliseconds for a device."""

    def __init__(self, device: GpuDevice = RTX_4090) -> None:
        self.device = device

    def breakdown(self, stats: KernelStats) -> CostBreakdown:
        """Detailed per-resource timing for one kernel record."""
        device = self.device

        cache_hit = min(max(stats.cache_hit_fraction, 0.0), 1.0)
        effective_bytes = stats.total_bytes * (
            (1.0 - cache_hit) + cache_hit * L2_HIT_RELATIVE_COST
        )
        memory_seconds = effective_bytes / device.memory_bandwidth

        rt_seconds = (
            stats.bvh_node_visits / device.rt_node_tests_per_second
            + stats.triangle_tests / device.rt_triangle_tests_per_second
        )
        compute_seconds = stats.compute_ops / device.compute_ops_per_second

        utilisation = max(occupancy(stats.threads, device.saturation_threads), MIN_OCCUPANCY)
        divergence = max(stats.divergence, 1.0)

        bottleneck_seconds = max(memory_seconds, rt_seconds, compute_seconds)
        busy_seconds = bottleneck_seconds * divergence / utilisation
        launch_ms = device.kernel_launch_overhead_ms * max(stats.launches, 1)
        total_ms = busy_seconds * 1e3 + launch_ms

        return CostBreakdown(
            memory_ms=memory_seconds * 1e3,
            rt_ms=rt_seconds * 1e3,
            compute_ms=compute_seconds * 1e3,
            launch_ms=launch_ms,
            total_ms=total_ms,
        )

    def kernel_time_ms(self, stats: KernelStats) -> float:
        """Simulated wall-clock time of one kernel record in milliseconds."""
        return self.breakdown(stats).total_ms

    def total_time_ms(self, parts: Iterable[KernelStats]) -> float:
        """Sum of the simulated times of several sequential kernels."""
        return sum(self.kernel_time_ms(part) for part in parts)

    def throughput_per_second(self, stats: KernelStats, operations: int) -> float:
        """Operations (e.g. lookups) per second implied by a kernel record."""
        time_ms = self.kernel_time_ms(stats)
        if time_ms <= 0.0:
            return float("inf")
        return operations / (time_ms / 1e3)

    def cache_hit_fraction(self, working_set_bytes: int, unique_fraction: float = 1.0) -> float:
        """Estimate the L2 hit fraction for a batch touching ``working_set_bytes``.

        ``unique_fraction`` expresses lookup skew: a Zipf-skewed batch touches
        only a fraction of the distinct entries a uniform batch would, so its
        effective working set shrinks and more of it stays cache-resident.
        """
        unique_fraction = min(max(unique_fraction, 0.0), 1.0)
        effective = max(working_set_bytes * unique_fraction, 1.0)
        resident = min(1.0, self.device.l2_cache_bytes / effective)
        # Even a fully resident working set pays for the cold first access.
        return max(0.0, min(0.95, resident * 0.95))
