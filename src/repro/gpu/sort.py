"""Device radix sort (software stand-in for CUB's ``DeviceRadixSort``).

cgRX, SA and B+ all sort the input key-rowID array during bulk loading, and
the paper always includes the sort cost in the reported build times.  The
sort here produces the sorted arrays with numpy and, in parallel, a
:class:`~repro.gpu.kernels.KernelStats` record describing what an LSD radix
sort of that size would have cost the device.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.kernels import KernelStats

#: Bits consumed per radix pass (CUB uses 8 by default on these key widths).
RADIX_BITS_PER_PASS = 8


def radix_sort_stats(
    num_items: int, key_bytes: int, value_bytes: int = 4, name: str = "device_radix_sort"
) -> KernelStats:
    """Work a device LSD radix sort performs for ``num_items`` key-value pairs.

    Each pass reads and writes every key and value once; the number of passes
    follows from the key width.
    """
    num_items = int(num_items)
    key_bits = key_bytes * 8
    passes = max(1, (key_bits + RADIX_BITS_PER_PASS - 1) // RADIX_BITS_PER_PASS)
    bytes_per_pass = num_items * (key_bytes + value_bytes)
    return KernelStats(
        name=name,
        threads=num_items,
        bytes_read=passes * bytes_per_pass,
        bytes_written=passes * bytes_per_pass,
        compute_ops=passes * num_items * 4,
        launches=passes,
    )


def device_radix_sort(
    keys: np.ndarray, values: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
    """Sort ``keys`` (and optionally reorder ``values`` alongside them).

    Returns ``(sorted_keys, sorted_values, stats)``.  The sort is stable, like
    CUB's radix sort, so duplicate keys keep their original relative order.
    """
    keys = np.asarray(keys)
    if values is not None:
        values = np.asarray(values)
        if values.shape[0] != keys.shape[0]:
            raise ValueError("keys and values must have the same length")

    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order] if values is not None else None

    value_bytes = int(values.dtype.itemsize) if values is not None else 0
    stats = radix_sort_stats(
        num_items=keys.shape[0],
        key_bytes=int(keys.dtype.itemsize),
        value_bytes=value_bytes,
    )
    return sorted_keys, sorted_values, stats
