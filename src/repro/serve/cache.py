"""LRU result cache with a negative-entry side and hit/miss accounting.

Served point lookups are heavily skewed (Zipfian client arrivals), so a small
host-side cache in front of the device absorbs a large fraction of the
traffic.  The cache stores the *aggregated* lookup answer per key — the same
``(rowID aggregate, match count)`` pair a :class:`~repro.baselines.base.LookupResult`
carries — and it also caches misses ("negative entries"): a key that is known
not to be indexed is answered without touching the device at all, which is
exactly the out-of-range/miss traffic Figure 16 of the paper shows to be the
cheapest to answer.

Invalidation is exact-key: an entry (positive or negative) is only stale if
its own key was inserted or deleted, so update batches drop exactly those
entries.  Blanket trimming of negative entries (when they crowd out positive
hits) is a hygiene task of the maintenance worker, not a correctness need.

Multi-tenant deployments can carve the capacity into **per-tenant
partitions** (``partitions={tenant_id: share}``): each partition runs its own
LRU list under its own capacity slice, so one tenant's flood cannot evict
another tenant's working set.  Traffic without a tenant label (and tenants
without a reserved share) lands in the shared default partition.
Invalidation stays exact-key *across all partitions* — a write makes every
tenant's cached copy of that key stale.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of a :class:`ResultCache`."""

    #: Lookups answered from a positive (hit) entry.
    hits: int = 0
    #: Lookups answered from a negative (known-miss) entry.
    negative_hits: int = 0
    #: Lookups that had to go to the device.
    misses: int = 0
    #: Entries dropped by the LRU policy.
    evictions: int = 0
    #: Entries dropped by update invalidation (exact-key or negative-trim).
    invalidations: int = 0
    #: Entries dropped by whole-cache clears (rebuild swaps, resharding).
    #: Accounted separately from invalidations so the cache panel stays
    #: attributable during maintenance windows.
    bulk_clears: int = 0
    #: Entries written into the cache.
    insertions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.negative_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (positive or negative)."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.negative_hits) / self.requests

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "negative_hits": self.negative_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bulk_clears": self.bulk_clears,
            "insertions": self.insertions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    """One cached answer: aggregate rowID and match count (0 == negative)."""

    row_agg: int
    match_count: int


class _Partition:
    """One LRU list with its own capacity slice."""

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.entries: "OrderedDict[int, _Entry]" = OrderedDict()


class ResultCache:
    """Bounded LRU cache of per-key point-lookup answers.

    ``capacity`` bounds the number of resident entries; positive and negative
    entries share the same LRU list (a hot miss is as worth caching as a hot
    hit).  Lookups move entries to the MRU position.

    ``partitions`` optionally reserves a fraction of the capacity per tenant
    (``{tenant_id: share}``, shares in ``(0, 1]`` summing to at most 1); the
    remainder backs the shared default partition.  Without partitions the
    cache is a single shared LRU — byte-identical to the pre-tenant behavior.
    """

    def __init__(
        self,
        capacity: int,
        partitions: Optional[Dict[int, float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._parts: "Dict[Optional[int], _Partition]" = {}
        if partitions:
            total_share = float(sum(partitions.values()))
            if total_share > 1.0 + 1e-9:
                raise ValueError("tenant cache shares must sum to <= 1")
            reserved = 0
            for tenant, share in sorted(partitions.items()):
                if share <= 0:
                    raise ValueError("tenant cache shares must be > 0")
                slice_capacity = max(1, int(self.capacity * float(share)))
                self._parts[int(tenant)] = _Partition(slice_capacity)
                reserved += slice_capacity
            shared = max(1, self.capacity - reserved)
        else:
            shared = self.capacity
        self._parts[None] = _Partition(shared)
        self.stats = CacheStats()

    def _partition(self, tenant: Optional[int]) -> _Partition:
        if tenant is None:
            return self._parts[None]
        return self._parts.get(int(tenant), self._parts[None])

    @property
    def tenant_ids(self) -> Tuple[int, ...]:
        """Tenants with a reserved partition (shared partition excluded)."""
        return tuple(sorted(t for t in self._parts if t is not None))

    def partition_sizes(self) -> Dict[Optional[int], int]:
        """Resident entry count per partition (``None`` = shared)."""
        return {tenant: len(part.entries) for tenant, part in self._parts.items()}

    def __len__(self) -> int:
        return sum(len(part.entries) for part in self._parts.values())

    def __contains__(self, key: int) -> bool:
        key = int(key)
        return any(key in part.entries for part in self._parts.values())

    @property
    def negative_count(self) -> int:
        """Number of resident negative (known-miss) entries."""
        return sum(
            1
            for part in self._parts.values()
            for entry in part.entries.values()
            if entry.match_count == 0
        )

    @property
    def negative_fraction(self) -> float:
        """Fraction of the resident entries that are negative."""
        resident = len(self)
        if not resident:
            return 0.0
        return self.negative_count / resident

    # ----------------------------------------------------------------- lookup

    def get(self, key: int, tenant: Optional[int] = None) -> Optional[_Entry]:
        """Cached answer for ``key``, updating LRU order and accounting.

        Lookups only see the requesting tenant's partition (or the shared
        one): isolation means a tenant can neither evict nor observe another
        tenant's entries.
        """
        key = int(key)
        part = self._partition(tenant)
        entry = part.entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        part.entries.move_to_end(key)
        if entry.match_count > 0:
            self.stats.hits += 1
        else:
            self.stats.negative_hits += 1
        return entry

    def probe_batch(
        self, keys: np.ndarray, tenants: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Probe a whole lookup batch.

        Returns ``(cached_mask, row_agg, match_counts)``: positions with
        ``cached_mask`` set carry their answer in the other two arrays, the
        rest must be served by the index.  ``tenants`` (when given) selects
        the partition probed per position.
        """
        num = int(keys.shape[0])
        cached = np.zeros(num, dtype=bool)
        row_agg = np.full(num, -1, dtype=np.int64)
        counts = np.zeros(num, dtype=np.int64)
        for position, key in enumerate(keys):
            tenant = int(tenants[position]) if tenants is not None else None
            entry = self.get(int(key), tenant=tenant)
            if entry is not None:
                cached[position] = True
                row_agg[position] = entry.row_agg
                counts[position] = entry.match_count
        return cached, row_agg, counts

    # ------------------------------------------------------------------ store

    def put(
        self,
        key: int,
        row_agg: int,
        match_count: int,
        tenant: Optional[int] = None,
    ) -> None:
        """Insert or refresh an answer (``match_count == 0`` caches a miss)."""
        key = int(key)
        part = self._partition(tenant)
        if key in part.entries:
            part.entries.move_to_end(key)
            part.entries[key] = _Entry(int(row_agg), int(match_count))
            return
        part.entries[key] = _Entry(int(row_agg), int(match_count))
        self.stats.insertions += 1
        if len(part.entries) > part.capacity:
            part.entries.popitem(last=False)
            self.stats.evictions += 1

    def fill_batch(
        self,
        keys: np.ndarray,
        row_agg: np.ndarray,
        match_counts: np.ndarray,
        tenants: Optional[np.ndarray] = None,
    ) -> None:
        """Cache the answers of a served sub-batch."""
        for position, (key, agg, count) in enumerate(zip(keys, row_agg, match_counts)):
            tenant = int(tenants[position]) if tenants is not None else None
            self.put(int(key), int(agg), int(count), tenant=tenant)

    # ------------------------------------------------------------- invalidate

    def invalidate_keys(self, keys: np.ndarray) -> int:
        """Drop the entries of explicitly updated keys; returns the count dropped.

        Drops across *all* partitions: a write makes every tenant's cached
        copy of the key stale.
        """
        dropped = 0
        for key in keys:
            key = int(key)
            for part in self._parts.values():
                if part.entries.pop(key, None) is not None:
                    dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate_negative(self) -> int:
        """Drop every negative entry (inserts can turn any miss into a hit)."""
        dropped = 0
        for part in self._parts.values():
            stale = [
                key for key, entry in part.entries.items() if entry.match_count == 0
            ]
            for key in stale:
                del part.entries[key]
            dropped += len(stale)
        self.stats.invalidations += dropped
        return dropped

    def clear(self) -> int:
        """Drop every entry (all partitions); returns the count dropped.

        Accounted as ``bulk_clears``, not ``invalidations``: a rebuild swap
        dropping the whole cache is a maintenance event, and folding it into
        the exact-key invalidation counter would make update churn look far
        larger than it is.
        """
        dropped = len(self)
        for part in self._parts.values():
            part.entries.clear()
        self.stats.bulk_clears += dropped
        return dropped

    # -------------------------------------------------------------- telemetry

    def publish_telemetry(self, telemetry) -> None:
        """Publish the cache's counters into a labeled telemetry registry.

        Gauges (last-write-wins) rather than counters: the deployment calls
        this at stream boundaries and sample points, so re-publishing the
        same cumulative totals never double-counts.
        """
        for stat, value in self.stats.snapshot().items():
            telemetry.gauge("serve_cache", stat=stat).set(value)
        telemetry.gauge("serve_cache", stat="entries").set(len(self))
        telemetry.gauge("serve_cache", stat="negative_entries").set(
            self.negative_count
        )
        if len(self._parts) > 1:
            for tenant, size in self.partition_sizes().items():
                label = "shared" if tenant is None else str(tenant)
                telemetry.gauge(
                    "serve_cache_partition_entries", tenant=label
                ).set(size)
