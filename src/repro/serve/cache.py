"""LRU result cache with a negative-entry side and hit/miss accounting.

Served point lookups are heavily skewed (Zipfian client arrivals), so a small
host-side cache in front of the device absorbs a large fraction of the
traffic.  The cache stores the *aggregated* lookup answer per key — the same
``(rowID aggregate, match count)`` pair a :class:`~repro.baselines.base.LookupResult`
carries — and it also caches misses ("negative entries"): a key that is known
not to be indexed is answered without touching the device at all, which is
exactly the out-of-range/miss traffic Figure 16 of the paper shows to be the
cheapest to answer.

Invalidation is exact-key: an entry (positive or negative) is only stale if
its own key was inserted or deleted, so update batches drop exactly those
entries.  Blanket trimming of negative entries (when they crowd out positive
hits) is a hygiene task of the maintenance worker, not a correctness need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of a :class:`ResultCache`."""

    #: Lookups answered from a positive (hit) entry.
    hits: int = 0
    #: Lookups answered from a negative (known-miss) entry.
    negative_hits: int = 0
    #: Lookups that had to go to the device.
    misses: int = 0
    #: Entries dropped by the LRU policy.
    evictions: int = 0
    #: Entries dropped by update invalidation.
    invalidations: int = 0
    #: Entries written into the cache.
    insertions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.negative_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (positive or negative)."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.negative_hits) / self.requests

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "negative_hits": self.negative_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "insertions": self.insertions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    """One cached answer: aggregate rowID and match count (0 == negative)."""

    row_agg: int
    match_count: int


class ResultCache:
    """Bounded LRU cache of per-key point-lookup answers.

    ``capacity`` bounds the number of resident entries; positive and negative
    entries share the same LRU list (a hot miss is as worth caching as a hot
    hit).  Lookups move entries to the MRU position.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._entries

    @property
    def negative_count(self) -> int:
        """Number of resident negative (known-miss) entries."""
        return sum(1 for entry in self._entries.values() if entry.match_count == 0)

    @property
    def negative_fraction(self) -> float:
        """Fraction of the resident entries that are negative."""
        if not self._entries:
            return 0.0
        return self.negative_count / len(self._entries)

    # ----------------------------------------------------------------- lookup

    def get(self, key: int) -> Optional[_Entry]:
        """Cached answer for ``key``, updating LRU order and accounting."""
        key = int(key)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        if entry.match_count > 0:
            self.stats.hits += 1
        else:
            self.stats.negative_hits += 1
        return entry

    def probe_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Probe a whole lookup batch.

        Returns ``(cached_mask, row_agg, match_counts)``: positions with
        ``cached_mask`` set carry their answer in the other two arrays, the
        rest must be served by the index.
        """
        num = int(keys.shape[0])
        cached = np.zeros(num, dtype=bool)
        row_agg = np.full(num, -1, dtype=np.int64)
        counts = np.zeros(num, dtype=np.int64)
        for position, key in enumerate(keys):
            entry = self.get(int(key))
            if entry is not None:
                cached[position] = True
                row_agg[position] = entry.row_agg
                counts[position] = entry.match_count
        return cached, row_agg, counts

    # ------------------------------------------------------------------ store

    def put(self, key: int, row_agg: int, match_count: int) -> None:
        """Insert or refresh an answer (``match_count == 0`` caches a miss)."""
        key = int(key)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = _Entry(int(row_agg), int(match_count))
            return
        self._entries[key] = _Entry(int(row_agg), int(match_count))
        self.stats.insertions += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def fill_batch(self, keys: np.ndarray, row_agg: np.ndarray, match_counts: np.ndarray) -> None:
        """Cache the answers of a served sub-batch."""
        for key, agg, count in zip(keys, row_agg, match_counts):
            self.put(int(key), int(agg), int(count))

    # ------------------------------------------------------------- invalidate

    def invalidate_keys(self, keys: np.ndarray) -> int:
        """Drop the entries of explicitly updated keys; returns the count dropped."""
        dropped = 0
        for key in keys:
            if self._entries.pop(int(key), None) is not None:
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate_negative(self) -> int:
        """Drop every negative entry (inserts can turn any miss into a hit)."""
        stale = [key for key, entry in self._entries.items() if entry.match_count == 0]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    # -------------------------------------------------------------- telemetry

    def publish_telemetry(self, telemetry) -> None:
        """Publish the cache's counters into a labeled telemetry registry.

        Gauges (last-write-wins) rather than counters: the deployment calls
        this at stream boundaries and sample points, so re-publishing the
        same cumulative totals never double-counts.
        """
        for stat, value in self.stats.snapshot().items():
            telemetry.gauge("serve_cache", stat=stat).set(value)
        telemetry.gauge("serve_cache", stat="entries").set(len(self))
        telemetry.gauge("serve_cache", stat="negative_entries").set(
            self.negative_count
        )
