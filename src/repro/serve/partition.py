"""Key-space partitioning for the sharded deployment.

A :class:`Partitioner` maps every key to the shard responsible for it.  Two
strategies are provided:

* :class:`RangePartitioner` splits the *observed* key distribution into
  contiguous, equally populated key ranges (one ``searchsorted`` against the
  boundary array per lookup).  Range queries touch only the shards whose
  ranges overlap the query interval, so scatter/gather stays narrow.
* :class:`HashPartitioner` spreads keys with a Fibonacci multiplicative hash.
  Load balance is immune to key skew, but every range query has to be
  scattered to all shards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Knuth's multiplicative constant (golden-ratio reciprocal in 64 bits).
_FIBONACCI_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


class Partitioner(ABC):
    """Maps keys (and key ranges) of an index deployment onto shards."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        #: Optional telemetry counter (keys routed); the serving deployment
        #: binds a labeled `repro.obs` counter here.  ``None`` keeps routing
        #: observability-free at the cost of one attribute test per batch.
        self.route_counter = None

    def _count_routed(self, num_keys: int) -> None:
        if self.route_counter is not None:
            self.route_counter.inc(int(num_keys))

    @abstractmethod
    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        """Shard id responsible for every key of the batch."""

    @abstractmethod
    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        """Shard ids a range lookup ``[low, high]`` has to be scattered to."""

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Inclusive ``(first, last)`` shard span per range query, vectorized.

        Every partitioner scatters a range to a contiguous shard interval
        (range partitioning by construction, hash partitioning to all
        shards), so a batched scatter only needs the two boundary arrays.
        The base implementation loops :meth:`shards_for_range`.
        """
        first = np.empty(lows.shape[0], dtype=np.int64)
        last = np.empty(lows.shape[0], dtype=np.int64)
        for position in range(lows.shape[0]):
            shards = self.shards_for_range(int(lows[position]), int(highs[position]))
            if shards.size:
                first[position] = shards[0]
                last[position] = shards[-1]
            else:
                # Touches no shards: an empty span (first > last) so the
                # membership test excludes every shard, like the scalar path.
                first[position] = 1
                last[position] = 0
        return first, last

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short identifier (``"range"`` or ``"hash"``) used in reports."""

    def routing_compute_ops(self, num_keys: int) -> int:
        """Simulated per-batch routing cost (address arithmetic / comparisons)."""
        return int(num_keys)


class RangePartitioner(Partitioner):
    """Contiguous key ranges with equi-depth boundaries from the loaded keys."""

    kind = "range"

    def __init__(self, keys: np.ndarray, num_shards: int) -> None:
        super().__init__(num_shards)
        keys = np.asarray(keys)
        if keys.size < num_shards:
            raise ValueError(
                f"cannot range-partition {keys.size} keys into {num_shards} shards"
            )
        sorted_keys = np.sort(keys.astype(np.uint64))
        # Equi-depth split points: shard s serves keys < boundaries[s] (and
        # >= boundaries[s-1]); the last shard additionally serves everything
        # beyond the largest bulk-loaded key.
        positions = (np.arange(1, num_shards) * keys.size) // num_shards
        #: Exclusive upper boundary of shards 0..num_shards-2.
        self.boundaries = sorted_keys[positions]

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys).astype(np.uint64)
        self._count_routed(keys.shape[0])
        return np.searchsorted(self.boundaries, keys, side="right").astype(np.int64)

    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        first = int(np.searchsorted(self.boundaries, np.uint64(low), side="right"))
        last = int(np.searchsorted(self.boundaries, np.uint64(high), side="right"))
        return np.arange(first, last + 1, dtype=np.int64)

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        first = np.searchsorted(
            self.boundaries, np.asarray(lows).astype(np.uint64), side="right"
        ).astype(np.int64)
        last = np.searchsorted(
            self.boundaries, np.asarray(highs).astype(np.uint64), side="right"
        ).astype(np.int64)
        return first, last

    def routing_compute_ops(self, num_keys: int) -> int:
        # One binary search over the boundary array per key.
        return int(num_keys) * max(1, int(np.ceil(np.log2(self.num_shards + 1))))


class HashPartitioner(Partitioner):
    """Fibonacci-hash key spreading (skew-immune, but ranges hit every shard)."""

    kind = "hash"

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys).astype(np.uint64)
        self._count_routed(keys.shape[0])
        with np.errstate(over="ignore"):
            mixed = keys * _FIBONACCI_MULTIPLIER
        return ((mixed >> np.uint64(33)) % np.uint64(self.num_shards)).astype(np.int64)

    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        return np.arange(self.num_shards, dtype=np.int64)

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        num = np.asarray(lows).shape[0]
        return (
            np.zeros(num, dtype=np.int64),
            np.full(num, self.num_shards - 1, dtype=np.int64),
        )


def make_partitioner(kind: str, keys: np.ndarray, num_shards: int) -> Partitioner:
    """Build a partitioner by name (``"range"`` or ``"hash"``)."""
    if kind == "range":
        return RangePartitioner(keys, num_shards)
    if kind == "hash":
        return HashPartitioner(num_shards)
    raise ValueError(f"unknown partitioner {kind!r}; expected 'range' or 'hash'")
