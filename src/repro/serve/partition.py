"""Key-space partitioning for the sharded deployment.

A :class:`Partitioner` maps every key to the shard responsible for it.  Two
strategies are provided:

* :class:`RangePartitioner` splits the *observed* key distribution into
  contiguous, equally populated key ranges (one ``searchsorted`` against the
  boundary array per lookup).  Range queries touch only the shards whose
  ranges overlap the query interval, so scatter/gather stays narrow.
* :class:`HashPartitioner` spreads keys with a Fibonacci multiplicative hash.
  Load balance is immune to key skew, but every range query has to be
  scattered to all shards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Knuth's multiplicative constant (golden-ratio reciprocal in 64 bits).
_FIBONACCI_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def routing_keys(keys: np.ndarray) -> np.ndarray:
    """Map client keys into the deployment's unsigned routing keyspace.

    The stored keyspace is unsigned, so a negative (signed-dtype) client key
    sorts *below* every stored key.  A plain ``astype(np.uint64)`` would wrap
    it to the top of the keyspace instead and route it to the wrong shard
    relative to the index's order; clamping to zero keeps the routing order
    consistent (the request lands on the lowest shard, where it misses).
    Unsigned inputs pass through bit-identically.
    """
    keys = np.asarray(keys)
    if np.issubdtype(keys.dtype, np.signedinteger):
        return np.maximum(keys, 0).astype(np.uint64)
    return keys.astype(np.uint64)


def negative_key_mask(keys: np.ndarray) -> "np.ndarray | None":
    """Mask of out-of-domain (negative) keys; ``None`` for unsigned input."""
    keys = np.asarray(keys)
    if np.issubdtype(keys.dtype, np.signedinteger):
        mask = keys < 0
        return mask if bool(mask.any()) else None
    return None


class Partitioner(ABC):
    """Maps keys (and key ranges) of an index deployment onto shards."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        #: Optional telemetry counter (keys routed); the serving deployment
        #: binds a labeled `repro.obs` counter here.  ``None`` keeps routing
        #: observability-free at the cost of one attribute test per batch.
        self.route_counter = None

    def _count_routed(self, num_keys: int) -> None:
        if self.route_counter is not None:
            self.route_counter.inc(int(num_keys))

    @abstractmethod
    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        """Shard id responsible for every key of the batch."""

    @abstractmethod
    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        """Shard ids a range lookup ``[low, high]`` has to be scattered to."""

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Inclusive ``(first, last)`` shard span per range query, vectorized.

        Every partitioner scatters a range to a contiguous shard interval
        (range partitioning by construction, hash partitioning to all
        shards), so a batched scatter only needs the two boundary arrays.
        The base implementation loops :meth:`shards_for_range`.
        """
        first = np.empty(lows.shape[0], dtype=np.int64)
        last = np.empty(lows.shape[0], dtype=np.int64)
        for position in range(lows.shape[0]):
            shards = self.shards_for_range(int(lows[position]), int(highs[position]))
            if shards.size:
                first[position] = shards[0]
                last[position] = shards[-1]
            else:
                # Touches no shards: an empty span (first > last) so the
                # membership test excludes every shard, like the scalar path.
                first[position] = 1
                last[position] = 0
        return first, last

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short identifier (``"range"`` or ``"hash"``) used in reports."""

    def routing_compute_ops(self, num_keys: int) -> int:
        """Simulated per-batch routing cost (address arithmetic / comparisons)."""
        return int(num_keys)

    @property
    def supports_resharding(self) -> bool:
        """Whether the shard topology can be changed in place (split/merge)."""
        return False

    def split_at(self, shard_id: int, split_key: int) -> None:
        """Split ``shard_id`` at ``split_key`` (new shard count = old + 1)."""
        raise NotImplementedError(f"{self.kind} partitioner cannot split shards")

    def merge_with_next(self, shard_id: int) -> None:
        """Merge ``shard_id`` with ``shard_id + 1`` (new count = old - 1)."""
        raise NotImplementedError(f"{self.kind} partitioner cannot merge shards")


class RangePartitioner(Partitioner):
    """Contiguous key ranges with equi-depth boundaries from the loaded keys."""

    kind = "range"

    def __init__(self, keys: np.ndarray, num_shards: int) -> None:
        super().__init__(num_shards)
        keys = np.asarray(keys)
        if keys.size < num_shards:
            raise ValueError(
                f"cannot range-partition {keys.size} keys into {num_shards} shards"
            )
        sorted_keys = np.sort(routing_keys(keys))
        # Equi-depth split points: shard s serves keys < boundaries[s] (and
        # >= boundaries[s-1]); the last shard additionally serves everything
        # beyond the largest bulk-loaded key.
        positions = (np.arange(1, num_shards) * keys.size) // num_shards
        #: Exclusive upper boundary of shards 0..num_shards-2.
        self.boundaries = sorted_keys[positions]

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        keys = routing_keys(keys)
        self._count_routed(keys.shape[0])
        return np.searchsorted(self.boundaries, keys, side="right").astype(np.int64)

    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        if high < low:
            return np.arange(0, dtype=np.int64)
        # Negative endpoints sort below the unsigned keyspace: an entirely
        # negative range touches nothing, a straddling range clamps to key 0.
        if high < 0:
            return np.arange(0, dtype=np.int64)
        low = max(int(low), 0)
        first = int(np.searchsorted(self.boundaries, np.uint64(low), side="right"))
        last = int(np.searchsorted(self.boundaries, np.uint64(high), side="right"))
        return np.arange(first, last + 1, dtype=np.int64)

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        lows = np.asarray(lows)
        highs = np.asarray(highs)
        empty = negative_key_mask(highs)
        first = np.searchsorted(
            self.boundaries, routing_keys(lows), side="right"
        ).astype(np.int64)
        last = np.searchsorted(
            self.boundaries, routing_keys(highs), side="right"
        ).astype(np.int64)
        if empty is not None:
            # Entirely-negative ranges touch no shard: empty span (first > last).
            first[empty] = 1
            last[empty] = 0
        return first, last

    def routing_compute_ops(self, num_keys: int) -> int:
        # One binary search over the boundary array per key.
        return int(num_keys) * max(1, int(np.ceil(np.log2(self.num_shards + 1))))

    @property
    def supports_resharding(self) -> bool:
        return True

    def split_at(self, shard_id: int, split_key: int) -> None:
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard {shard_id} out of range")
        split_key = np.uint64(max(int(split_key), 0))
        lower = self.boundaries[shard_id - 1] if shard_id > 0 else None
        upper = (
            self.boundaries[shard_id] if shard_id < self.num_shards - 1 else None
        )
        if lower is not None and split_key <= lower:
            raise ValueError("split key must lie inside the shard's range")
        if upper is not None and split_key >= upper:
            raise ValueError("split key must lie inside the shard's range")
        self.boundaries = np.insert(self.boundaries, shard_id, split_key)
        self.num_shards += 1

    def merge_with_next(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.num_shards - 1:
            raise ValueError(f"shard {shard_id} has no right neighbour to merge")
        self.boundaries = np.delete(self.boundaries, shard_id)
        self.num_shards -= 1


class HashPartitioner(Partitioner):
    """Fibonacci-hash key spreading (skew-immune, but ranges hit every shard)."""

    kind = "hash"

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        keys = routing_keys(keys)
        self._count_routed(keys.shape[0])
        with np.errstate(over="ignore"):
            mixed = keys * _FIBONACCI_MULTIPLIER
        return ((mixed >> np.uint64(33)) % np.uint64(self.num_shards)).astype(np.int64)

    def shards_for_range(self, low: int, high: int) -> np.ndarray:
        if high < low or high < 0:
            return np.arange(0, dtype=np.int64)
        return np.arange(self.num_shards, dtype=np.int64)

    def shard_span_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        num = np.asarray(lows).shape[0]
        first = np.zeros(num, dtype=np.int64)
        last = np.full(num, self.num_shards - 1, dtype=np.int64)
        empty = negative_key_mask(np.asarray(highs))
        if empty is not None:
            first[empty] = 1
            last[empty] = 0
        return first, last


def make_partitioner(kind: str, keys: np.ndarray, num_shards: int) -> Partitioner:
    """Build a partitioner by name (``"range"`` or ``"hash"``)."""
    if kind == "range":
        return RangePartitioner(keys, num_shards)
    if kind == "hash":
        return HashPartitioner(num_shards)
    raise ValueError(f"unknown partitioner {kind!r}; expected 'range' or 'hash'")
