"""Background shard maintenance: queueable tasks with idempotent completion.

Long-running deployments of the updatable index degrade: every insert wave
grows cgRXu's node chains, and once buckets are several nodes deep each
lookup pays the extra chain hops (Section IV of the paper keeps lookups fast
precisely because the BVH is never refit — the chains are where the debt
accumulates).  The maintenance worker periodically scans the shards, queues a
rebuild task for every shard whose degradation score crossed the threshold,
and executes the queue *off the request path*: maintenance device time is
accounted separately from foreground lookup time.

The task model follows the taskqueue idiom: tasks are plain functions marked
``@queueable``, every task re-checks its precondition when it runs (a shard
healed by an earlier task completes as a no-op, so duplicate enqueues are
harmless), and failures are captured on the task record instead of being
raised into the serving loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.gpu.kernels import KernelStats

#: Registry of queueable maintenance task functions, keyed by name.
QUEUEABLE_TASKS: Dict[str, Callable] = {}


def queueable(fn: Callable) -> Callable:
    """Register a function as an enqueueable maintenance task."""
    QUEUEABLE_TASKS[fn.__name__] = fn
    fn.queueable = True
    return fn


@dataclass
class MaintenanceTask:
    """One queued unit of background work."""

    #: Name of a registered queueable function.
    name: str
    shard_id: int
    enqueued_at_ms: float
    status: str = "pending"  # pending | done | skipped | failed
    attempts: int = 0
    #: Captured error message of a failed attempt.
    error: Optional[str] = None
    completed_at_ms: Optional[float] = None
    #: Device work the task performed (None for no-op completions).
    work: Optional[KernelStats] = None


@dataclass
class MaintenancePolicy:
    """When shards are considered degraded and how eagerly they are healed."""

    #: Rebuild a shard once its degradation score reaches this value.  The
    #: score of cgRXu is the mean number of *extra* chain nodes per bucket, so
    #: 0.5 means "half the buckets grew a second node on average".
    rebuild_threshold: float = 0.5
    #: Trim the result cache once this fraction of its entries is negative
    #: (negative entries crowd out the positive hits the cache exists for).
    negative_trim_fraction: float = 0.5
    #: Give up on a task after this many failed attempts.
    max_attempts: int = 3


class MaintenanceQueue:
    """FIFO of maintenance tasks with pending-duplicate suppression."""

    def __init__(self) -> None:
        self.tasks: List[MaintenanceTask] = []

    def enqueue(self, name: str, shard_id: int, now_ms: float) -> Optional[MaintenanceTask]:
        """Queue a task unless the same (name, shard) is already pending."""
        if name not in QUEUEABLE_TASKS:
            raise KeyError(f"{name!r} is not a registered queueable task")
        for task in self.tasks:
            if task.status == "pending" and task.name == name and task.shard_id == shard_id:
                return None
        task = MaintenanceTask(name=name, shard_id=int(shard_id), enqueued_at_ms=float(now_ms))
        self.tasks.append(task)
        return task

    def pending(self) -> List[MaintenanceTask]:
        return [task for task in self.tasks if task.status == "pending"]

    def by_status(self, status: str) -> List[MaintenanceTask]:
        return [task for task in self.tasks if task.status == status]


# --------------------------------------------------------------------------
# Queueable task bodies
# --------------------------------------------------------------------------


@queueable
def rebuild_shard(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Rebuild a degraded shard from its authoritative arrays.

    Idempotent: if the shard is no longer degraded when the task runs (an
    earlier task already rebuilt it, or deletes shrank the chains), the task
    completes without doing any work.
    """
    if worker.degradation_of(task.shard_id) < worker.policy.rebuild_threshold:
        return None
    return worker.router.rebuild_shard(task.shard_id)


@queueable
def resync_replicas(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Catch up every recovering replica of one shard's replica group.

    Recovered processes re-enter the group in the ``RECOVERING`` state and
    may not serve reads until they replayed the apply log (or took a fresh
    snapshot); this task performs that catch-up off the request path.
    Idempotent: a shard whose replicas are all healthy (or that is not
    replicated at all) completes as a no-op.
    """
    shard = worker.router.shards[task.shard_id]
    group = shard.index
    recovering = getattr(group, "recovering_replicas", None)
    if not callable(recovering):
        return None
    replicas = recovering()
    if not replicas:
        return None
    parts = []
    for replica in replicas:
        # Count like rebuilds_performed: no-op completions excluded.  A warm
        # restart that missed no writes flips state without replay/rebuild.
        did_work = replica.applied_lsn != group.lsn or replica.index is None
        parts.append(group.resync(replica, worker.now_ms))
        if did_work:
            worker.resyncs_performed += 1
    from repro.gpu.kernels import combine

    return combine(f"serve.resync_shard_{task.shard_id}", parts)


@queueable
def trim_negative_cache(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Evict negative entries when they crowd out the positive ones.

    Idempotent: completes as a no-op if the negative fraction dropped back
    below the policy threshold before the task ran.
    """
    if worker.cache is None:
        return None
    if worker.cache.negative_fraction < worker.policy.negative_trim_fraction:
        return None
    worker.cache.invalidate_negative()
    # Host-side work only: report a zero-cost kernel so the task counts as done.
    return KernelStats(name="serve.cache_trim", launches=0)


class MaintenanceWorker:
    """Scans shards for degradation and drains the task queue off-path."""

    def __init__(
        self,
        router,
        policy: Optional[MaintenancePolicy] = None,
        cache=None,
    ) -> None:
        self.router = router
        self.policy = policy or MaintenancePolicy()
        self.cache = cache
        self.queue = MaintenanceQueue()
        #: Simulated device time spent on background maintenance.
        self.maintenance_time_ms: float = 0.0
        #: Number of rebuilds actually performed (no-op completions excluded).
        self.rebuilds_performed: int = 0
        #: Number of replica resyncs performed (replicated deployments).
        self.resyncs_performed: int = 0
        #: Simulated time of the cycle currently executing (for task bodies).
        self.now_ms: float = 0.0

    # ------------------------------------------------------------------- scan

    def degradation_of(self, shard_id: int) -> float:
        """Degradation score of one shard (0.0 for empty or healthy shards)."""
        shard = self.router.shards[int(shard_id)]
        if shard.index is None:
            return 0.0
        return float(shard.index.degradation_score())

    def scan(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """Enqueue rebuilds for degraded shards and a trim for a stale cache."""
        enqueued: List[MaintenanceTask] = []
        for shard in self.router.shards:
            if self.degradation_of(shard.shard_id) >= self.policy.rebuild_threshold:
                task = self.queue.enqueue("rebuild_shard", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
            recovering = getattr(shard.index, "recovering_replicas", None)
            if callable(recovering) and recovering():
                task = self.queue.enqueue("resync_replicas", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
        if (
            self.cache is not None
            and len(self.cache) > 0
            and self.cache.negative_fraction >= self.policy.negative_trim_fraction
        ):
            # The cache is deployment-wide, not per shard: use -1 as shard id.
            task = self.queue.enqueue("trim_negative_cache", -1, now_ms)
            if task is not None:
                enqueued.append(task)
        return enqueued

    # -------------------------------------------------------------------- run

    def run_pending(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """Execute every pending task, capturing failures on the task record."""
        executed: List[MaintenanceTask] = []
        self.now_ms = float(now_ms)
        for task in self.queue.pending():
            body = QUEUEABLE_TASKS[task.name]
            task.attempts += 1
            try:
                work = body(self, task)
            except Exception as error:  # captured, never raised into serving
                task.error = f"{type(error).__name__}: {error}"
                task.status = "failed" if task.attempts >= self.policy.max_attempts else "pending"
                continue
            if work is not None:
                task.work = work
                cost_ms = self._work_time_ms(task.shard_id, work)
                self.maintenance_time_ms += cost_ms
                if task.name == "rebuild_shard":
                    self.rebuilds_performed += 1
            task.status = "done" if task.work is not None else "skipped"
            task.completed_at_ms = float(now_ms)
            executed.append(task)
        return executed

    def run_cycle(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """One background iteration: scan, then drain the queue."""
        self.scan(now_ms)
        return self.run_pending(now_ms)

    def _work_time_ms(self, shard_id: int, work: KernelStats) -> float:
        if shard_id < 0:  # deployment-wide (host-side) task, no device time
            return 0.0
        shard = self.router.shards[int(shard_id)]
        if shard.index is None:
            return 0.0
        return shard.index.cost_model.kernel_time_ms(work)

    # ---------------------------------------------------------------- reports

    def snapshot(self) -> dict:
        return {
            "tasks_enqueued": len(self.queue.tasks),
            "tasks_done": len(self.queue.by_status("done")),
            "tasks_skipped": len(self.queue.by_status("skipped")),
            "tasks_failed": len(self.queue.by_status("failed")),
            "rebuilds_performed": self.rebuilds_performed,
            "resyncs_performed": self.resyncs_performed,
            "maintenance_time_ms": self.maintenance_time_ms,
        }
