"""Background shard maintenance: tiered, queueable tasks with idempotent completion.

Long-running deployments of the updatable index degrade: every insert wave
grows cgRXu's node chains, and once buckets are several nodes deep each
lookup pays the extra chain hops (Section IV of the paper keeps lookups fast
precisely because the BVH is never refit — the chains are where the debt
accumulates).  The maintenance worker periodically scans the shards and
heals the debt through an **escalating tier policy**, always off the request
path:

1. **compact** — fold the hottest-chained buckets of a mildly degraded
   shard back into minimal chains (``CgRXuIndex.compact_buckets``); where
   compaction moved representative geometry the index *refits* its BVH
   rather than rebuilding it,
2. **refit escalation** — a shard whose accumulated refits degraded the
   BVH's overlap quality past the configured ratio is promoted straight to
   a rebuild, and
3. **rebuild** — a heavily degraded shard is rebuilt from scratch; by
   default **double-buffered** (the replacement is built in the background
   and swapped in atomically, zero unavailability), optionally
   ``stop_the_world`` (the pre-lifecycle behaviour, whose offline window is
   recorded against availability).

Maintenance device time is accounted per tier, separately from foreground
lookup time.  The task model follows the taskqueue idiom: tasks are plain
functions marked ``@queueable``, every task re-checks its precondition when
it runs (a shard healed by an earlier task completes as a no-op, so
duplicate enqueues are harmless), and failures are captured on the task
record instead of being raised into the serving loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.gpu.kernels import KernelStats
from repro.obs.trace import NULL_TRACER

#: Registry of queueable maintenance task functions, keyed by name.
QUEUEABLE_TASKS: Dict[str, Callable] = {}


def queueable(fn: Callable) -> Callable:
    """Register a function as an enqueueable maintenance task."""
    QUEUEABLE_TASKS[fn.__name__] = fn
    fn.queueable = True
    return fn


@dataclass
class MaintenanceTask:
    """One queued unit of background work."""

    #: Name of a registered queueable function.
    name: str
    shard_id: int
    enqueued_at_ms: float
    status: str = "pending"  # pending | done | skipped | failed
    attempts: int = 0
    #: Captured error message of a failed attempt.
    error: Optional[str] = None
    completed_at_ms: Optional[float] = None
    #: Device work the task performed (None for no-op completions).
    work: Optional[KernelStats] = None


@dataclass
class MaintenancePolicy:
    """When shards are considered degraded and how eagerly they are healed."""

    #: Rebuild a shard once its degradation score reaches this value.  The
    #: score of cgRXu is the mean number of *extra* chain nodes per bucket, so
    #: 0.5 means "half the buckets grew a second node on average".
    rebuild_threshold: float = 0.5
    #: Compact a shard's hottest-chained buckets once its degradation
    #: reaches this value (the cheap first tier; set it at or above
    #: ``rebuild_threshold`` to disable incremental compaction).
    compact_threshold: float = 0.2
    #: Hottest-chained buckets folded per compaction task.
    compact_max_buckets: int = 64
    #: How full rebuilds swap in: ``"double_buffered"`` (background build
    #: plus atomic swap — zero unavailability, both generations briefly
    #: resident) or ``"stop_the_world"`` (shard offline during the build;
    #: the outage window is recorded on the metrics registry).
    rebuild_mode: str = "double_buffered"
    #: Trim the result cache once this fraction of its entries is negative
    #: (negative entries crowd out the positive hits the cache exists for).
    negative_trim_fraction: float = 0.5
    #: Take a durable checkpoint of a shard (and truncate its WAL) once this
    #: many WAL records accumulated behind the previous checkpoint.  Only
    #: active when the deployment has a store attached.
    checkpoint_wal_records: int = 32
    #: Give up on a task after this many failed attempts.
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.rebuild_mode not in ("double_buffered", "stop_the_world"):
            raise ValueError(
                f"unknown rebuild mode {self.rebuild_mode!r}; expected "
                "'double_buffered' or 'stop_the_world'"
            )
        if self.compact_max_buckets < 1:
            raise ValueError("compact_max_buckets must be >= 1")


@dataclass
class ReshardPolicy:
    """When the deployment splits hot shards and merges cold neighbours.

    Decisions are driven by the *observed request load* per shard over a
    rolling window (the same load-skew signal the metrics registry reports),
    not by stored entry counts: a hotspot migration leaves entry counts
    untouched while concentrating traffic on one shard.
    """

    #: Master switch; the serving loop only plans reshards when enabled.
    enabled: bool = False
    #: How often the serving loop re-evaluates the topology.
    interval_ms: float = 50.0
    #: Split the hottest shard once it serves more than this multiple of the
    #: mean per-shard load in the window.
    split_skew: float = 2.0
    #: Merge the coldest adjacent shard pair once its *combined* load drops
    #: below this fraction of the mean per-shard load.
    merge_fraction: float = 0.4
    #: Minimum window requests before any decision is made (noise floor).
    min_window_requests: int = 64
    #: Never split a shard storing fewer entries than this.
    min_split_entries: int = 128
    #: Topology bounds.
    max_shards: int = 64
    min_shards: int = 1

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be > 0")
        if self.split_skew <= 1.0:
            raise ValueError("split_skew must be > 1")
        if self.merge_fraction < 0.0:
            raise ValueError("merge_fraction must be >= 0")
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")


class MaintenanceQueue:
    """FIFO of maintenance tasks with pending-duplicate suppression."""

    def __init__(self) -> None:
        self.tasks: List[MaintenanceTask] = []

    def enqueue(self, name: str, shard_id: int, now_ms: float) -> Optional[MaintenanceTask]:
        """Queue a task unless the same (name, shard) is already pending."""
        if name not in QUEUEABLE_TASKS:
            raise KeyError(f"{name!r} is not a registered queueable task")
        for task in self.tasks:
            if task.status == "pending" and task.name == name and task.shard_id == shard_id:
                return None
        task = MaintenanceTask(name=name, shard_id=int(shard_id), enqueued_at_ms=float(now_ms))
        self.tasks.append(task)
        return task

    def pending(self) -> List[MaintenanceTask]:
        return [task for task in self.tasks if task.status == "pending"]

    def by_status(self, status: str) -> List[MaintenanceTask]:
        return [task for task in self.tasks if task.status == status]


# --------------------------------------------------------------------------
# Queueable task bodies
# --------------------------------------------------------------------------


@queueable
def compact_shard(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Tier 1: fold the hottest node chains of a mildly degraded shard.

    Incremental healing — per-bucket chain compaction plus a BVH refit when
    compaction re-anchored representatives.  Idempotent: a shard that
    healed below the compact threshold before the task ran (or whose index
    type has no chains) completes as a no-op.
    """
    if worker.degradation_of(task.shard_id) < worker.policy.compact_threshold:
        return None
    return worker.router.compact_shard(
        task.shard_id, worker.policy.compact_max_buckets
    )


@queueable
def rebuild_shard(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Tier 3: rebuild a heavily degraded shard from its authoritative arrays.

    Double-buffered by default: the replacement is built while the live
    index keeps serving, then swapped in atomically.  Idempotent: if the
    shard is no longer degraded (and its BVH quality no longer escalated)
    when the task runs, it completes without doing any work.
    """
    if worker.degradation_of(task.shard_id) < worker.policy.rebuild_threshold and not (
        worker.needs_bvh_rebuild(task.shard_id)
    ):
        return None
    return worker.router.rebuild_shard(task.shard_id, mode=worker.policy.rebuild_mode)


@queueable
def resync_replicas(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Catch up every recovering replica of one shard's replica group.

    Recovered processes re-enter the group in the ``RECOVERING`` state and
    may not serve reads until they replayed the apply log (or took a fresh
    snapshot); this task performs that catch-up off the request path.
    Idempotent: a shard whose replicas are all healthy (or that is not
    replicated at all) completes as a no-op.
    """
    shard = worker.router.shards[task.shard_id]
    group = shard.index
    recovering = getattr(group, "recovering_replicas", None)
    if not callable(recovering):
        return None
    replicas = recovering()
    if not replicas:
        return None
    parts = []
    for replica in replicas:
        # Count like rebuilds_performed: no-op completions excluded.  A warm
        # restart that missed no writes flips state without replay/rebuild.
        did_work = replica.applied_lsn != group.lsn or replica.index is None
        parts.append(group.resync(replica, worker.now_ms))
        if did_work:
            worker.resyncs_performed += 1
    from repro.gpu.kernels import combine

    return combine(f"serve.resync_shard_{task.shard_id}", parts)


@queueable
def trim_negative_cache(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Evict negative entries when they crowd out the positive ones.

    Idempotent: completes as a no-op if the negative fraction dropped back
    below the policy threshold before the task ran.
    """
    if worker.cache is None:
        return None
    if worker.cache.negative_fraction < worker.policy.negative_trim_fraction:
        return None
    worker.cache.invalidate_negative()
    # Host-side work only: report a zero-cost kernel so the task counts as done.
    return KernelStats(name="serve.cache_trim", launches=0)


@queueable
def checkpoint_shard(worker: "MaintenanceWorker", task: MaintenanceTask) -> Optional[KernelStats]:
    """Take a durable checkpoint of one shard and truncate its WAL behind it.

    The checkpoint captures the shard's authoritative entries at its current
    LSN — the same state the epoch snapshot lifecycle rebuilds from — so a
    later recovery replays only the records that arrived after it.
    Idempotent: completes as a no-op when no store is attached or the WAL
    backlog dropped back below the policy threshold before the task ran.
    """
    if worker.store is None:
        return None
    if worker.store.wal_backlog(task.shard_id) < worker.policy.checkpoint_wal_records:
        return None
    shard = worker.router.shards[task.shard_id]
    keys, row_ids, lsn, epoch = worker.store.shard_durable_state(shard)
    worker.store.checkpoint(task.shard_id, keys, row_ids, lsn, epoch)
    worker.checkpoints_performed += 1
    # Host/storage-side work only: a zero-launch kernel marks the task done.
    return KernelStats(name=f"serve.checkpoint_shard_{task.shard_id}", launches=0)


#: Maintenance tier a task's device time is accounted under.
TASK_TIERS: Dict[str, str] = {
    "compact_shard": "compact",
    "rebuild_shard": "rebuild",
    "resync_replicas": "resync",
    "trim_negative_cache": "cache",
    "checkpoint_shard": "checkpoint",
}


class MaintenanceWorker:
    """Scans shards for degradation and drains the task queue off-path."""

    def __init__(
        self,
        router,
        policy: Optional[MaintenancePolicy] = None,
        cache=None,
        metrics=None,
        reshard_policy: Optional[ReshardPolicy] = None,
    ) -> None:
        self.router = router
        self.policy = policy or MaintenancePolicy()
        self.reshard_policy = reshard_policy or ReshardPolicy()
        self.cache = cache
        #: Telemetry sink for maintenance windows and stop-the-world outages
        #: (the deployment points this at its active registry).
        self.metrics = metrics
        #: Span sink; the deployment points this at its tracer, so executed
        #: maintenance tasks appear as spans on their own trace lane.
        self.tracer = NULL_TRACER
        self.queue = MaintenanceQueue()
        #: Simulated device time spent on background maintenance.
        self.maintenance_time_ms: float = 0.0
        #: ... broken down per maintenance tier.
        self.tier_time_ms: Dict[str, float] = {}
        #: Number of rebuilds actually performed (no-op completions excluded).
        self.rebuilds_performed: int = 0
        #: Number of compaction passes actually performed.
        self.compactions_performed: int = 0
        #: Number of replica resyncs performed (replicated deployments).
        self.resyncs_performed: int = 0
        #: Number of committed shard splits / merges.
        self.splits_performed: int = 0
        self.merges_performed: int = 0
        #: Durable tier (:class:`repro.store.DeploymentStore`); when attached,
        #: the scan also queues checkpoint tasks against WAL backlog.
        self.store = None
        #: Number of durable checkpoints actually taken (no-ops excluded).
        self.checkpoints_performed: int = 0
        #: Simulated time of the cycle currently executing (for task bodies).
        self.now_ms: float = 0.0

    # ------------------------------------------------------------------- scan

    def degradation_of(self, shard_id: int) -> float:
        """Degradation score of one shard (0.0 for empty or healthy shards)."""
        shard = self.router.shards[int(shard_id)]
        if shard.index is None:
            return 0.0
        return float(shard.index.degradation_score())

    def needs_bvh_rebuild(self, shard_id: int) -> bool:
        """Refit escalation: the shard's BVH overlap quality crossed its limit.

        Incremental compaction heals chains with refits rather than BVH
        rebuilds; once the refit debt (tracked as overlap-area growth)
        passes the index's ``refit_escalation_ratio`` the shard is promoted
        straight to the rebuild tier.
        """
        index = self.router.shards[int(shard_id)].index
        ratio_of = getattr(index, "bvh_overlap_ratio", None)
        threshold = getattr(getattr(index, "config", None), "refit_escalation_ratio", None)
        if not callable(ratio_of) or threshold is None:
            return False
        return float(ratio_of()) > float(threshold)

    def scan(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """Enqueue tiered healing for degraded shards and a trim for a stale cache.

        Escalating policy per shard: heavy degradation (or escalated refit
        debt) queues a full rebuild; mild degradation queues incremental
        compaction of the hottest-chained buckets.
        """
        enqueued: List[MaintenanceTask] = []
        for shard in self.router.shards:
            degradation = self.degradation_of(shard.shard_id)
            if (
                degradation >= self.policy.rebuild_threshold
                or self.needs_bvh_rebuild(shard.shard_id)
            ):
                task = self.queue.enqueue("rebuild_shard", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
            elif degradation >= self.policy.compact_threshold:
                task = self.queue.enqueue("compact_shard", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
            recovering = getattr(shard.index, "recovering_replicas", None)
            if callable(recovering) and recovering():
                task = self.queue.enqueue("resync_replicas", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
            if (
                self.store is not None
                and self.store.wal_backlog(shard.shard_id)
                >= self.policy.checkpoint_wal_records
            ):
                task = self.queue.enqueue("checkpoint_shard", shard.shard_id, now_ms)
                if task is not None:
                    enqueued.append(task)
        if (
            self.cache is not None
            and len(self.cache) > 0
            and self.cache.negative_fraction >= self.policy.negative_trim_fraction
        ):
            # The cache is deployment-wide, not per shard: use -1 as shard id.
            task = self.queue.enqueue("trim_negative_cache", -1, now_ms)
            if task is not None:
                enqueued.append(task)
        return enqueued

    # -------------------------------------------------------------------- run

    def run_pending(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """Execute every pending task, capturing failures on the task record."""
        executed: List[MaintenanceTask] = []
        self.now_ms = float(now_ms)
        for task in self.queue.pending():
            body = QUEUEABLE_TASKS[task.name]
            task.attempts += 1
            try:
                work = body(self, task)
            except Exception as error:  # captured, never raised into serving
                task.error = f"{type(error).__name__}: {error}"
                task.status = "failed" if task.attempts >= self.policy.max_attempts else "pending"
                continue
            if work is not None:
                task.work = work
                cost_ms = self._work_time_ms(task.shard_id, work)
                self.maintenance_time_ms += cost_ms
                tier = TASK_TIERS.get(task.name, "other")
                self.tier_time_ms[tier] = self.tier_time_ms.get(tier, 0.0) + cost_ms
                if task.name == "rebuild_shard":
                    self.rebuilds_performed += 1
                elif task.name == "compact_shard":
                    self.compactions_performed += 1
                if self.tracer.enabled and cost_ms > 0.0:
                    self.tracer.record_span(
                        f"maintenance.{tier}",
                        self.now_ms,
                        cost_ms,
                        category="maintenance",
                        lane="maintenance",
                        shard=task.shard_id,
                        task=task.name,
                    )
                if self.metrics is not None and cost_ms > 0.0:
                    window = (self.now_ms, self.now_ms + cost_ms)
                    self.metrics.record_maintenance(tier, *window)
                    self.metrics.telemetry.counter(
                        "serve_maintenance_tasks_total", tier=tier
                    ).inc()
                    if (
                        task.name == "rebuild_shard"
                        and self.policy.rebuild_mode == "stop_the_world"
                        and not self._shard_is_replicated(task.shard_id)
                    ):
                        # The shard had no index for the duration of the
                        # build: that is a real outage, unlike the
                        # double-buffered swap.
                        self.metrics.record_unavailability(*window)
            task.status = "done" if task.work is not None else "skipped"
            task.completed_at_ms = float(now_ms)
            executed.append(task)
        return executed

    def _shard_is_replicated(self, shard_id: int) -> bool:
        """Replica groups rebuild rolling, so they never go offline."""
        index = self.router.shards[int(shard_id)].index
        return callable(getattr(index, "recovering_replicas", None))

    def run_cycle(self, now_ms: float = 0.0) -> List[MaintenanceTask]:
        """One background iteration: scan, then drain the queue."""
        self.scan(now_ms)
        return self.run_pending(now_ms)

    # --------------------------------------------------------------- reshard

    def plan_reshard(
        self, window_shards: np.ndarray, window_keys: np.ndarray
    ) -> List[Tuple[str, int, Optional[int]]]:
        """Topology changes warranted by the window's observed load skew.

        Returns at most one ``("split", shard, split_key)`` or one
        ``("merge", shard, None)`` — resharding is deliberately incremental,
        one committed change per evaluation interval, so a transient spike
        never triggers a topology thrash.  The split key is the median of
        the window's requests into the hot shard (the point that halves the
        *observed* load, which for a hotspot is far from the stored median).
        """
        policy = self.reshard_policy
        router = self.router
        if not policy.enabled or not getattr(router, "supports_resharding", False):
            return []
        window_shards = np.asarray(window_shards)
        if window_shards.shape[0] < policy.min_window_requests:
            return []
        num_shards = router.num_shards
        loads = np.bincount(window_shards, minlength=num_shards).astype(np.float64)
        mean = loads.sum() / num_shards
        hottest = int(np.argmax(loads))
        if (
            num_shards < policy.max_shards
            and loads[hottest] >= policy.split_skew * mean
            and router.shards[hottest].num_entries >= policy.min_split_entries
        ):
            hot_keys = np.sort(np.asarray(window_keys)[window_shards == hottest])
            split_key = int(hot_keys[hot_keys.shape[0] // 2])
            return [("split", hottest, split_key)]
        if num_shards > max(policy.min_shards, 1):
            pair_loads = loads[:-1] + loads[1:]
            coldest = int(np.argmin(pair_loads))
            if pair_loads[coldest] <= policy.merge_fraction * mean:
                return [("merge", coldest, None)]
        return []

    def run_reshard(
        self, now_ms: float, window_shards: np.ndarray, window_keys: np.ndarray
    ) -> List[str]:
        """Plan and commit reshard operations; returns the ops performed.

        The serving loop calls this *after* flushing the batch queues —
        queued requests were routed under the old topology — and recomputes
        its routing afterwards.  Both phases of each operation reuse the
        epoch double-buffer lifecycle, so shards keep serving throughout.
        """
        executed: List[str] = []
        self.now_ms = float(now_ms)
        for op, shard_id, split_key in self.plan_reshard(window_shards, window_keys):
            try:
                if op == "split":
                    work = self.router.split_shard(shard_id, split_key)
                else:
                    work = self.router.merge_shards(shard_id)
            except ValueError:
                # Unsplittable (e.g. every windowed request hit one stored
                # key) or a racing lifecycle operation: skip this interval.
                continue
            cost_ms = self._work_time_ms(shard_id, work)
            self.maintenance_time_ms += cost_ms
            self.tier_time_ms["reshard"] = (
                self.tier_time_ms.get("reshard", 0.0) + cost_ms
            )
            if op == "split":
                self.splits_performed += 1
            else:
                self.merges_performed += 1
            if self.tracer.enabled:
                self.tracer.record_span(
                    f"reshard.{op}",
                    self.now_ms,
                    cost_ms,
                    category="maintenance",
                    lane="maintenance",
                    shard=int(shard_id),
                    num_shards=self.router.num_shards,
                )
            if self.metrics is not None:
                if cost_ms > 0.0:
                    self.metrics.record_maintenance(
                        "reshard", self.now_ms, self.now_ms + cost_ms
                    )
                self.metrics.telemetry.counter("serve_reshard_total", op=op).inc()
            executed.append(op)
        return executed

    def _work_time_ms(self, shard_id: int, work: KernelStats) -> float:
        if shard_id < 0:  # deployment-wide (host-side) task, no device time
            return 0.0
        shard = self.router.shards[int(shard_id)]
        if shard.index is None:
            return 0.0
        return shard.index.cost_model.kernel_time_ms(work)

    # ---------------------------------------------------------------- reports

    def snapshot(self) -> dict:
        report = {
            "tasks_enqueued": len(self.queue.tasks),
            "tasks_done": len(self.queue.by_status("done")),
            "tasks_skipped": len(self.queue.by_status("skipped")),
            "tasks_failed": len(self.queue.by_status("failed")),
            "rebuilds_performed": self.rebuilds_performed,
            "compactions_performed": self.compactions_performed,
            "resyncs_performed": self.resyncs_performed,
            "splits_performed": self.splits_performed,
            "merges_performed": self.merges_performed,
            "checkpoints_performed": self.checkpoints_performed,
            "maintenance_time_ms": self.maintenance_time_ms,
            "rebuild_peak_bytes": int(getattr(self.router, "rebuild_peak_bytes", 0)),
            "compiled_arena_bytes": self._compiled_arena_bytes(),
        }
        for tier, time_ms in sorted(self.tier_time_ms.items()):
            report[f"maintenance_ms_{tier}"] = time_ms
        return report

    def _compiled_arena_bytes(self) -> int:
        """Total host-side compiled-tier arena bytes across live shards."""
        total = 0
        for shard in self.router.shards:
            if shard.index is None:
                continue
            arena_bytes = getattr(shard.index, "compiled_buffers_bytes", None)
            if arena_bytes is not None:
                total += int(arena_bytes())
        return total
