"""`ShardedIndex`: a served, sharded deployment behind the `GpuIndex` interface.

The facade composes the serving layers — shard router, LRU result/negative
cache, request batch scheduler, background maintenance worker and telemetry
registry — while still *being* a :class:`~repro.baselines.base.GpuIndex`:
bulk-call benchmarks (and the contract tests) drive it exactly like any
single-instance baseline, and :meth:`serve_stream` additionally serves a
timed client request stream the way a deployment would.

Simulated-time accounting: shards execute concurrently, so the deployment's
bulk-load time is the slowest shard's build (makespan), foreground lookup
stats aggregate all shard kernels, and maintenance work is accounted on the
worker (off the request path) rather than in the foreground results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    sorted_lookup_results,
)
from repro.baselines.sorted_array import SortedArrayIndex
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats, combine
from repro.gpu.memory import MemoryFootprint
from repro.obs.trace import Tracer
from repro.serve.batching import BatchPolicy, BatchScheduler
from repro.serve.cache import ResultCache
from repro.serve.maintenance import MaintenancePolicy, MaintenanceWorker, ReshardPolicy
from repro.serve.metrics import MetricsRegistry
from repro.serve.qos import UNLABELED_TENANT, AdmissionController, TenantQoS
from repro.serve.reliability import ReliabilityConfig, ReliabilityState
from repro.serve.replication import (
    FailureInjector,
    ReplicatedShardRouter,
    ReplicationConfig,
    SimulatedClock,
)
from repro.serve.router import ShardFactory, ShardRouter
from repro.store import DeploymentStore, LocalDirBackend
from repro.workloads.keygen import KeySet
from repro.workloads.requests import RequestStream


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of a served deployment."""

    #: Number of index shards.
    num_shards: int = 4
    #: Key-space partitioning strategy: ``"range"`` or ``"hash"``.
    partitioner: str = "range"
    #: Key width of the deployment.
    key_bits: int = 64
    #: Result-cache entries (0 disables the cache).
    cache_capacity: int = 4096
    #: Dispatch a shard batch at this size.
    max_batch_size: int = 4096
    #: ... or after the oldest queued request waited this long.
    max_wait_ms: float = 1.0
    #: Degradation score at which the maintenance worker rebuilds a shard.
    rebuild_threshold: float = 0.5
    #: Degradation score at which the maintenance worker starts compacting
    #: a shard's hottest-chained buckets (the cheap first tier; set it at or
    #: above ``rebuild_threshold`` to disable incremental compaction).
    compact_threshold: float = 0.2
    #: Hottest-chained buckets folded per compaction task.
    compact_max_buckets: int = 64
    #: How full shard rebuilds swap in: ``"double_buffered"`` (background
    #: build + atomic swap, zero unavailability) or ``"stop_the_world"``.
    rebuild_mode: str = "double_buffered"
    #: Host-side latency charged to a request answered from cache.
    cache_latency_ms: float = 0.01
    #: Replicas per shard (1 = unreplicated, the plain shard router).
    replication_factor: int = 1
    #: Read-balancing policy across a shard's replicas.
    read_policy: str = "round_robin"
    #: Write quorum per shard (majority of the replicas when ``None``).
    write_quorum: Optional[int] = None
    #: Apply-log records retained per shard for replica catch-up.
    log_capacity: int = 64
    #: Scatter/gather execution engine of the shard router: ``"vector"``
    #: (batched span computation), ``"compiled"`` (vector routing plus the
    #: compiled hot path inside every shard) or ``"scalar"``; answers are
    #: identical under all three.
    engine: str = "vector"
    #: Arm the request tracer: every served request, batch execution,
    #: replica read/failover and maintenance window records a span on the
    #: simulated clock (exportable as Chrome trace-event JSON).  Tracing is
    #: behavior-neutral: answers and metrics are byte-identical either way.
    tracing: bool = False
    #: Period (simulated ms) of time-series telemetry snapshots during
    #: serving; 0 disables sampling.
    telemetry_sample_interval_ms: float = 0.0
    #: Per-tenant QoS contracts (priorities, rate limits, reserved cache
    #: shares); ``None`` serves every request unconditionally.
    tenants: Optional[Tuple[TenantQoS, ...]] = None
    #: Deployment-wide queued backlog at which low-priority tenants are shed
    #: (0 disables saturation shedding; rate limits still apply).
    max_queue_depth: int = 0
    #: Backlog multiple of ``max_queue_depth`` past which *every* request is
    #: shed.
    hard_limit_factor: float = 2.0
    #: Enable dynamic shard split/merge driven by observed load skew
    #: (range-partitioned, unreplicated deployments only).
    reshard: bool = False
    #: How often (simulated ms) the serving loop re-evaluates the topology.
    reshard_interval_ms: float = 50.0
    #: Split the hottest shard once its windowed load exceeds this multiple
    #: of the mean per-shard load.
    reshard_split_skew: float = 2.0
    #: Merge the coldest adjacent pair once its combined load drops below
    #: this fraction of the mean per-shard load.
    reshard_merge_fraction: float = 0.4
    #: Topology ceiling for splits.
    reshard_max_shards: int = 64
    #: Never split a shard storing fewer entries than this.
    reshard_min_split_entries: int = 128
    #: Durable-tier directory: when set, the deployment attaches a
    #: :class:`repro.store.DeploymentStore` over a
    #: :class:`repro.store.LocalDirBackend` rooted here — every acknowledged
    #: write batch is WAL-logged before its ack, the maintenance worker takes
    #: periodic checkpoints, and :meth:`ShardedIndex.cold_start` can rebuild
    #: the deployment from the directory after a process exit.
    store_dir: Optional[str] = None
    #: Whether every durable put carries an fsync barrier (the overhead knob
    #: the durability experiment measures).
    store_fsync: bool = True
    #: WAL records accumulated behind a checkpoint before the maintenance
    #: worker takes the next one.
    checkpoint_wal_records: int = 32
    #: Tail-tolerance layer (:class:`repro.serve.reliability.ReliabilityConfig`):
    #: request deadlines, per-shard retry budgets, hedged reads, per-replica
    #: circuit breakers and explicit partial results.  ``None`` keeps the
    #: classic never-give-up read semantics.
    reliability: Optional[ReliabilityConfig] = None

    def describe(self) -> str:
        cache = f"cache={self.cache_capacity}" if self.cache_capacity else "no-cache"
        label = f"sharded({self.partitioner}x{self.num_shards}, {cache})"
        if self.replication_factor > 1:
            label = (
                f"replicated({self.partitioner}x{self.num_shards}"
                f"x{self.replication_factor}, {self.read_policy}, {cache})"
            )
        if self.reshard:
            label = f"adaptive-{label}"
        if self.tenants:
            label = f"{label}+qos"
        if self.reliability is not None:
            label = f"{label}+rel"
        return label

    def replication(self) -> "ReplicationConfig":
        """The per-shard replica-group configuration this config implies."""
        return ReplicationConfig(
            replication_factor=self.replication_factor,
            read_policy=self.read_policy,
            write_quorum=self.write_quorum,
            log_capacity=self.log_capacity,
        )


def _default_factory(keyset: KeySet, device: GpuDevice) -> GpuIndex:
    return SortedArrayIndex(
        keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device
    )


class ShardedIndex(GpuIndex):
    """Sharded, cached, batch-served deployment of any `GpuIndex` type."""

    name = "sharded"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = True
    supports_bulk_load = True
    memory_class = "med"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        factory: Optional[ShardFactory] = None,
        config: Optional[ServeConfig] = None,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        self.config = config or ServeConfig()
        self.name = self.config.describe()
        self._key_dtype = np.uint32 if self.config.key_bits == 32 else np.uint64
        if self.config.reshard:
            if self.config.partitioner != "range":
                raise ValueError(
                    "dynamic resharding needs the range partitioner "
                    "(hash placement has no boundaries to move)"
                )
            if self.config.replication_factor > 1:
                raise ValueError(
                    "dynamic resharding is not supported on replicated "
                    "deployments"
                )

        keys = np.asarray(keys, dtype=self._key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        #: Simulated clock driving failure injection and replica recovery.
        self.clock = SimulatedClock()
        if self.config.replication_factor > 1:
            self.router: ShardRouter = ReplicatedShardRouter(
                keys,
                row_ids,
                factory=factory or _default_factory,
                num_shards=self.config.num_shards,
                partitioner=self.config.partitioner,
                key_bits=self.config.key_bits,
                device=device,
                engine=self.config.engine,
                replication=self.config.replication(),
                clock=self.clock,
            )
        else:
            self.router = ShardRouter(
                keys,
                row_ids,
                factory=factory or _default_factory,
                num_shards=self.config.num_shards,
                partitioner=self.config.partitioner,
                key_bits=self.config.key_bits,
                device=device,
                engine=self.config.engine,
            )
        #: Tail-tolerance machinery shared by every replica group (``None``
        #: when :attr:`ServeConfig.reliability` is unset): retry budgets,
        #: hedging quantiles, circuit breakers and their counters.
        self.reliability: Optional[ReliabilityState] = None
        if self.config.reliability is not None:
            self.reliability = ReliabilityState(self.config.reliability, self.clock)
            if isinstance(self.router, ReplicatedShardRouter):
                for group in self.router.groups.values():
                    group.reliability = self.reliability
        #: Failure-schedule replayer (armed by :meth:`inject_failures`).
        self.failures: Optional[FailureInjector] = None
        #: Per-tenant admission control (None = serve everything).
        self.admission: Optional[AdmissionController] = None
        if self.config.tenants or self.config.max_queue_depth:
            self.admission = AdmissionController(
                tenants=self.config.tenants or (),
                max_queue_depth=self.config.max_queue_depth,
                hard_limit_factor=self.config.hard_limit_factor,
            )
        cache_partitions = (
            self.admission.cache_partitions() if self.admission is not None else {}
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_capacity, partitions=cache_partitions or None)
            if self.config.cache_capacity
            else None
        )
        self.maintenance = MaintenanceWorker(
            self.router,
            policy=MaintenancePolicy(
                rebuild_threshold=self.config.rebuild_threshold,
                compact_threshold=self.config.compact_threshold,
                compact_max_buckets=self.config.compact_max_buckets,
                rebuild_mode=self.config.rebuild_mode,
                checkpoint_wal_records=self.config.checkpoint_wal_records,
            ),
            cache=self.cache,
            reshard_policy=ReshardPolicy(
                enabled=self.config.reshard,
                interval_ms=self.config.reshard_interval_ms,
                split_skew=self.config.reshard_split_skew,
                merge_fraction=self.config.reshard_merge_fraction,
                min_split_entries=self.config.reshard_min_split_entries,
                max_shards=self.config.reshard_max_shards,
            ),
        )
        #: Durable tier (armed via ``ServeConfig.store_dir`` or
        #: :meth:`attach_store`); ``None`` keeps the deployment memory-only.
        self.store: Optional[DeploymentStore] = None
        #: Per-shard recovery reports of the last :meth:`cold_start`.
        self.last_recovery: Optional[dict] = None
        #: Request tracer on the simulated clock (spans only when armed via
        #: ``ServeConfig.tracing`` or by flipping ``tracer.enabled``).
        self.tracer = Tracer(clock=self.clock, enabled=self.config.tracing)
        self.router.tracer = self.tracer
        #: Cumulative telemetry over every served stream (serve_stream default).
        self.metrics = MetricsRegistry(num_shards=self.config.num_shards)
        if self.config.telemetry_sample_interval_ms > 0.0:
            self.metrics.telemetry.sample_interval_ms = (
                self.config.telemetry_sample_interval_ms
            )
        self.router.partitioner.route_counter = self.metrics.telemetry.counter(
            "serve_partition_keys_routed_total", kind=self.router.partitioner.kind
        )
        self._bind_group_metrics(self.metrics)
        #: Trace ids of in-flight requests (cache-miss probes recorded before
        #: the batch that answers the request completes the trace).
        self._request_trace_ids = {}
        #: Batch results awaiting their simulated completion time (serve_stream).
        self._pending_fills = []
        #: Per-shard device horizon: a shard executes one batch at a time, so
        #: a batch dispatched while the previous one is still running queues
        #: on the device (this is what makes a saturated hot shard *visible*
        #: as latency instead of free parallelism).
        self._device_busy_until = {}
        #: Requests inside dispatched-but-uncompleted batches, as a heap of
        #: ``(completion_ms, size)``.  Together with the scheduler queues this
        #: is the backlog signal admission control sheds against.
        self._inflight = []
        self._inflight_count = 0
        #: Per-request answers of the last ``serve_stream(record_answers=True)``.
        self.last_answers = None
        #: Boolean mask of requests shed by admission control in the last
        #: ``serve_stream(record_answers=True)`` (excluded from oracle checks).
        self.last_shed = None
        #: Boolean mask of requests abandoned as explicit partial results
        #: (shard unavailable within the reliability bounds); excluded from
        #: oracle byte-checks the same way ``last_shed`` is.
        self.last_unavailable = None
        #: Boolean mask of requests whose deadline expired before their batch
        #: completed (answered deterministically at the deadline, masked).
        self.last_deadline_exceeded = None
        #: Boolean mask of requests answered from the last durable state
        #: instead of a live replica (graceful degradation; masked).
        self.last_stale = None
        self._answer_sink = None
        self._unavailable_sink = None
        self._deadline_sink = None
        self._stale_sink = None
        #: Per-shard durable-state lookup tables for stale reads, rebuilt per
        #: served stream (stale by contract; never fed back into the cache).
        self._stale_tables = {}
        self.build_stats = [
            stats
            for shard in self.router.shards
            if shard.index is not None
            for stats in shard.index.build_stats
        ]
        if self.config.store_dir:
            self.attach_store(
                DeploymentStore(
                    LocalDirBackend(self.config.store_dir, fsync=self.config.store_fsync),
                    key_bits=self.config.key_bits,
                )
            )

    # ------------------------------------------------------------- durability

    def attach_store(self, store: DeploymentStore) -> DeploymentStore:
        """Arm the durable tier: WAL-before-ack plus periodic checkpoints.

        Attaching *rebases* the store on the deployment's current state —
        every shard gets a fresh checkpoint at its current LSN and stale WAL
        records are dropped — so attach is also how a recovered deployment
        re-arms durability after :meth:`cold_start`.
        """
        store.metrics = self.metrics
        store.tracer = self.tracer
        store.clock = self.clock
        store.key_bits = self.config.key_bits
        self.store = store
        self.router.store = store
        self.maintenance.store = store
        if isinstance(self.router, ReplicatedShardRouter):
            for group in self.router.groups.values():
                group.store = store
        store.checkpoint_deployment(self.router)
        return store

    @classmethod
    def cold_start(
        cls,
        store: DeploymentStore,
        factory: Optional[ShardFactory] = None,
        config: Optional[ServeConfig] = None,
        device: GpuDevice = RTX_4090,
    ) -> "ShardedIndex":
        """Rebuild a deployment from its durable store after a process exit.

        Every shard is recovered to the latest valid checkpoint plus its WAL
        tail (torn tail records truncated, corrupt ones skipped and counted),
        the deployment is bulk-loaded from the recovered entries, and the
        store is re-attached (rebased) so serving continues durably.  The
        per-shard recovery reports land in :attr:`last_recovery`.
        """
        manifest = store.read_manifest()
        config = config or ServeConfig()
        # The passed store is re-attached below; store_dir=None keeps the
        # constructor from arming a second one over the same directory.
        config = replace(
            config,
            num_shards=int(manifest["num_shards"]),
            partitioner=str(manifest["partitioner"]),
            key_bits=int(manifest["key_bits"]),
            store_dir=None,
        )
        recoveries = [
            store.recover_shard(shard_id)
            for shard_id in range(int(manifest["num_shards"]))
        ]
        key_dtype = np.uint32 if config.key_bits == 32 else np.uint64
        keys = np.concatenate(
            [recovery.keys for recovery in recoveries]
            or [np.empty(0, dtype=key_dtype)]
        ).astype(key_dtype)
        row_ids = np.concatenate(
            [recovery.row_ids for recovery in recoveries]
            or [np.empty(0, dtype=np.uint32)]
        ).astype(np.uint32)
        deployment = cls(
            keys, row_ids, factory=factory, config=config, device=device
        )
        deployment.attach_store(store)
        deployment.last_recovery = {
            "num_shards": len(recoveries),
            "entries_recovered": int(sum(r.num_entries for r in recoveries)),
            "records_replayed": int(sum(r.replayed for r in recoveries)),
            "torn_truncated": int(sum(r.torn_truncated for r in recoveries)),
            "corrupt_skipped": int(sum(r.corrupt_skipped for r in recoveries)),
            "recovery_wall_ms": float(sum(r.wall_ms for r in recoveries)),
            "shards": [
                {
                    "shard_id": r.shard_id,
                    "entries": r.num_entries,
                    "checkpoint_lsn": r.checkpoint_lsn,
                    "lsn": r.lsn,
                    "replayed": r.replayed,
                    "wall_ms": r.wall_ms,
                }
                for r in recoveries
            ],
        }
        return deployment

    # ------------------------------------------------------------------ build

    @property
    def build_time_ms(self) -> float:
        """Shards bulk-load concurrently: the deployment is ready at the makespan."""
        return self.router.build_time_ms()

    # ---------------------------------------------------------------- lookups

    def _cache_probe_stats(self, num_keys: int) -> KernelStats:
        # The cache is a host-side hash map in front of the device: pure
        # compute, no kernel launch.
        return KernelStats(name="serve.cache_probe", compute_ops=num_keys, launches=0)

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        # Signed batches keep their dtype: the router clamps negative keys
        # below the unsigned keyspace, and an eager uint cast here would wrap
        # them onto stored keys instead (and poison the cache with aliases).
        keys = np.asarray(keys)
        if not np.issubdtype(keys.dtype, np.signedinteger):
            keys = keys.astype(self._key_dtype)
        num = int(keys.shape[0])
        if self.cache is None:
            return self.router.point_lookup_batch(keys)

        cached, row_agg, counts = self.cache.probe_batch(keys)
        parts = [self._cache_probe_stats(num)]
        uncached = np.where(~cached)[0]
        if uncached.shape[0]:
            served = self.router.point_lookup_batch(keys[uncached])
            row_agg[uncached] = served.row_ids
            counts[uncached] = served.match_counts
            self.cache.fill_batch(keys[uncached], served.row_ids, served.match_counts)
            parts.append(served.stats)
        stats = combine("serve.point_lookup", parts)
        return LookupResult(row_ids=row_agg, match_counts=counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        # Range results are not cached: their result sets are unbounded and
        # update invalidation would have to track interval overlaps.  The
        # raw (possibly signed) endpoints go straight to the router, whose
        # span computation clamps negatives instead of wrapping them.
        return self.router.range_lookup_batch(np.asarray(lows), np.asarray(highs))

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Route the update, invalidate the cache, kick background maintenance."""
        if self.cache is not None:
            # Exact-key invalidation is sufficient for correctness: a cached
            # entry (positive or negative) is only stale if its own key was
            # inserted or deleted.  Blanket negative trimming is left to the
            # maintenance worker.
            if insert_keys is not None:
                self.cache.invalidate_keys(np.asarray(insert_keys))
            if delete_keys is not None:
                self.cache.invalidate_keys(np.asarray(delete_keys))
        result = self.router.update_batch(
            insert_keys=insert_keys,
            insert_row_ids=insert_row_ids,
            delete_keys=delete_keys,
        )
        # Maintenance runs off the request path: degraded shards are queued
        # and healed here, but the time is accounted on the worker, not on
        # the foreground update result.
        self.maintenance.run_cycle(self.clock.now_ms)
        return result

    # ------------------------------------------------------------ replication

    def inject_failures(self, events) -> FailureInjector:
        """Arm a failure schedule (crash/slow/transient events) for serving.

        The events replay on the simulated clock as requests arrive; only
        replicated deployments (``replication_factor > 1``) can be armed.
        """
        if not isinstance(self.router, ReplicatedShardRouter):
            raise ValueError(
                "failure injection needs a replicated deployment "
                "(ServeConfig.replication_factor > 1)"
            )
        injector = FailureInjector(self.router, list(events))
        if self.failures is not None:
            # Faults the previous schedule already applied must still expire.
            injector.adopt_pending_ends(self.failures)
        injector.telemetry = self.metrics.telemetry
        self.failures = injector
        return self.failures

    def _bind_group_metrics(self, metrics: MetricsRegistry) -> None:
        """Point the replica groups' and the maintenance worker's telemetry
        at the active registry, so a stream served into a caller-provided
        registry gets the failover, availability and maintenance-window
        records too (not just request latency)."""
        self.maintenance.metrics = metrics
        self.maintenance.tracer = self.tracer
        if self.store is not None:
            self.store.metrics = metrics
            self.store.tracer = self.tracer
        if self.failures is not None:
            self.failures.telemetry = metrics.telemetry
        if isinstance(self.router, ReplicatedShardRouter):
            for group in self.router.groups.values():
                group.metrics = metrics
                group.tracer = self.tracer
                group.reliability = self.reliability

    def _poll_failures(self, now_ms: float) -> None:
        """Advance the clock; apply due failure transitions; heal off-path."""
        self.clock.advance(now_ms)
        if self.failures is None:
            return
        if self.failures.poll(now_ms):
            # Recovered replicas re-enter via the maintenance worker: scan
            # spots the RECOVERING state and runs the resync task off-path.
            self.maintenance.run_cycle(now_ms)

    def replication_snapshot(self) -> Optional[dict]:
        """Replica/availability report (None for unreplicated deployments)."""
        if isinstance(self.router, ReplicatedShardRouter):
            return self.router.replication_snapshot()
        return None

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        for shard in self.router.shards:
            if shard.index is not None:
                footprint.add(
                    f"shard_{shard.shard_id}",
                    shard.index.memory_footprint().total_bytes,
                )
            if shard.pending_index is not None:
                # A double-buffered rebuild in flight: the replacement is
                # resident alongside the live generation until the swap.
                footprint.add(
                    f"shard_{shard.shard_id}_rebuild_buffer",
                    shard.pending_index.memory_footprint().total_bytes,
                )
            # Host-side compiled-tier arenas (quantized node tables + packed
            # chain tables); reported separately so the simulated-device
            # footprint above stays engine-independent.
            if shard.index is not None:
                arena_bytes = getattr(shard.index, "compiled_buffers_bytes", None)
                if arena_bytes is not None:
                    bytes_held = arena_bytes()
                    if bytes_held:
                        footprint.add(
                            f"shard_{shard.shard_id}_compiled_arena", bytes_held
                        )
        if self.cache is not None:
            # Host-side entry: key + aggregate + count + LRU links.
            footprint.add("result_cache", len(self.cache) * (self.config.key_bits // 8 + 24))
        return footprint

    def degradation_score(self) -> float:
        """Worst degradation over all shards."""
        scores = [
            shard.index.degradation_score()
            for shard in self.router.shards
            if shard.index is not None
        ]
        return max(scores) if scores else 0.0

    def __len__(self) -> int:
        return self.router.num_entries

    # ---------------------------------------------------------------- serving

    def serve_stream(
        self,
        stream: RequestStream,
        policy: Optional[BatchPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        record_answers: bool = False,
    ) -> MetricsRegistry:
        """Serve a timed client request stream through the batching layer.

        Each request is first checked against the result cache (answered at
        host latency on a hit); the rest are coalesced per shard by the batch
        scheduler and executed as device-sized batches.  A request's latency
        is its queueing delay plus the device time of the batch it rode in.
        An armed failure schedule (:meth:`inject_failures`) replays on the
        same clock, so crashes/failovers land between requests exactly where
        the schedule puts them.  Returns the metrics registry with
        per-request telemetry — the deployment's own :attr:`metrics` unless a
        separate one is passed.  With ``record_answers=True`` the per-request
        answers are kept in :attr:`last_answers` as ``(row_ids,
        match_counts)`` arrays indexed by request id, which is what the
        differential availability checks compare against a single-instance
        oracle.
        """
        policy = policy or BatchPolicy(
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
        )
        metrics = metrics or self.metrics
        self._bind_group_metrics(metrics)
        scheduler = BatchScheduler(policy, telemetry=metrics.telemetry)
        tracer = self.tracer
        telemetry = metrics.telemetry
        self._request_trace_ids = {}
        # Routing is computed from the *raw* stream keys: the partitioner
        # clamps signed keys below the unsigned keyspace instead of letting a
        # uint cast wrap them onto the top shard (the negative requests are
        # answered host-side below and never reach a batch anyway).
        raw_keys = np.asarray(stream.keys)
        shard_of = self.router.partitioner.shard_of(raw_keys)
        tenant_ids = stream.tenant_ids
        admission = self.admission
        # Batch results become cacheable only at the batch's simulated
        # completion time; until then they are parked here.
        self._pending_fills = []
        self._answer_sink = (
            (np.full(len(stream), -1, dtype=np.int64), np.zeros(len(stream), dtype=np.int64))
            if record_answers
            else None
        )
        shed_mask = np.zeros(len(stream), dtype=bool) if record_answers else None
        self.last_shed = None
        if record_answers:
            self._unavailable_sink = np.zeros(len(stream), dtype=bool)
            self._deadline_sink = np.zeros(len(stream), dtype=bool)
            self._stale_sink = np.zeros(len(stream), dtype=bool)
        else:
            self._unavailable_sink = None
            self._deadline_sink = None
            self._stale_sink = None
        self._stale_tables = {}
        self._device_busy_until = {}
        self._inflight = []
        self._inflight_count = 0
        reshard_policy = self.maintenance.reshard_policy
        resharding = reshard_policy.enabled and self.router.supports_resharding
        window_shards: list = []
        window_keys: list = []
        next_reshard_ms = reshard_policy.interval_ms if resharding else float("inf")

        last_arrival = 0.0
        for request_id, arrival_ms, key in stream:
            last_arrival = arrival_ms
            if telemetry.sample_interval_ms:
                telemetry.maybe_sample(arrival_ms)
            self._poll_failures(arrival_ms)
            # Dispatch batches whose wait deadline has passed — even when this
            # request itself will be answered from cache — then make their
            # completed results visible before probing the cache.
            self._execute_batches(
                scheduler.poll(arrival_ms), metrics, client_ids=stream.client_ids
            )
            self._commit_pending_fills(arrival_ms)
            tenant = (
                int(tenant_ids[request_id]) if tenant_ids is not None else UNLABELED_TENANT
            )
            if admission is not None:
                while self._inflight and self._inflight[0][0] <= arrival_ms:
                    self._inflight_count -= heapq.heappop(self._inflight)[1]
                decision = admission.admit(
                    tenant,
                    arrival_ms,
                    scheduler.total_pending + self._inflight_count,
                )
                if not decision.admitted:
                    metrics.record_shed(tenant, decision.reason)
                    if tracer.enabled:
                        tracer.emit(
                            "admission.shed",
                            arrival_ms,
                            0.0,
                            "serve",
                            "requests",
                            tracer.new_trace_id(),
                            None,
                            {
                                "request_id": request_id,
                                "tenant": tenant,
                                "reason": decision.reason,
                            },
                        )
                    if shed_mask is not None:
                        shed_mask[request_id] = True
                    continue
            if key < 0:
                # Signed keys below the unsigned keyspace are definitional
                # misses, answered host-side at cache latency; they never
                # enter a batch (batch keys are unsigned).
                completion = arrival_ms + self.config.cache_latency_ms
                metrics.record_request(
                    self.config.cache_latency_ms, arrival_ms, completion
                )
                metrics.record_client(int(stream.client_ids[request_id]))
                if tenant != UNLABELED_TENANT:
                    metrics.record_tenant_request(tenant, self.config.cache_latency_ms)
                metrics.bump("negative_key_misses")
                continue
            if self.cache is not None:
                entry = self.cache.get(key, tenant=tenant if tenant >= 0 else None)
                if entry is not None:
                    completion = arrival_ms + self.config.cache_latency_ms
                    metrics.record_request(self.config.cache_latency_ms, arrival_ms, completion)
                    metrics.record_client(int(stream.client_ids[request_id]))
                    if tenant != UNLABELED_TENANT:
                        metrics.record_tenant_request(
                            tenant, self.config.cache_latency_ms
                        )
                    metrics.bump(
                        "cache_hits" if entry.match_count > 0 else "cache_negative_hits"
                    )
                    if tracer.enabled:
                        trace_id = tracer.new_trace_id()
                        root = tracer.emit(
                            "request",
                            arrival_ms,
                            self.config.cache_latency_ms,
                            "request",
                            "requests",
                            trace_id,
                            None,
                            {"request_id": request_id, "cache_hit": True},
                        )
                        tracer.emit(
                            "cache.probe",
                            arrival_ms,
                            self.config.cache_latency_ms,
                            "cache",
                            "cache",
                            trace_id,
                            root.span_id,
                            {"hit": True, "negative": entry.match_count == 0},
                        )
                    if self._answer_sink is not None:
                        self._answer_sink[0][request_id] = entry.row_agg
                        self._answer_sink[1][request_id] = entry.match_count
                    continue
                metrics.bump("cache_misses")
                if tracer.enabled:
                    # The miss probe joins the request's trace; the root span
                    # is recorded when the batch carrying it completes.
                    trace_id = tracer.new_trace_id()
                    self._request_trace_ids[request_id] = trace_id
                    tracer.emit(
                        "cache.probe",
                        arrival_ms,
                        0.0,
                        "cache",
                        "cache",
                        trace_id,
                        None,
                        {"request_id": request_id, "hit": False},
                    )
            due = scheduler.offer(
                int(shard_of[request_id]), request_id, key, arrival_ms, tenant_id=tenant
            )
            self._execute_batches(due, metrics, client_ids=stream.client_ids)
            if resharding:
                window_shards.append(int(shard_of[request_id]))
                window_keys.append(key)
                if arrival_ms >= next_reshard_ms:
                    shard_of = self._maybe_reshard(
                        scheduler,
                        metrics,
                        stream,
                        arrival_ms,
                        window_shards,
                        window_keys,
                        shard_of,
                    )
                    window_shards.clear()
                    window_keys.clear()
                    next_reshard_ms = arrival_ms + reshard_policy.interval_ms

        self._poll_failures(last_arrival + policy.max_wait_ms)
        self._execute_batches(
            scheduler.drain(last_arrival + policy.max_wait_ms),
            metrics,
            client_ids=stream.client_ids,
        )
        self._commit_pending_fills(float("inf"))
        if self.cache is not None:
            self.cache.publish_telemetry(telemetry)
        if telemetry.sample_interval_ms:
            telemetry.sample(self.clock.now_ms)
        if isinstance(self.router, ReplicatedShardRouter):
            # Outages still in progress count against this stream's
            # availability up to the point serving stopped.
            for group in self.router.groups.values():
                group.flush_unavailability(self.clock.now_ms)
        # The caller's registry was only bound for this stream; maintenance
        # and group telemetry afterwards report to the deployment's own again.
        self._bind_group_metrics(self.metrics)
        if self._answer_sink is not None:
            self.last_answers = self._answer_sink
            self.last_shed = shed_mask
            self.last_unavailable = self._unavailable_sink
            self.last_deadline_exceeded = self._deadline_sink
            self.last_stale = self._stale_sink
            self._answer_sink = None
            self._unavailable_sink = None
            self._deadline_sink = None
            self._stale_sink = None
        return metrics

    def _maybe_reshard(
        self,
        scheduler: BatchScheduler,
        metrics: MetricsRegistry,
        stream: RequestStream,
        now_ms: float,
        window_shards: list,
        window_keys: list,
        shard_of: np.ndarray,
    ) -> np.ndarray:
        """Evaluate the reshard policy at an interval boundary.

        In-flight batches are flushed first so no queued request crosses a
        topology change with a stale shard id; with the queues empty the
        split/merge commits atomically between requests, and the epoch
        lifecycle's version guard folds in any concurrent writes — no request
        is ever lost or misrouted (zero-downtime by construction).
        """
        self._execute_batches(
            scheduler.drain(now_ms), metrics, client_ids=stream.client_ids
        )
        self._commit_pending_fills(now_ms)
        ops = self.maintenance.run_reshard(
            now_ms,
            np.asarray(window_shards, dtype=np.int64),
            np.asarray(window_keys, dtype=np.int64),
        )
        if not ops:
            return shard_of
        # Shard ids renumber across a topology change, and split/merge swaps
        # in freshly built index generations — stale device horizons would
        # charge the new shards for batches the old ones ran.
        self._device_busy_until = {}
        metrics.num_shards = self.router.num_shards
        if self.store is not None:
            # Shard ids (and their LSN sequences) renumbered: rebase the
            # durable namespaces on the committed topology.
            self.store.checkpoint_deployment(self.router)
        return self.router.partitioner.shard_of(np.asarray(stream.keys))

    def _commit_pending_fills(self, now_ms: float) -> None:
        """Move completed batch results into the cache (simulated-time ordering)."""
        if self.cache is None or not self._pending_fills:
            return
        remaining = []
        for completion_ms, fill_keys, row_agg, counts, fill_tenants in self._pending_fills:
            if completion_ms <= now_ms:
                self.cache.fill_batch(fill_keys, row_agg, counts, tenants=fill_tenants)
            else:
                remaining.append((completion_ms, fill_keys, row_agg, counts, fill_tenants))
        self._pending_fills = remaining

    def _execute_batches(self, batches, metrics: MetricsRegistry, client_ids=None) -> None:
        tracer = self.tracer
        rel = self.reliability
        deadline_cfg = rel.config.deadline_ms if rel is not None else 0.0
        for batch in batches:
            shard = self.router.shards[batch.shard_id]
            batch_keys = batch.keys.astype(self._key_dtype)
            exec_start = max(
                batch.dispatch_ms,
                self._device_busy_until.get(batch.shard_id, 0.0),
            )
            if rel is not None and hasattr(shard.index, "begin_read"):
                # The batch's deadline is the laxest of its riders': requests
                # coalesce, so the read is only abandoned once *every* rider
                # is past its budget.
                deadline_abs = (
                    float(batch.arrival_ms.max()) + deadline_cfg
                    if deadline_cfg > 0
                    else None
                )
                shard.index.begin_read(exec_start, deadline_abs)
            if shard.index is None:
                row_agg = np.full(batch.size, -1, dtype=np.int64)
                counts = np.zeros(batch.size, dtype=np.int64)
                exec_ms = 0.0
            elif tracer.enabled:
                # The batch span is the propagation context: replica reads
                # and engine kernels recorded below it become its children.
                batch_span = tracer.push_span(
                    "batch.execute",
                    exec_start,
                    category="router",
                    lane=f"shard-{batch.shard_id}",
                    shard=batch.shard_id,
                    batch_size=batch.size,
                    reason=batch.reason,
                    engine=self.config.engine,
                    epoch=getattr(shard.index, "epoch", None),
                )
                try:
                    result = shard.index.point_lookup_batch(batch_keys)
                finally:
                    tracer.pop()
                row_agg = result.row_ids
                counts = result.match_counts
                exec_ms = shard.index.lookup_time_ms(result)
                batch_span.duration_ms = exec_ms
            else:
                result = shard.index.point_lookup_batch(batch_keys)
                row_agg = result.row_ids
                counts = result.match_counts
                exec_ms = shard.index.lookup_time_ms(result)
            unavailable = bool(
                getattr(shard.index, "last_read_unavailable", False)
            )
            stale = False
            if unavailable:
                metrics.bump("requests_unavailable", batch.size)
                if (
                    rel is not None
                    and rel.config.stale_reads
                    and self.store is not None
                ):
                    stale_answer = self._stale_lookup(batch.shard_id, batch_keys)
                    if stale_answer is not None:
                        row_agg, counts = stale_answer
                        stale = True
                        unavailable = False
                        metrics.bump("stale_reads_served", batch.size)
                        rel.bump("stale_reads_served", batch.size)
            completion_ms = exec_start + exec_ms
            self._device_busy_until[batch.shard_id] = completion_ms
            heapq.heappush(self._inflight, (completion_ms, batch.size))
            self._inflight_count += batch.size
            if self._answer_sink is not None:
                self._answer_sink[0][batch.request_ids] = row_agg
                self._answer_sink[1][batch.request_ids] = counts
                if unavailable:
                    self._unavailable_sink[batch.request_ids] = True
                if stale:
                    self._stale_sink[batch.request_ids] = True
            overhead_ms = (
                float(getattr(shard.index, "last_overhead_ms", 0.0))
                if shard.index is not None
                else 0.0
            )
            device_ms = exec_ms - overhead_ms
            tenant_labels = batch.tenant_ids
            for position in range(batch.size):
                arrival = float(batch.arrival_ms[position])
                latency = completion_ms - arrival
                finish = completion_ms
                if deadline_cfg > 0 and latency > deadline_cfg:
                    # The client gave up at its deadline: its observed
                    # latency is the deadline, deterministically, and the
                    # late answer is masked out of the oracle check.
                    latency = deadline_cfg
                    finish = arrival + deadline_cfg
                    metrics.bump("deadline_exceeded")
                    if self._deadline_sink is not None:
                        self._deadline_sink[batch.request_ids[position]] = True
                metrics.record_request(latency, arrival, finish)
                if tenant_labels is not None:
                    tenant = int(tenant_labels[position])
                    if tenant != UNLABELED_TENANT:
                        metrics.record_tenant_request(tenant, latency)
                if client_ids is not None:
                    metrics.record_client(int(client_ids[batch.request_ids[position]]))
            if tracer.enabled:
                self._trace_batch_requests(
                    tracer, batch, exec_start, completion_ms, device_ms, overhead_ms
                )
            metrics.record_shard_batch(batch.shard_id, batch.size, exec_ms)
            metrics.bump(f"batches_{batch.reason}")
            if self.cache is not None and not (unavailable or stale):
                # Unavailable (miss-shaped) and stale answers never enter the
                # result cache: they would poison later fresh reads.
                self._pending_fills.append(
                    (completion_ms, batch_keys, row_agg, counts, tenant_labels)
                )

    def _stale_lookup(self, shard_id: int, keys: np.ndarray):
        """Answer a batch from the shard's last durable state (checkpoint +
        WAL tail) when every live replica is out of reach.  Returns ``(row_agg,
        match_counts)`` mirroring the live duplicate-aware aggregate
        semantics, or ``None`` when the store has nothing for the shard."""
        table = self._stale_tables.get(shard_id)
        if table is None:
            try:
                recovery = self.store.recover_shard(shard_id)
            except (KeyError, FileNotFoundError, ValueError):
                return None
            order = np.argsort(recovery.keys, kind="stable")
            sorted_keys = recovery.keys[order]
            sorted_rows = recovery.row_ids[order].astype(np.int64)
            rowid_prefix = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(sorted_rows)]
            )
            table = (sorted_keys, rowid_prefix)
            self._stale_tables[shard_id] = table
        sorted_keys, rowid_prefix = table
        return sorted_lookup_results(
            sorted_keys, rowid_prefix, keys.astype(sorted_keys.dtype)
        )

    def _trace_batch_requests(
        self, tracer, batch, exec_start, completion_ms, device_ms, overhead_ms
    ) -> None:
        """Emit the per-request stage spans of one completed batch.

        Stage attribute dicts are built once per batch and shared across its
        requests (spans never mutate attributes after emission), and spans go
        through :meth:`Tracer.emit` directly — this loop runs once per served
        request and dominates the traced path's cost.
        """
        emit = tracer.emit
        new_trace_id = tracer.new_trace_id
        pending = self._request_trace_ids
        shard_id = batch.shard_id
        size = batch.size
        engine = self.config.engine
        dispatch_ms = batch.dispatch_ms
        request_ids = batch.request_ids.tolist()
        arrivals = batch.arrival_ms.tolist()
        wait_attrs = {"shard": shard_id, "reason": batch.reason}
        device_attrs = {"shard": shard_id, "batch_size": size, "engine": engine}
        failover_attrs = {"shard": shard_id}
        device_queue_ms = exec_start - dispatch_ms
        failover_start = exec_start + device_ms
        for position in range(size):
            request_id = request_ids[position]
            arrival = arrivals[position]
            trace_id = pending.pop(request_id, None)
            if trace_id is None:
                trace_id = new_trace_id()
            root = emit(
                "request",
                arrival,
                completion_ms - arrival,
                "request",
                "requests",
                trace_id,
                None,
                {
                    "request_id": request_id,
                    "shard": shard_id,
                    "batch_size": size,
                    "engine": engine,
                },
            )
            root_id = root.span_id
            emit(
                "queue.wait", arrival, dispatch_ms - arrival,
                "serve", "requests", trace_id, root_id, wait_attrs,
            )
            if device_queue_ms > 0.0:
                emit(
                    "device.queue", dispatch_ms, device_queue_ms,
                    "device", "requests", trace_id, root_id, device_attrs,
                )
            emit(
                "device.execute", exec_start, device_ms,
                "device", "requests", trace_id, root_id, device_attrs,
            )
            if overhead_ms > 0.0:
                emit(
                    "replica.failover", failover_start, overhead_ms,
                    "replication", "requests", trace_id, root_id, failover_attrs,
                )
