"""Request batching: coalesce small client requests into device-sized batches.

The paper's central serving observation (Figure 15) is that GPU lookup
batches only amortise their launch overhead at large sizes — a single-key
request would leave the device orders of magnitude underutilised.  The
:class:`BatchScheduler` therefore queues incoming point-lookup requests per
shard and dispatches a batch when either

* the queue reaches ``max_batch_size`` (the device-sized batch), or
* the oldest queued request has waited ``max_wait_ms`` (the latency bound).

The scheduler runs on a simulated clock: requests carry arrival timestamps
(from the request-stream generators in :mod:`repro.workloads.requests`) and
batches record their dispatch time, so per-request queueing delay is exact
and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy of one deployment."""

    #: Dispatch as soon as a shard queue holds this many requests.
    max_batch_size: int = 4096
    #: Dispatch at the latest this long after the oldest queued request arrived.
    max_wait_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")


@dataclass
class Batch:
    """One dispatched batch of point-lookup requests for a single shard."""

    shard_id: int
    #: Keys in arrival order.
    keys: np.ndarray
    #: Request identifiers aligned with ``keys``.
    request_ids: np.ndarray
    #: Arrival timestamp of every request, aligned with ``keys``.
    arrival_ms: np.ndarray
    #: Simulated time at which the batch left the queue.
    dispatch_ms: float
    #: Why the batch was dispatched (``"full"``, ``"timeout"`` or ``"drain"``).
    reason: str = "full"
    #: Tenant label per request (``-1`` = unlabeled), aligned with ``keys``.
    #: ``None`` when the stream carries no tenant labels at all.
    tenant_ids: "np.ndarray | None" = None

    @property
    def size(self) -> int:
        return int(self.keys.shape[0])

    def queue_delays_ms(self) -> np.ndarray:
        """Per-request time spent waiting in the queue."""
        return self.dispatch_ms - self.arrival_ms


class _ShardQueue:
    """Pending requests of one shard."""

    __slots__ = ("keys", "request_ids", "arrival_ms", "tenant_ids")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.request_ids: List[int] = []
        self.arrival_ms: List[float] = []
        self.tenant_ids: List[int] = []

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def deadline_ms(self) -> float:
        return self.arrival_ms[0] if self.arrival_ms else float("inf")


class BatchScheduler:
    """Per-shard request coalescing on a simulated clock.

    Requests must be offered in non-decreasing arrival order (the stream
    generators guarantee this).  :meth:`offer` returns the batches that became
    due *before or at* the new arrival — timeout batches are stamped with
    their deadline, not with the arrival that surfaced them, so delays never
    depend on when the next request happens to arrive.
    """

    def __init__(self, policy: BatchPolicy, telemetry=None) -> None:
        self.policy = policy
        #: Optional :class:`repro.obs.TelemetryRegistry`: when bound, every
        #: dispatch records the batch size and the per-request queue waits
        #: into bounded-memory histograms (one vectorized bulk record).
        self.telemetry = telemetry
        self._queues: Dict[int, _ShardQueue] = {}
        self._dispatched = 0
        self._last_arrival_ms = float("-inf")

    @property
    def num_dispatched(self) -> int:
        """Total number of batches dispatched so far."""
        return self._dispatched

    def pending(self, shard_id: int) -> int:
        """Number of queued requests for one shard."""
        queue = self._queues.get(shard_id)
        return len(queue) if queue else 0

    @property
    def total_pending(self) -> int:
        """Queued requests across all shards (the admission-control signal)."""
        return sum(len(queue) for queue in self._queues.values())

    # --------------------------------------------------------------- offering

    def offer(
        self,
        shard_id: int,
        request_id: int,
        key: int,
        arrival_ms: float,
        tenant_id: int = -1,
    ) -> List[Batch]:
        """Enqueue one request; return every batch due by ``arrival_ms``."""
        if arrival_ms < self._last_arrival_ms:
            raise ValueError("requests must be offered in arrival order")
        self._last_arrival_ms = float(arrival_ms)

        due = self._flush_expired(arrival_ms)
        queue = self._queues.setdefault(int(shard_id), _ShardQueue())
        queue.keys.append(int(key))
        queue.request_ids.append(int(request_id))
        queue.arrival_ms.append(float(arrival_ms))
        queue.tenant_ids.append(int(tenant_id))
        if len(queue) >= self.policy.max_batch_size:
            due.append(self._dispatch(int(shard_id), queue, float(arrival_ms), "full"))
        return due

    def poll(self, now_ms: float) -> List[Batch]:
        """Surface every batch due by ``now_ms`` without enqueuing anything.

        Serving loops call this on *every* event (including requests answered
        elsewhere, e.g. from a cache), so timed-out batches are dispatched as
        soon as simulated time passes their deadline rather than waiting for
        the next enqueued request.
        """
        if now_ms < self._last_arrival_ms:
            raise ValueError("time must be polled in non-decreasing order")
        self._last_arrival_ms = float(now_ms)
        return self._flush_expired(now_ms)

    def drain(self, now_ms: float) -> List[Batch]:
        """Dispatch everything still queued (end of the request stream)."""
        batches: List[Batch] = []
        for shard_id in sorted(self._queues):
            queue = self._queues[shard_id]
            if len(queue):
                dispatch_ms = min(float(now_ms), queue.deadline_ms + self.policy.max_wait_ms)
                batches.append(self._dispatch(shard_id, queue, dispatch_ms, "drain"))
        return batches

    # -------------------------------------------------------------- internals

    def _flush_expired(self, now_ms: float) -> List[Batch]:
        batches: List[Batch] = []
        for shard_id in sorted(self._queues):
            queue = self._queues[shard_id]
            deadline = queue.deadline_ms + self.policy.max_wait_ms
            if len(queue) and deadline <= now_ms:
                batches.append(self._dispatch(shard_id, queue, deadline, "timeout"))
        return batches

    def _dispatch(
        self, shard_id: int, queue: _ShardQueue, dispatch_ms: float, reason: str
    ) -> Batch:
        labeled = any(tenant != -1 for tenant in queue.tenant_ids)
        batch = Batch(
            shard_id=shard_id,
            keys=np.asarray(queue.keys, dtype=np.uint64),
            request_ids=np.asarray(queue.request_ids, dtype=np.int64),
            arrival_ms=np.asarray(queue.arrival_ms, dtype=np.float64),
            dispatch_ms=float(dispatch_ms),
            reason=reason,
            tenant_ids=(
                np.asarray(queue.tenant_ids, dtype=np.int64) if labeled else None
            ),
        )
        queue.keys.clear()
        queue.request_ids.clear()
        queue.arrival_ms.clear()
        queue.tenant_ids.clear()
        self._dispatched += 1
        if self.telemetry is not None:
            self.telemetry.histogram("serve_batch_size").record(batch.size)
            self.telemetry.histogram(
                "serve_batch_queue_wait_ms", reason=reason
            ).record_many(batch.queue_delays_ms())
        return batch
