"""Tail-tolerant request reliability: deadlines, retry budgets, hedging, breakers.

One gray-failing replica — slow but not DOWN — is enough to wreck a
scatter/gather deployment's tail: every fan-out that touches it stalls, and
the PR-2 failover loop retries erroring replicas without bound.  This module
packages the standard tail-at-scale toolkit (Dean & Barroso) for the
simulated-clock serving stack, wired through ``ServeConfig.reliability``:

* **Deadlines** — every request carries ``arrival + deadline_ms``; the
  serving layer answers deadline-exceeded requests deterministically at
  their deadline (latency capped, masked from oracle byte-checks) and the
  replica layer abandons retries/restarts that cannot fit the budget.
* **Retry budgets** — failover retries spend from a per-shard token bucket
  (:class:`repro.serve.qos.TokenBucket` on the simulated clock) and pay
  exponential backoff with seeded jitter, replacing unbounded retry rounds.
* **Hedged reads** — once the online latency histogram is warm, a read whose
  service time exceeds the configured quantile is re-issued to a second
  healthy replica; the first answer wins, the loser's device cost stays
  accounted, and hedge win/loss counters plus ``replica.hedge`` spans record
  the outcome.
* **Circuit breakers** — per-replica ``closed -> open -> half-open`` state
  driven by error and slowness rates, filtering the read-balancer candidate
  set (fail-open when every breaker is open: a breaker must never cost
  availability).
* **Graceful degradation** — when a group cannot serve within its bounds the
  read returns an *explicit* partial result: a per-shard ``unavailable``
  mask excluded from oracle byte-checks the way ``last_shed`` already is,
  optionally answered stale from the last durable checkpoint.

Everything runs on the deployment's :class:`SimulatedClock` with seeded
randomness, so reliability weather is exactly replayable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.obs.telemetry import LogBucketHistogram
from repro.serve.qos import TokenBucket

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the request reliability layer (``ServeConfig.reliability``)."""

    #: Per-request deadline from arrival (simulated ms); requests whose batch
    #: completes later are answered deadline-exceeded at exactly the
    #: deadline.  0 disables deadlines.
    deadline_ms: float = 0.0
    #: Retry-budget token-bucket capacity per shard (each failover retry
    #: spends one token; an empty bucket abandons the read).
    retry_budget: float = 8.0
    #: Retry-budget refill rate (tokens per simulated ms).
    retry_refill_per_ms: float = 0.5
    #: First-retry backoff; doubles (``retry_backoff_factor``) per retry.
    retry_backoff_base_ms: float = 0.05
    retry_backoff_factor: float = 2.0
    #: Jitter fraction: each backoff is scaled by ``1 + jitter * u`` with a
    #: seeded uniform draw, decorrelating retry storms deterministically.
    retry_jitter: float = 0.5
    #: Hedge a read once its service time exceeds this quantile of the
    #: online read-latency histogram (0 disables hedging; 0.95 = p95).
    hedge_quantile: float = 0.0
    #: Reads observed before the histogram is trusted for hedging.
    hedge_min_samples: int = 64
    #: Never hedge earlier than this (keeps cold histograms from hedging
    #: every read).
    hedge_floor_ms: float = 0.05
    #: Arm per-replica circuit breakers.
    breaker_enabled: bool = True
    #: Outcome window per replica breaker.
    breaker_window: int = 16
    #: Outcomes observed before a breaker may trip.
    breaker_min_samples: int = 8
    #: Bad-outcome fraction of the window that trips the breaker open.
    breaker_failure_threshold: float = 0.5
    #: Time a tripped breaker stays open before probing (half-open).
    breaker_open_ms: float = 2.0
    #: Consecutive half-open probe successes that close the breaker.
    breaker_probe_reads: int = 2
    #: Count reads slower than this quantile of the online histogram as bad
    #: breaker outcomes (0 = errors only).
    breaker_slow_quantile: float = 0.0
    #: Return explicit partial results (``unavailable`` mask) when a read
    #: cannot be served within its bounds; ``False`` keeps the PR-2
    #: never-fail semantics (forced/emergency restarts).
    partial_results: bool = True
    #: Answer unavailable shard reads (stale) from the last durable
    #: checkpoint + WAL tail when a store is attached.
    stale_reads: bool = False
    #: Allow whole-group emergency snapshot restarts on the read path even
    #: with partial results armed (off: a fully-down group degrades to an
    #: unavailable answer and recovers off-path via maintenance).
    allow_emergency_restart: bool = False
    #: Seed of the jitter streams (per-shard, decorrelated).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_ms < 0.0:
            raise ValueError("deadline_ms must be >= 0")
        if self.retry_budget < 1.0:
            raise ValueError("retry_budget must be >= 1")
        if self.retry_refill_per_ms < 0.0:
            raise ValueError("retry_refill_per_ms must be >= 0")
        if self.retry_backoff_base_ms < 0.0 or self.retry_backoff_factor < 1.0:
            raise ValueError("retry backoff must be non-negative and non-shrinking")
        if self.retry_jitter < 0.0:
            raise ValueError("retry_jitter must be >= 0")
        if not 0.0 <= self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in [0, 1)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.breaker_window < 1 or self.breaker_min_samples < 1:
            raise ValueError("breaker window/min_samples must be >= 1")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_open_ms < 0.0:
            raise ValueError("breaker_open_ms must be >= 0")
        if self.breaker_probe_reads < 1:
            raise ValueError("breaker_probe_reads must be >= 1")
        if not 0.0 <= self.breaker_slow_quantile < 1.0:
            raise ValueError("breaker_slow_quantile must be in [0, 1)")


class CircuitBreaker:
    """Per-replica ``closed -> open -> half-open`` breaker on the simulated clock.

    Outcomes (errors, and optionally slow reads) feed a bounded window; when
    the bad fraction crosses the threshold the breaker opens and the replica
    leaves the read-balancer candidate set.  After ``breaker_open_ms`` it
    half-opens: probe reads are admitted, and ``breaker_probe_reads``
    consecutive successes close it again — any probe failure re-opens it.
    """

    __slots__ = (
        "config",
        "state",
        "_window",
        "_opened_at_ms",
        "_probe_successes",
        "opens",
        "closes",
        "half_opens",
    )

    def __init__(self, config: ReliabilityConfig) -> None:
        self.config = config
        self.state = BREAKER_CLOSED
        self._window: deque = deque(maxlen=config.breaker_window)
        self._opened_at_ms = 0.0
        self._probe_successes = 0
        self.opens = 0
        self.closes = 0
        self.half_opens = 0

    def allow(self, now_ms: float) -> bool:
        """Whether the replica may serve a read at ``now_ms``.

        An open breaker half-opens (and admits the probe) once its open
        window elapsed; time passing is the only closed->probe trigger.
        """
        if self.state == BREAKER_OPEN:
            if now_ms - self._opened_at_ms >= self.config.breaker_open_ms:
                self.state = BREAKER_HALF_OPEN
                self._probe_successes = 0
                self.half_opens += 1
                return True
            return False
        return True

    def record(self, now_ms: float, ok: bool) -> None:
        """Feed one read outcome (``ok=False`` for errors or slow reads)."""
        if self.state == BREAKER_OPEN:
            return  # fail-open reads while tripped don't feed the window
        if self.state == BREAKER_HALF_OPEN:
            if not ok:
                self.trip(now_ms)
                return
            self._probe_successes += 1
            if self._probe_successes >= self.config.breaker_probe_reads:
                self.state = BREAKER_CLOSED
                self._window.clear()
                self.closes += 1
            return
        self._window.append(0 if ok else 1)
        if (
            len(self._window) >= self.config.breaker_min_samples
            and sum(self._window) / len(self._window)
            >= self.config.breaker_failure_threshold
        ):
            self.trip(now_ms)

    def trip(self, now_ms: float) -> None:
        self.state = BREAKER_OPEN
        self._opened_at_ms = float(now_ms)
        self._window.clear()
        self.opens += 1


class ReliabilityState:
    """Deployment-wide reliability machinery shared by every replica group.

    Owns the online read-latency histogram the hedge threshold is learned
    from, the per-shard retry budgets and jitter streams, and the
    per-replica circuit breakers.  One instance per deployment, handed to
    each :class:`~repro.serve.replication.ReplicaGroup` so accounting is
    global (a deployment has one tail, not one per shard).
    """

    def __init__(self, config: ReliabilityConfig, clock) -> None:
        self.config = config
        self.clock = clock
        #: Online distribution of effective replica-read service times; the
        #: hedge threshold is ``percentile(hedge_quantile)`` once warm.
        self.read_latency = LogBucketHistogram()
        self._budgets: Dict[int, TokenBucket] = {}
        self._breakers: Dict[Tuple[int, int], CircuitBreaker] = {}
        self._rngs: Dict[int, np.random.Generator] = {}
        self.counters: Dict[str, int] = {}
        #: Simulated device time burnt by hedges that lost the race.
        self.hedge_waste_ms = 0.0

    # ------------------------------------------------------------- accounting

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + int(amount)

    def observe_read(self, service_ms: float) -> None:
        """Feed one effective read service time into the online histogram."""
        self.read_latency.record(float(service_ms))

    # ------------------------------------------------------------ per-shard

    def budget(self, shard_id: int) -> TokenBucket:
        bucket = self._budgets.get(shard_id)
        if bucket is None:
            bucket = TokenBucket(
                self.config.retry_refill_per_ms, self.config.retry_budget
            )
            self._budgets[shard_id] = bucket
        return bucket

    def breaker(self, shard_id: int, replica_id: int) -> CircuitBreaker:
        key = (int(shard_id), int(replica_id))
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.config)
            self._breakers[key] = breaker
        return breaker

    def _rng(self, shard_id: int) -> np.random.Generator:
        rng = self._rngs.get(shard_id)
        if rng is None:
            rng = np.random.default_rng(self.config.seed + 1000003 * int(shard_id))
            self._rngs[shard_id] = rng
        return rng

    def backoff_ms(self, shard_id: int, retry_index: int) -> float:
        """Exponential backoff of the ``retry_index``-th retry, seeded jitter."""
        config = self.config
        backoff = config.retry_backoff_base_ms * (
            config.retry_backoff_factor ** max(0, int(retry_index) - 1)
        )
        if config.retry_jitter > 0.0:
            backoff *= 1.0 + config.retry_jitter * float(self._rng(shard_id).random())
        return backoff

    # ------------------------------------------------------------- thresholds

    def hedge_threshold_ms(self) -> float:
        """Service time past which a read is hedged (inf while cold/disabled)."""
        config = self.config
        if config.hedge_quantile <= 0.0:
            return float("inf")
        if self.read_latency.count < config.hedge_min_samples:
            return float("inf")
        return max(
            config.hedge_floor_ms,
            float(self.read_latency.percentile(config.hedge_quantile * 100.0)),
        )

    def slow_threshold_ms(self) -> float:
        """Service time past which a read counts as a bad breaker outcome."""
        config = self.config
        if config.breaker_slow_quantile <= 0.0:
            return float("inf")
        if self.read_latency.count < config.hedge_min_samples:
            return float("inf")
        return float(self.read_latency.percentile(config.breaker_slow_quantile * 100.0))

    # ---------------------------------------------------------------- report

    def breaker_states(self) -> Dict[str, str]:
        return {
            f"{shard}:{replica}": breaker.state
            for (shard, replica), breaker in sorted(self._breakers.items())
        }

    def snapshot(self) -> dict:
        threshold = self.hedge_threshold_ms()
        report = {
            # None while cold/disabled (inf would not survive JSON).
            "hedge_threshold_ms": threshold if np.isfinite(threshold) else None,
            "reads_observed": int(self.read_latency.count),
            "hedge_waste_ms": float(self.hedge_waste_ms),
            "breaker_opens": sum(b.opens for b in self._breakers.values()),
            "breaker_closes": sum(b.closes for b in self._breakers.values()),
            "breaker_half_opens": sum(b.half_opens for b in self._breakers.values()),
            "breakers_open": sum(
                1 for b in self._breakers.values() if b.state != BREAKER_CLOSED
            ),
        }
        report.update(self.counters)
        return report
