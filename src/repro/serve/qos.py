"""Per-tenant quality-of-service: admission control and load shedding.

A multi-tenant deployment serves streams whose requests carry tenant labels
(:class:`repro.workloads.requests.RequestStream` with ``tenant_ids``).  Under
hostile traffic — one tenant flooding the deployment — request batching alone
cannot protect the others: the flood fills every shard queue, and all tenants
pay the queueing + device time of oversized batches.  The
:class:`AdmissionController` decides *before* a request is queued whether to
serve or shed it:

* **Rate limiting** — each tenant with a configured ``rate_limit_per_ms``
  owns a token bucket on the simulated clock.  Requests beyond the sustained
  rate (plus burst allowance) are shed with reason ``"rate_limit"``.
* **Saturation shedding** — when the total queued backlog crosses
  ``max_queue_depth``, requests from tenants below the top configured
  priority are shed (``"saturated"``); past ``hard_limit_factor ×
  max_queue_depth`` everything is shed (``"overload"``).

Shedding is an explicit, observable answer: the serving loop records shed
decisions as labeled telemetry counters and trace spans, and shed requests
are excluded from the oracle's byte-identical answer check (they were never
served, by design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

#: Tenant id used for requests that carry no tenant label.
UNLABELED_TENANT = -1


@dataclass(frozen=True)
class TenantQoS:
    """QoS contract of one tenant."""

    #: Tenant identifier (matches ``RequestStream.tenant_ids`` values).
    tenant: int
    #: Scheduling priority; at saturation only top-priority tenants are
    #: admitted.  Unconfigured tenants have priority 0.
    priority: int = 1
    #: Sustained admission rate (requests per simulated millisecond);
    #: ``0`` = unlimited.
    rate_limit_per_ms: float = 0.0
    #: Token-bucket burst allowance; ``0`` picks ``max(1, 16 ×
    #: rate_limit_per_ms)`` so short spikes ride through.
    burst: float = 0.0
    #: Fraction of the result-cache capacity reserved for this tenant
    #: (``0`` = no reserved partition, shares the default partition).
    cache_share: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_limit_per_ms < 0:
            raise ValueError("rate_limit_per_ms must be >= 0")
        if self.burst < 0:
            raise ValueError("burst must be >= 0")
        if not 0.0 <= self.cache_share <= 1.0:
            raise ValueError("cache_share must be in [0, 1]")

    @property
    def effective_burst(self) -> float:
        if self.burst > 0:
            return float(self.burst)
        return max(1.0, 16.0 * float(self.rate_limit_per_ms))


class TokenBucket:
    """Token bucket on the simulated clock (rate per ms, ``burst`` capacity).

    Shared infrastructure: per-tenant rate limits here, per-shard retry
    budgets in :mod:`repro.serve.reliability`.
    """

    __slots__ = ("rate", "burst", "tokens", "last_ms")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_ms = float("-inf")

    def take(self, now_ms: float) -> bool:
        if self.last_ms == float("-inf"):
            self.last_ms = float(now_ms)
        elapsed = max(0.0, float(now_ms) - self.last_ms)
        self.last_ms = float(now_ms)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class ShedDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: ``"rate_limit"``, ``"saturated"`` or ``"overload"`` when shed.
    reason: str = ""


class AdmissionController:
    """Per-tenant token buckets plus backlog-based load shedding.

    ``max_queue_depth == 0`` disables saturation shedding (rate limits still
    apply); an empty tenant list disables rate limiting (saturation shedding
    still applies uniformly, since no tenant outranks another).
    """

    def __init__(
        self,
        tenants: Sequence[TenantQoS] = (),
        max_queue_depth: int = 0,
        hard_limit_factor: float = 2.0,
    ) -> None:
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if hard_limit_factor < 1.0:
            raise ValueError("hard_limit_factor must be >= 1")
        self.specs: Dict[int, TenantQoS] = {}
        self._buckets: Dict[int, TokenBucket] = {}
        for spec in tenants:
            if spec.tenant in self.specs:
                raise ValueError(f"duplicate QoS spec for tenant {spec.tenant}")
            self.specs[int(spec.tenant)] = spec
            if spec.rate_limit_per_ms > 0:
                self._buckets[int(spec.tenant)] = TokenBucket(
                    spec.rate_limit_per_ms, spec.effective_burst
                )
        self.max_queue_depth = int(max_queue_depth)
        self.hard_limit_factor = float(hard_limit_factor)
        self.top_priority = max(
            (spec.priority for spec in self.specs.values()), default=0
        )
        #: Cumulative shed counts by ``(tenant, reason)``.
        self.shed_counts: Dict[Tuple[int, str], int] = {}
        self.admitted_count = 0

    def priority_of(self, tenant_id: int) -> int:
        spec = self.specs.get(int(tenant_id))
        return spec.priority if spec is not None else 0

    def cache_partitions(self) -> Dict[int, float]:
        """``{tenant: cache_share}`` for tenants with a reserved partition."""
        return {
            tenant: spec.cache_share
            for tenant, spec in self.specs.items()
            if spec.cache_share > 0
        }

    def admit(
        self, tenant_id: int, now_ms: float, queue_depth: int
    ) -> ShedDecision:
        """Decide whether to serve a request arriving at ``now_ms``.

        ``queue_depth`` is the deployment-wide backlog at arrival: requests
        still queued in the batch scheduler plus requests inside dispatched
        batches whose (simulated) device execution has not completed yet.
        """
        tenant_id = int(tenant_id)
        bucket = self._buckets.get(tenant_id)
        if bucket is not None and not bucket.take(now_ms):
            return self._shed(tenant_id, "rate_limit")
        if self.max_queue_depth > 0:
            hard = self.max_queue_depth * self.hard_limit_factor
            if queue_depth >= hard:
                return self._shed(tenant_id, "overload")
            if (
                queue_depth >= self.max_queue_depth
                and self.priority_of(tenant_id) < self.top_priority
            ):
                return self._shed(tenant_id, "saturated")
        self.admitted_count += 1
        return ShedDecision(admitted=True)

    def _shed(self, tenant_id: int, reason: str) -> ShedDecision:
        key = (tenant_id, reason)
        self.shed_counts[key] = self.shed_counts.get(key, 0) + 1
        return ShedDecision(admitted=False, reason=reason)

    @property
    def total_shed(self) -> int:
        return sum(self.shed_counts.values())
