"""Per-shard replica groups: load-balanced reads, quorum writes, failover.

PR 1's :class:`~repro.serve.router.ShardRouter` gave every key range exactly
one index instance — a single point of failure per shard, and no way to
spread read load.  This module puts a :class:`ReplicaGroup` behind each
shard: ``replication_factor`` identical index instances built from the same
authoritative entry arrays.

* **Reads** are balanced over the healthy replicas by a pluggable policy
  (round-robin or least-loaded) and *fail over*: a replica throwing a
  transient error is skipped at a small detection penalty, and a group whose
  replicas are all down performs an emergency restart (snapshot rebuild) so
  answers are never lost — only latency is.
* **Writes** fan out to every up replica and are acknowledged once a quorum
  (majority by default) applied them.  Every update batch is appended to the
  group's *apply log* with a monotone LSN; replicas that were down during a
  write lag behind and are barred from serving reads until they catch up.
* **Catch-up** replays the apply log when the outage was short, and falls
  back to a full snapshot resync (rebuild from the authoritative arrays,
  which track live-index semantics via ``export_entries``) when the log was
  trimmed past the replica's position.
* **Failure injection** runs on the simulated clock: a
  :class:`FailureInjector` consumes a schedule of crash / slow-replica /
  transient-error events (see :func:`repro.workloads.failures.failure_schedule`)
  and drives the health-state transitions ``HEALTHY -> DOWN -> RECOVERING ->
  HEALTHY`` that the router and maintenance worker react to.
* **Rebalancing**: replicas can join (snapshot-built, immediately serving)
  and leave at runtime; the read policies rebalance automatically because
  they only ever consider the current membership.

A :class:`ReplicaGroup` deliberately implements the slice of the
:class:`~repro.baselines.base.GpuIndex` surface the serving layer consumes
(lookups, updates, ``export_entries``, footprint, degradation), so
:class:`ReplicatedShardRouter` can drop it into the existing scatter/gather
machinery unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UnsupportedOperation,
    UpdateResult,
    cancel_opposing_updates,
)
from repro.gpu.cost_model import CostModel
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats, combine
from repro.gpu.memory import MemoryFootprint
from repro.obs.trace import NULL_TRACER
from repro.serve.router import ShardFactory, ShardRouter, apply_update_to_entries
from repro.workloads.keygen import KeySet

# Replica health states.
HEALTHY = "healthy"
DOWN = "down"
RECOVERING = "recovering"


class SimulatedClock:
    """Monotone simulated time shared by a deployment's failure machinery."""

    def __init__(self, now_ms: float = 0.0) -> None:
        self.now_ms = float(now_ms)

    def advance(self, to_ms: float) -> float:
        """Move time forward (never backward); returns the current time."""
        self.now_ms = max(self.now_ms, float(to_ms))
        return self.now_ms


@dataclass(frozen=True)
class ReplicationConfig:
    """How a shard's replica group is sized and operated."""

    #: Number of replicas per shard.
    replication_factor: int = 3
    #: Read-balancing policy: ``"round_robin"`` or ``"least_loaded"``.
    read_policy: str = "round_robin"
    #: Replicas that must apply a write before it counts as acknowledged
    #: (majority of the replication factor when ``None``).
    write_quorum: Optional[int] = None
    #: Apply-log records retained for catch-up; a replica lagging further
    #: behind is resynced from a full snapshot instead of log replay.
    log_capacity: int = 64
    #: Host-side latency of detecting a failed read attempt and retrying on
    #: the next replica.
    failover_penalty_ms: float = 0.05
    #: Latency of an emergency snapshot restart when no replica is available.
    restart_penalty_ms: float = 5.0
    #: Rounds of every-available-replica-erroring failover a read tolerates
    #: before the group declares it unavailable (and force-restarts a replica
    #: to keep the never-fail contract, or returns an explicit partial result
    #: when the reliability layer is armed).  The loop used to spin until the
    #: injected error supply drained, i.e. effectively forever.
    max_failover_rounds: int = 16

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.max_failover_rounds < 1:
            raise ValueError("max_failover_rounds must be >= 1")
        if self.read_policy not in ("round_robin", "least_loaded"):
            raise ValueError(
                f"unknown read_policy {self.read_policy!r}; "
                "expected 'round_robin' or 'least_loaded'"
            )
        if self.write_quorum is not None and not (
            1 <= self.write_quorum <= self.replication_factor
        ):
            raise ValueError("write_quorum must be within [1, replication_factor]")
        if self.log_capacity < 0:
            raise ValueError("log_capacity must be >= 0")

    @property
    def quorum(self) -> int:
        """Effective write quorum (majority unless configured explicitly)."""
        if self.write_quorum is not None:
            return self.write_quorum
        return self.replication_factor // 2 + 1


@dataclass
class LogRecord:
    """One update batch in a group's apply log."""

    lsn: int
    insert_keys: np.ndarray
    insert_row_ids: np.ndarray
    delete_keys: np.ndarray


@dataclass
class Replica:
    """One replica of a shard: its index instance plus health bookkeeping."""

    replica_id: int
    shard_id: int
    index: Optional[GpuIndex] = None
    state: str = HEALTHY
    #: LSN of the last update batch this replica applied.
    applied_lsn: int = 0
    #: Execution-time multiplier (> 1.0 while a slow-replica fault is active).
    slow_factor: float = 1.0
    #: Number of upcoming read attempts that raise a transient error.
    pending_transient: int = 0
    #: Accumulated simulated device-busy time (drives least-loaded balancing).
    busy_ms: float = 0.0
    #: Requests served (drives the per-replica load-skew metric).
    reads_served: int = 0
    builds: int = 0
    #: Outstanding overlapping outages; the replica only starts recovering
    #: when the *last* one ends.
    outage_depth: int = 0
    #: Process incarnation, bumped by every resync; outage-end events that
    #: target an earlier incarnation are stale and must be ignored.
    incarnation: int = 0
    #: Factors of the currently active (possibly overlapping) slowdowns;
    #: ``slow_factor`` always holds their maximum, 1.0 when none are active.
    active_slowdowns: List[float] = field(default_factory=list)

    @property
    def available(self) -> bool:
        """Whether the replica may serve reads (up *and* fully caught up)."""
        return self.state == HEALTHY and self.index is not None


class ReplicaGroup:
    """A shard's replica set behind the ``GpuIndex`` call surface.

    The group owns the shard's authoritative ``(keys, row_ids)`` arrays (kept
    in live-index tie-order via ``export_entries`` after native updates, the
    same discipline the shard router uses) plus the apply log.  Invariant:
    every replica in the ``HEALTHY`` state has applied every logged update,
    so *any* available replica answers reads identically — which is what
    makes read balancing and failover answer-preserving.
    """

    #: The group handles update routing internally (per-replica native
    #: updates or rebuilds), so the router never rebuild-falls-back on it.
    supports_updates = True

    def __init__(
        self,
        shard_id: int,
        keys: np.ndarray,
        row_ids: np.ndarray,
        factory: ShardFactory,
        config: Optional[ReplicationConfig] = None,
        clock: Optional[SimulatedClock] = None,
        device: GpuDevice = RTX_4090,
        key_bits: int = 64,
    ) -> None:
        self.shard_id = int(shard_id)
        self.config = config or ReplicationConfig()
        self.clock = clock or SimulatedClock()
        self.device = device
        self.factory = factory
        self.key_bits = key_bits
        self._key_dtype = np.uint32 if key_bits == 32 else np.uint64
        self.cost_model = CostModel(device)

        #: Authoritative entries, sorted by key (live-index tie-order).
        self.keys = np.asarray(keys, dtype=self._key_dtype).copy()
        self.row_ids = np.asarray(row_ids, dtype=np.uint32).copy()

        #: Apply log: the most recent ``log_capacity`` update batches.
        self.log: List[LogRecord] = []
        self.lsn = 0

        #: Telemetry sink; the deployment points this at its registry.
        self.metrics = None
        #: Span sink; the deployment points this at its tracer.  The default
        #: is the shared disabled tracer, so every emission site is a cheap
        #: ``enabled`` check.
        self.tracer = NULL_TRACER
        #: Durable tier (:class:`repro.store.DeploymentStore`); when attached,
        #: every acknowledged write batch is WAL-logged before its ack and a
        #: recovering replica restores from checkpoint + WAL tail instead of
        #: copying a live peer.
        self.store = None
        self.counters: Dict[str, int] = {}
        #: Closed unavailability windows ``(start_ms, end_ms)``.
        self.unavailability_windows: List[Tuple[float, float]] = []
        self._unavailable_since: Optional[float] = None
        self._rr_cursor = 0
        #: Host-side overhead and slowdown of the most recent read call,
        #: consumed by :meth:`lookup_time_ms`.
        self.last_overhead_ms = 0.0
        self.last_slow_factor = 1.0
        #: Effective service time of the last read when a hedge raced it
        #: (first answer wins); ``None`` keeps the kernel-time formula.
        self.last_read_ms: Optional[float] = None
        #: Whether the last read was abandoned as an explicit partial result
        #: (reliability layer armed; the answer is a deterministic miss the
        #: serving layer masks out of oracle byte-checks).
        self.last_read_unavailable = False
        #: Deployment-wide reliability machinery
        #: (:class:`repro.serve.reliability.ReliabilityState`); ``None``
        #: keeps the PR-2 failover semantics.
        self.reliability = None
        self._read_start_ms: Optional[float] = None
        self._read_deadline_ms: Optional[float] = None

        self.replicas: List[Replica] = []
        self._next_replica_id = 0
        self.build_stats: List[KernelStats] = []
        for _ in range(self.config.replication_factor):
            replica = self._new_replica()
            if replica.index is not None:  # empty groups build no indexes
                self.build_stats.extend(replica.index.build_stats)

    # ------------------------------------------------------------- membership

    def _new_replica(self) -> Replica:
        replica = Replica(replica_id=self._next_replica_id, shard_id=self.shard_id)
        self._next_replica_id += 1
        self._build_replica(replica)
        replica.applied_lsn = self.lsn
        self.replicas.append(replica)
        return replica

    def _build_replica(self, replica: Replica) -> List[KernelStats]:
        """(Re)build one replica's index from the authoritative snapshot."""
        if self.keys.size == 0:
            replica.index = None
            replica.builds += 1
            return []
        keyset = KeySet(
            keys=self.keys.copy(),
            row_ids=self.row_ids.copy(),
            key_bits=self.key_bits,
            description=f"shard {self.shard_id} replica {replica.replica_id}",
        )
        replica.index = self.factory(keyset, self.device)
        replica.builds += 1
        return list(replica.index.build_stats)

    def replica(self, replica_id: int) -> Replica:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise KeyError(f"shard {self.shard_id} has no replica {replica_id}")

    def available_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if replica.available]

    def recovering_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if replica.state == RECOVERING]

    def add_replica(self) -> Replica:
        """Join: build a fresh replica from the current snapshot and serve."""
        replica = self._new_replica()
        self._bump("joins")
        self._maybe_close_window()
        return replica

    def remove_replica(self, replica_id: int) -> Replica:
        """Leave: drop a replica from the group (never the last available one)."""
        replica = self.replica(replica_id)
        remaining = [r for r in self.available_replicas() if r.replica_id != replica_id]
        if replica.available and not remaining:
            raise ValueError(
                f"cannot remove replica {replica_id}: it is the last available "
                f"replica of shard {self.shard_id}"
            )
        self.replicas.remove(replica)
        self._bump("leaves")
        return replica

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])

    # ----------------------------------------------------------- health / I/O

    def _bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + int(amount)

    def crash(self, replica_id: int, now_ms: float) -> None:
        """Take a replica down (its in-memory index survives for warm restart)."""
        replica = self.replica(replica_id)
        replica.outage_depth += 1
        if replica.state == DOWN:
            return  # overlapping crash: the outage deepens, no new transition
        replica.state = DOWN
        self._bump("crashes")
        if not self.available_replicas() and self._unavailable_since is None:
            self._unavailable_since = float(now_ms)

    def process_kill(self, replica_id: int, now_ms: float) -> None:
        """Whole-process crash: the replica's index and apply state die with it.

        Unlike :meth:`crash` (whose in-memory index survives for a warm
        restart), recovery after a process kill must rebuild state from
        scratch — from the durable store when one is attached, else from the
        authoritative snapshot.
        """
        replica = self.replica(replica_id)
        self.crash(replica_id, now_ms)
        replica.index = None
        replica.applied_lsn = 0
        self._bump("process_kills")

    def end_outage(self, replica_id: int, now_ms: float) -> None:
        """One outage of a crashed replica ended; it starts recovering only
        when no overlapping outage is still active, and must resync before
        serving either way."""
        replica = self.replica(replica_id)
        if replica.state == DOWN:
            replica.outage_depth = max(0, replica.outage_depth - 1)
            if replica.outage_depth == 0:
                replica.state = RECOVERING

    def set_slow(self, replica_id: int, slow_factor: float) -> None:
        """Apply a slowdown; overlapping slowdowns hold the worst active factor."""
        replica = self.replica(replica_id)
        replica.active_slowdowns.append(max(1.0, float(slow_factor)))
        replica.slow_factor = max(replica.active_slowdowns)
        self._bump("slowdowns")

    def clear_slow(self, replica_id: int, slow_factor: Optional[float] = None) -> None:
        """End one slowdown (by factor, or the worst when unspecified); the
        replica's speed recovers to the worst *still-active* slowdown."""
        try:
            replica = self.replica(replica_id)
        except KeyError:
            return  # the replica left the group while slowed
        if not replica.active_slowdowns:
            return
        ended = (
            max(1.0, float(slow_factor))
            if slow_factor is not None and max(1.0, float(slow_factor)) in replica.active_slowdowns
            else max(replica.active_slowdowns)
        )
        replica.active_slowdowns.remove(ended)
        replica.slow_factor = (
            max(replica.active_slowdowns) if replica.active_slowdowns else 1.0
        )

    def inject_transient(self, replica_id: int, count: int = 1) -> None:
        self.replica(replica_id).pending_transient += int(count)

    def _maybe_close_window(self) -> None:
        """Close the open unavailability window if a replica is available again."""
        if self._unavailable_since is not None and self.available_replicas():
            window = (self._unavailable_since, self.clock.now_ms)
            self.unavailability_windows.append(window)
            if self.metrics is not None:
                self.metrics.record_unavailability(*window)
            self._unavailable_since = None

    def flush_unavailability(self, now_ms: float) -> None:
        """Report the open unavailability window up to ``now_ms`` and keep it
        open from there, so end-of-stream telemetry includes outages that are
        still in progress without ever double-counting them."""
        if self._unavailable_since is None or now_ms <= self._unavailable_since:
            return
        window = (self._unavailable_since, float(now_ms))
        self.unavailability_windows.append(window)
        if self.metrics is not None:
            self.metrics.record_unavailability(*window)
        self._unavailable_since = float(now_ms)

    # ----------------------------------------------------------------- resync

    def resync(self, replica: Replica, now_ms: Optional[float] = None) -> KernelStats:
        """Catch a recovered replica up: log replay if possible, else snapshot.

        Idempotent: an already-healthy, caught-up replica resyncs as a no-op.
        """
        now_ms = self.clock.now_ms if now_ms is None else float(now_ms)
        self.clock.advance(now_ms)
        parts: List[KernelStats] = []
        if replica.applied_lsn == self.lsn and replica.available:
            return combine(f"serve.resync_s{self.shard_id}r{replica.replica_id}", parts)
        replica.state = RECOVERING

        if self.store is not None and replica.index is None and self.keys.size:
            # Durable restore: a process-killed replica rebuilds from the
            # latest checkpoint plus the WAL tail instead of copying a live
            # peer.  If the durable state trails the group LSN (it should
            # not: every ack was logged first), the paths below top it off.
            parts.extend(self._restore_replica_durable(replica))

        log_start = self.log[0].lsn if self.log else self.lsn + 1
        replayable = (
            replica.index is not None
            and replica.index.supports_updates
            and replica.applied_lsn + 1 >= log_start
        )
        if replayable and replica.applied_lsn < self.lsn:
            for record in self.log:
                if record.lsn <= replica.applied_lsn:
                    continue
                result = replica.index.update_batch(
                    insert_keys=record.insert_keys if record.insert_keys.size else None,
                    insert_row_ids=(
                        record.insert_row_ids if record.insert_keys.size else None
                    ),
                    delete_keys=record.delete_keys if record.delete_keys.size else None,
                )
                parts.append(result.stats)
            self._bump("resyncs_log_replay")
        elif replica.applied_lsn < self.lsn or replica.index is None:
            parts.extend(self._build_replica(replica))
            self._bump("resyncs_snapshot")
        replica.applied_lsn = self.lsn
        replica.state = HEALTHY
        # A resync is a (re)start: it supersedes any outage still scheduled
        # against the old process (emergency restarts cut outages short),
        # outage-end events aimed at that process become stale, and faults
        # injected against it (slowdowns, pending transient errors) die with
        # the process.
        replica.outage_depth = 0
        replica.incarnation += 1
        replica.active_slowdowns.clear()
        replica.slow_factor = 1.0
        replica.pending_transient = 0
        self._maybe_close_window()
        return combine(f"serve.resync_s{self.shard_id}r{replica.replica_id}", parts)

    def _restore_replica_durable(self, replica: Replica) -> List[KernelStats]:
        """Rebuild one replica from the durable store (checkpoint + WAL tail)."""
        recovery = self.store.recover_shard(self.shard_id)
        if recovery.keys.size == 0 and recovery.lsn == 0:
            return []  # nothing durable yet; the snapshot path takes over
        keyset = KeySet(
            keys=recovery.keys.copy(),
            row_ids=recovery.row_ids.copy(),
            key_bits=self.key_bits,
            description=(
                f"shard {self.shard_id} replica {replica.replica_id} (durable restore)"
            ),
        )
        replica.index = self.factory(keyset, self.device)
        replica.builds += 1
        replica.applied_lsn = recovery.lsn
        self._bump("resyncs_durable")
        return list(replica.index.build_stats)

    # ------------------------------------------------------------------ reads

    def _read_candidates(self, exclude: Iterable[int] = ()) -> List[Replica]:
        excluded = set(exclude)
        return [
            replica
            for replica in self.available_replicas()
            if replica.replica_id not in excluded
        ]

    def _choose(self, candidates: List[Replica]) -> Replica:
        if self.config.read_policy == "least_loaded":
            return min(candidates, key=lambda r: (r.busy_ms * r.slow_factor, r.replica_id))
        pick = candidates[self._rr_cursor % len(candidates)]
        self._rr_cursor += 1
        return pick

    def _emergency_restart(self) -> Replica:
        """No replica is available: snapshot-restart one so reads never fail."""
        now = self.clock.now_ms
        if self._unavailable_since is None:
            self._unavailable_since = now
        candidates = [r for r in self.replicas if r.state in (DOWN, RECOVERING)]
        if not candidates:
            raise RuntimeError(f"shard {self.shard_id} has no replicas at all")
        replica = min(candidates, key=lambda r: r.replica_id)
        self.clock.advance(now + self.config.restart_penalty_ms)
        self.resync(replica)  # closes the unavailability window
        self._bump("emergency_restarts")
        self.last_overhead_ms += self.config.restart_penalty_ms
        if self.metrics is not None:
            self.metrics.record_failover(self.config.restart_penalty_ms)
        return replica

    def begin_read(self, start_ms: float, deadline_ms: Optional[float] = None) -> None:
        """Arm the next read with its dispatch time and absolute deadline.

        The serving layer calls this just before the batch's group read so
        the failover loop can abandon retries and restarts that cannot fit
        the remaining deadline budget.  Consumed (and cleared) by the next
        :meth:`_serve_read`; reads without an armed budget are unbounded in
        time (the classic behaviour).
        """
        self._read_start_ms = float(start_ms)
        self._read_deadline_ms = None if deadline_ms is None else float(deadline_ms)

    def _force_restart(self, traced: bool, tracer, base_ms: float) -> None:
        """Every available replica keeps erroring: declare the lowest-id one
        wedged and restart its process (resync clears injected fault state),
        keeping the never-fail read contract with *bounded* work."""
        available = self.available_replicas()
        if not available:
            return  # nothing to restart; the emergency path handles this case
        replica = min(available, key=lambda r: r.replica_id)
        if traced:
            tracer.record_span(
                "replica.restart",
                base_ms + self.last_overhead_ms,
                self.config.restart_penalty_ms,
                category="replication",
                lane=f"shard-{self.shard_id}",
                shard=self.shard_id,
                replica=replica.replica_id,
                outcome="forced_restart",
            )
        self.clock.advance(self.clock.now_ms + self.config.restart_penalty_ms)
        replica.state = RECOVERING  # force the resync past its no-op fast path
        self.resync(replica)
        self._bump("forced_restarts")
        self.last_overhead_ms += self.config.restart_penalty_ms
        if self.metrics is not None:
            self.metrics.record_failover(self.config.restart_penalty_ms)

    def _give_up(self, reason: str, fallback, traced: bool, tracer, base_ms: float):
        """Abandon the read as an explicit partial result (reliability mode).

        The caller sees a deterministic miss-shaped answer plus
        ``last_read_unavailable``; the serving layer masks these requests out
        of oracle byte-checks exactly like shed ones.
        """
        self.last_read_unavailable = True
        self._bump("read_unavailable")
        self._bump(f"read_unavailable_{reason}")
        if self.metrics is not None:
            self.metrics.bump("reads_unavailable")
        if self.reliability is not None:
            self.reliability.bump("read_unavailable")
        if traced:
            tracer.record_span(
                "replica.unavailable",
                base_ms + self.last_overhead_ms,
                0.0,
                category="replication",
                lane=f"shard-{self.shard_id}",
                shard=self.shard_id,
                reason=reason,
            )
        return fallback()

    def _serve_read(self, call, num_requests: int, fallback=None):
        """Pick a replica, failing over past transient errors, and call it.

        When a tracer is armed, every attempt emits a span on the simulated
        timeline: failed attempts as ``replica.attempt`` (failover penalty),
        emergency restarts as ``replica.restart``, and the serving attempt as
        ``replica.read`` with a child ``engine.lookup`` span for the device
        kernel itself.  Spans attach to whatever span is active on the
        tracer's context stack (the router's batch span), so a request trace
        reaches from the coalescer down to the engine.  None of this changes
        counters or answers: tracing is behavior-neutral by construction.

        With the reliability layer armed (:attr:`reliability`), the loop is
        additionally governed by per-shard retry budgets with backed-off,
        jittered retries, per-replica circuit breakers filtering the
        candidate set, a deadline budget armed via :meth:`begin_read`, and
        online-quantile read hedging; reads that cannot be served within
        those bounds return an explicit unavailable answer via ``fallback``.
        Without it, the only change from the classic semantics is that
        all-replicas-erroring rounds are *bounded*
        (``ReplicationConfig.max_failover_rounds``) by a forced restart
        instead of spinning until the error supply drains.
        """
        self.last_overhead_ms = 0.0
        self.last_slow_factor = 1.0
        self.last_read_ms = None
        self.last_read_unavailable = False
        start_ms = self._read_start_ms
        deadline_ms = self._read_deadline_ms
        self._read_start_ms = None
        self._read_deadline_ms = None
        rel = self.reliability
        rel_config = rel.config if rel is not None else None
        partial = rel is not None and rel_config.partial_results and fallback is not None
        breakers = rel is not None and rel_config.breaker_enabled
        tracer = self.tracer
        traced = tracer.enabled
        base_ms = 0.0
        if traced:
            context = tracer.current
            base_ms = context.start_ms if context is not None else self.clock.now_ms
        if start_ms is None:
            start_ms = base_ms if traced else self.clock.now_ms
        now_ms = self.clock.now_ms

        def out_of_time(extra_ms: float) -> bool:
            return (
                deadline_ms is not None
                and start_ms + self.last_overhead_ms + extra_ms > deadline_ms
            )

        tried: List[int] = []
        rounds = 0
        retries = 0
        while True:
            candidates = self._read_candidates(exclude=tried)
            if breakers and candidates:
                admitted = [
                    replica
                    for replica in candidates
                    if rel.breaker(self.shard_id, replica.replica_id).allow(now_ms)
                ]
                if admitted:
                    if len(admitted) < len(candidates):
                        self._bump("breaker_skips", len(candidates) - len(admitted))
                    candidates = admitted
                else:
                    # Every breaker is open: fail open and serve anyway — a
                    # breaker must never cost availability, only steer load.
                    self._bump("breaker_fail_open")
            if not candidates:
                if tried:  # every available replica errored this round
                    rounds += 1
                    if rounds >= self.config.max_failover_rounds:
                        if partial:
                            return self._give_up(
                                "rounds", fallback, traced, tracer, base_ms
                            )
                        self._bump("read_unavailable")
                        self._force_restart(traced, tracer, base_ms)
                    tried = []
                    continue
                # No replica is available at all.
                if partial and not rel_config.allow_emergency_restart:
                    return self._give_up(
                        "no_replicas", fallback, traced, tracer, base_ms
                    )
                if partial and out_of_time(self.config.restart_penalty_ms):
                    return self._give_up(
                        "deadline", fallback, traced, tracer, base_ms
                    )
                if traced:
                    tracer.record_span(
                        "replica.restart",
                        base_ms + self.last_overhead_ms,
                        self.config.restart_penalty_ms,
                        category="replication",
                        lane=f"shard-{self.shard_id}",
                        shard=self.shard_id,
                    )
                replica = self._emergency_restart()
            else:
                replica = self._choose(candidates)
            if replica.pending_transient > 0:
                replica.pending_transient -= 1
                tried.append(replica.replica_id)
                self._bump("failovers")
                self._bump("transient_errors")
                if traced:
                    tracer.record_span(
                        "replica.attempt",
                        base_ms + self.last_overhead_ms,
                        self.config.failover_penalty_ms,
                        category="replication",
                        lane=f"shard-{self.shard_id}",
                        shard=self.shard_id,
                        replica=replica.replica_id,
                        outcome="transient_error",
                    )
                self.last_overhead_ms += self.config.failover_penalty_ms
                if self.metrics is not None:
                    self.metrics.record_failover(self.config.failover_penalty_ms)
                if breakers:
                    rel.breaker(self.shard_id, replica.replica_id).record(
                        now_ms, False
                    )
                if rel is not None:
                    retries += 1
                    if rel.budget(self.shard_id).take(now_ms):
                        rel.bump("retries")
                        self.last_overhead_ms += rel.backoff_ms(self.shard_id, retries)
                    else:
                        rel.bump("retry_budget_exhausted")
                        if self.metrics is not None:
                            self.metrics.bump("retry_budget_exhausted")
                        if partial:
                            return self._give_up(
                                "retry_budget", fallback, traced, tracer, base_ms
                            )
                    if partial and out_of_time(self.config.failover_penalty_ms):
                        return self._give_up(
                            "deadline", fallback, traced, tracer, base_ms
                        )
                continue
            result = call(replica.index)
            self.last_slow_factor = replica.slow_factor
            kernel_ms = self.cost_model.kernel_time_ms(result.stats)
            service_ms = kernel_ms * replica.slow_factor
            effective_ms = service_ms
            hedge_replica = None
            if rel is not None:
                threshold = rel.hedge_threshold_ms()
                if service_ms > threshold:
                    hedge_replica = self._choose_hedge(replica, tried, now_ms)
                if hedge_replica is not None:
                    # The hedge fires once the primary has been out for the
                    # threshold; identical replicas run the same kernel, so
                    # the duplicate's service time only differs by its slow
                    # factor.  First answer wins; the loser's device cost
                    # stays accounted on its replica.
                    hedge_service_ms = kernel_ms * hedge_replica.slow_factor
                    hedge_total_ms = threshold + hedge_service_ms
                    hedge_won = hedge_total_ms < service_ms
                    effective_ms = min(service_ms, hedge_total_ms)
                    hedge_replica.busy_ms += hedge_service_ms
                    self._bump("hedges")
                    self._bump("hedge_wins" if hedge_won else "hedge_losses")
                    rel.bump("hedges")
                    rel.bump("hedge_wins" if hedge_won else "hedge_losses")
                    rel.hedge_waste_ms += (
                        service_ms - effective_ms if hedge_won else hedge_service_ms
                    )
                    if self.metrics is not None:
                        self.metrics.record_hedge(hedge_won)
                    if breakers:
                        rel.breaker(
                            self.shard_id, hedge_replica.replica_id
                        ).record(now_ms, True)
                    if traced:
                        tracer.record_span(
                            "replica.hedge",
                            base_ms + self.last_overhead_ms + threshold,
                            hedge_service_ms,
                            category="replication",
                            lane=f"shard-{self.shard_id}",
                            shard=self.shard_id,
                            replica=hedge_replica.replica_id,
                            primary=replica.replica_id,
                            won=hedge_won,
                            batch_size=num_requests,
                        )
                    self.last_read_ms = effective_ms
                rel.observe_read(effective_ms)
                if breakers:
                    rel.breaker(self.shard_id, replica.replica_id).record(
                        now_ms, service_ms <= rel.slow_threshold_ms()
                    )
            replica.reads_served += int(num_requests)
            replica.busy_ms += service_ms
            self._bump("reads", num_requests)
            if self.metrics is not None:
                self.metrics.record_replica_request(
                    self.shard_id, replica.replica_id, num_requests
                )
            if traced:
                read_span = tracer.record_span(
                    "replica.read",
                    base_ms + self.last_overhead_ms,
                    service_ms,
                    category="replication",
                    lane=f"shard-{self.shard_id}",
                    shard=self.shard_id,
                    replica=replica.replica_id,
                    slow_factor=replica.slow_factor,
                    batch_size=num_requests,
                )
                tracer.record_span(
                    "engine.lookup",
                    base_ms + self.last_overhead_ms,
                    kernel_ms,
                    category="device",
                    lane=f"shard-{self.shard_id}",
                    parent=read_span,
                    shard=self.shard_id,
                    replica=replica.replica_id,
                    engine=getattr(replica.index, "engine", None)
                    or getattr(getattr(replica.index, "config", None), "engine", None),
                )
            return result

    def _choose_hedge(self, primary: Replica, tried: List[int], now_ms: float):
        """Second healthy replica for a hedged read (least-loaded; breakers
        respected strictly — no hedge beats a hedge against a sick replica)."""
        rel = self.reliability
        peers = [
            replica
            for replica in self._read_candidates(exclude=tried)
            if replica.replica_id != primary.replica_id
            and replica.pending_transient == 0
        ]
        if rel is not None and rel.config.breaker_enabled:
            peers = [
                replica
                for replica in peers
                if rel.breaker(self.shard_id, replica.replica_id).allow(now_ms)
            ]
        if not peers:
            return None
        return min(peers, key=lambda r: (r.busy_ms * r.slow_factor, r.replica_id))

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=self._key_dtype)
        if self.keys.size == 0:
            self.last_overhead_ms = 0.0
            self.last_slow_factor = 1.0
            self.last_read_ms = None
            self.last_read_unavailable = False
            self._read_start_ms = None
            self._read_deadline_ms = None
            return LookupResult(
                row_ids=np.full(keys.shape[0], -1, dtype=np.int64),
                match_counts=np.zeros(keys.shape[0], dtype=np.int64),
                stats=KernelStats(name="serve.replica_point_lookup", launches=0),
            )

        def miss() -> LookupResult:
            return LookupResult(
                row_ids=np.full(keys.shape[0], -1, dtype=np.int64),
                match_counts=np.zeros(keys.shape[0], dtype=np.int64),
                stats=KernelStats(name="serve.replica_point_lookup", launches=0),
            )

        return self._serve_read(
            lambda index: index.point_lookup_batch(keys),
            int(keys.shape[0]),
            fallback=miss,
        )

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=self._key_dtype)
        highs = np.asarray(highs, dtype=self._key_dtype)
        if self.keys.size == 0:
            self.last_overhead_ms = 0.0
            self.last_slow_factor = 1.0
            self.last_read_ms = None
            self.last_read_unavailable = False
            self._read_start_ms = None
            self._read_deadline_ms = None
            return RangeLookupResult(
                row_ids=[np.empty(0, dtype=np.uint32) for _ in range(lows.shape[0])],
                stats=KernelStats(name="serve.replica_range_lookup", launches=0),
            )

        def empty() -> RangeLookupResult:
            return RangeLookupResult(
                row_ids=[np.empty(0, dtype=np.uint32) for _ in range(lows.shape[0])],
                stats=KernelStats(name="serve.replica_range_lookup", launches=0),
            )

        return self._serve_read(
            lambda index: index.range_lookup_batch(lows, highs),
            int(lows.shape[0]),
            fallback=empty,
        )

    def lookup_time_ms(self, result) -> float:
        """Simulated time of the last read: device time of the replica that
        served it (scaled by its slow factor) plus failover overhead.  When a
        hedge raced the primary, the effective (first-answer-wins) service
        time recorded by the failover loop wins over the formula."""
        if self.last_read_ms is not None:
            return self.last_read_ms + self.last_overhead_ms
        return (
            self.cost_model.kernel_time_ms(result.stats) * self.last_slow_factor
            + self.last_overhead_ms
        )

    # ----------------------------------------------------------------- writes

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Fan a write out to every up replica; acknowledge at quorum.

        Down replicas miss the write and lag behind (their ``applied_lsn``
        stays put); :meth:`resync` brings them back.  The returned stats sum
        the work of every replica that applied — replicas apply concurrently,
        so the deployment-level makespan accounting stays with the caller.
        """
        insert_keys = (
            np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        # The router already cancels opposing pairs before routing (a no-op
        # here on that path); repeating it keeps *direct* group use on the
        # same batch semantics as every other update surface.
        insert_keys, insert_row_ids, delete_keys = cancel_opposing_updates(
            insert_keys, insert_row_ids, delete_keys
        )

        self.lsn += 1
        self.log.append(
            LogRecord(
                lsn=self.lsn,
                insert_keys=insert_keys.copy(),
                insert_row_ids=insert_row_ids.copy(),
                delete_keys=delete_keys.copy(),
            )
        )
        if len(self.log) > self.config.log_capacity:
            del self.log[: len(self.log) - self.config.log_capacity]
        if self.store is not None:
            # Durability barrier: the WAL append happens before any replica
            # applies and before the quorum ack — an acknowledged write is on
            # disk by definition.
            self.store.log_batch(
                self.shard_id, self.lsn, insert_keys, insert_row_ids, delete_keys
            )

        parts: List[KernelStats] = []
        acked = 0
        any_rebuilt = False
        removed: Optional[int] = None
        up = [replica for replica in self.replicas if replica.state == HEALTHY]
        native = bool(up) and up[0].index is not None and up[0].index.supports_updates

        if not native:
            # Rebuild-fallback replicas (or a fully-down group) need the
            # post-update authoritative snapshot maintained here.
            self.keys, self.row_ids, removed = apply_update_to_entries(
                self.keys, self.row_ids, insert_keys, insert_row_ids, delete_keys
            )

        first_result = None
        for replica in up:
            if native:
                result = replica.index.update_batch(
                    insert_keys=insert_keys if insert_keys.size else None,
                    insert_row_ids=insert_row_ids if insert_keys.size else None,
                    delete_keys=delete_keys if delete_keys.size else None,
                )
                parts.append(result.stats)
                any_rebuilt = any_rebuilt or result.rebuilt
                if first_result is None:
                    first_result = result
            else:
                parts.extend(self._build_replica(replica))
                any_rebuilt = True
            replica.applied_lsn = self.lsn
            acked += 1

        if native:
            # Snapshot a natively-updated replica as the authoritative state
            # so a later rebuild/resync reproduces the live tie-order of
            # duplicates — and the sorted-array maintenance would then be
            # redundant work (mirrors the router's update path).
            removed = first_result.deleted
            try:
                self.keys, self.row_ids = up[0].index.export_entries()
            except UnsupportedOperation:
                self.keys, self.row_ids, removed = apply_update_to_entries(
                    self.keys, self.row_ids, insert_keys, insert_row_ids, delete_keys
                )

        self._bump("writes")
        self._bump("write_acks", acked)
        if acked < min(self.config.quorum, len(self.replicas)):
            self._bump("quorum_failures")
            if self.metrics is not None:
                self.metrics.bump("quorum_failures")

        stats = combine(f"serve.replicated_update_s{self.shard_id}", parts)
        return UpdateResult(
            inserted=int(insert_keys.shape[0]),
            deleted=removed,
            stats=stats,
            rebuilt=any_rebuilt,
        )

    def compact_buckets(self, bucket_ids) -> KernelStats:
        """Compact the same buckets on every caught-up replica.

        Compaction never changes answers, so replicas that miss it (down or
        recovering ones) merely keep longer chains until their next resync —
        the group's read-interchangeability invariant is preserved either
        way.  Replicas whose index type has no chains are skipped.
        """
        parts: List[KernelStats] = []
        for replica in self.replicas:
            if replica.state != HEALTHY or replica.index is None:
                continue
            compact = getattr(replica.index, "compact_buckets", None)
            if callable(compact):
                parts.append(compact(bucket_ids))
        self._bump("compactions")
        return combine(f"serve.compact_s{self.shard_id}", parts)

    def bucket_chain_lengths(self) -> np.ndarray:
        """Chain lengths of the first available chain-based replica.

        Healthy replicas apply identical update batches to identical builds,
        so any one of them is representative of the group's chain debt.
        """
        for replica in self.available_replicas():
            chain_lengths = getattr(replica.index, "bucket_chain_lengths", None)
            if callable(chain_lengths):
                return np.asarray(chain_lengths())
        return np.zeros(0, dtype=np.int64)

    def reload(self, keys: np.ndarray, row_ids: np.ndarray) -> List[KernelStats]:
        """Replace the authoritative snapshot and rebuild every up replica.

        Used by the maintenance worker to heal a degraded shard.  The apply
        log is cleared: a replica that was down across a reload can no longer
        replay, so its next resync takes the snapshot path.
        """
        self.keys = np.asarray(keys, dtype=self._key_dtype).copy()
        self.row_ids = np.asarray(row_ids, dtype=np.uint32).copy()
        self.lsn += 1
        self.log.clear()
        parts: List[KernelStats] = []
        for replica in self.replicas:
            if replica.state == HEALTHY:
                parts.extend(self._build_replica(replica))
                replica.applied_lsn = self.lsn
        if self.store is not None:
            # The reload bumped the LSN without a WAL record; checkpointing
            # here keeps the durable state exactly at the group LSN.
            epoch = next(
                (
                    int(getattr(replica.index, "epoch", 0))
                    for replica in self.available_replicas()
                ),
                0,
            )
            self.store.checkpoint(self.shard_id, self.keys, self.row_ids, self.lsn, epoch)
        self._bump("reloads")
        return parts

    # ------------------------------------------------------------- index-like

    def export_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        # No defensive copy: the authoritative arrays are only ever rebound
        # (update/reload build fresh arrays), so handing out references is
        # safe and saves two O(entries) copies per routed write.
        return self.keys, self.row_ids

    @property
    def build_time_ms(self) -> float:
        """Replicas bulk-load concurrently: the group is ready at the makespan."""
        times = [
            replica.index.build_time_ms
            for replica in self.replicas
            if replica.index is not None
        ]
        return max(times) if times else 0.0

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        for replica in self.replicas:
            if replica.index is not None:
                footprint.add(
                    f"replica_{replica.replica_id}",
                    replica.index.memory_footprint().total_bytes,
                )
        return footprint

    def degradation_score(self) -> float:
        scores = [
            replica.index.degradation_score()
            for replica in self.replicas
            if replica.available
        ]
        return max(scores) if scores else 0.0

    def __len__(self) -> int:
        return self.num_entries

    # ------------------------------------------------------------------ report

    def replica_loads(self) -> np.ndarray:
        """Requests served per replica, current membership order."""
        return np.asarray([r.reads_served for r in self.replicas], dtype=np.int64)

    def unavailable_ms(self) -> float:
        total = sum(end - start for start, end in self.unavailability_windows)
        if self._unavailable_since is not None:
            total += self.clock.now_ms - self._unavailable_since
        return float(total)

    def snapshot(self) -> dict:
        report = {
            "shard_id": self.shard_id,
            "replicas": len(self.replicas),
            "available": len(self.available_replicas()),
            "lsn": self.lsn,
            "unavailable_ms": self.unavailable_ms(),
            "states": {r.replica_id: r.state for r in self.replicas},
        }
        report.update(self.counters)
        return report


class ReplicatedShardRouter(ShardRouter):
    """A shard router whose shards are replica groups instead of bare indexes.

    Scatter/gather, update routing and the authoritative-array discipline are
    inherited unchanged — the group plugs into the ``shard.index`` slot and
    handles balancing, fan-out and failover internally.
    """

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: np.ndarray,
        factory: ShardFactory,
        num_shards: int,
        partitioner: str = "range",
        key_bits: int = 64,
        device: GpuDevice = RTX_4090,
        engine: str = "vector",
        replication: Optional[ReplicationConfig] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.replication = replication or ReplicationConfig()
        self.clock = clock or SimulatedClock()
        self.groups: Dict[int, ReplicaGroup] = {}
        super().__init__(
            keys,
            row_ids,
            factory=factory,
            num_shards=num_shards,
            partitioner=partitioner,
            key_bits=key_bits,
            device=device,
            engine=engine,
        )

    def _build_shard(self, shard) -> List[KernelStats]:
        if shard.num_entries == 0:
            shard.index = None
            shard.builds += 1
            return []
        group = self.groups.get(shard.shard_id)
        if group is None:
            group = ReplicaGroup(
                shard.shard_id,
                shard.keys,
                shard.row_ids,
                factory=self.factory,
                config=self.replication,
                clock=self.clock,
                device=self.device,
                key_bits=self.key_bits,
            )
            self.groups[shard.shard_id] = group
            stats = list(group.build_stats)
        else:
            # Rebuild request (maintenance healing): reload the existing group
            # in place so replica membership and failure state survive.
            stats = group.reload(shard.keys, shard.row_ids)
        shard.index = group
        shard.builds += 1
        return stats

    # --------------------------------------------------------------- lifecycle

    @property
    def supports_resharding(self) -> bool:
        """Splitting/merging replica groups would have to re-home apply logs
        and failure state per replica; not supported (yet)."""
        return False

    def begin_shard_rebuild(self, shard_id: int) -> KernelStats:
        """Mark a group rebuild in flight (no replacement copy is buffered).

        A replica group rebuilds *rolling* — each replica reloads from the
        authoritative snapshot while its peers keep serving — so the begin
        phase has nothing to build; the reload happens at commit.  The base
        class's behaviour (building a bare inner index and swapping it over
        the group) would silently drop the group's replication state.
        """
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} already has a rebuild in flight")
        shard.pending_rebuild = True
        shard.pending_version = shard.version
        return KernelStats(name=f"serve.rebuild_shard_{shard_id}", launches=0)

    def commit_shard_rebuild(self, shard_id: int) -> None:
        """Reload the replica group in place, preserving its membership."""
        shard = self.shards[int(shard_id)]
        if not shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} has no rebuild in flight")
        shard.pending_rebuild = False
        self._build_shard(shard)

    def rebuild_shard(self, shard_id: int, mode: str = "double_buffered") -> KernelStats:
        """Reload the shard's replica group in place (both modes).

        A replica group is inherently double-buffered: each replica rebuilds
        from the authoritative snapshot while its peers keep serving reads,
        so there is never an offline window and no second full shard copy to
        buffer — ``stop_the_world`` is accepted for interface compatibility
        but cannot make a replicated shard unavailable.
        """
        if mode not in ("double_buffered", "stop_the_world"):
            raise ValueError(f"unknown rebuild mode {mode!r}")
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            self.abort_shard_rebuild(shard_id)  # superseded two-phase rebuild
        stats = combine(f"serve.rebuild_shard_{shard_id}", self._build_shard(shard))
        self.rebuild_peak_bytes = max(
            self.rebuild_peak_bytes, self.memory_footprint_bytes()
        )
        return stats

    # ------------------------------------------------------------- membership

    def rebalance_replicas(self, replication_factor: int) -> None:
        """Grow or shrink every group to ``replication_factor`` replicas.

        The replication config follows the new size, so the majority-quorum
        maths and the reported factor stay true to the actual membership.
        """
        import dataclasses

        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.replication = dataclasses.replace(
            self.replication, replication_factor=replication_factor
        )
        for group in self.groups.values():
            group.config = self.replication
            while len(group.replicas) < replication_factor:
                group.add_replica()
            while len(group.replicas) > replication_factor:
                spare = [r for r in group.replicas if not r.available]
                victim = spare[-1] if spare else group.replicas[-1]
                group.remove_replica(victim.replica_id)

    # ---------------------------------------------------------------- reports

    def replica_load_skew(self) -> float:
        """Max-over-mean request load across every replica of every shard."""
        from repro.serve.metrics import shard_skew

        loads = [
            int(load) for group in self.groups.values() for load in group.replica_loads()
        ]
        return shard_skew(np.asarray(loads, dtype=np.int64)) if loads else 1.0

    def replication_snapshot(self) -> dict:
        groups = [group.snapshot() for group in self.groups.values()]
        totals: Dict[str, float] = {}
        for group in self.groups.values():
            for counter, value in group.counters.items():
                totals[counter] = totals.get(counter, 0) + value
        return {
            "replication_factor": self.replication.replication_factor,
            "read_policy": self.replication.read_policy,
            "write_quorum": self.replication.quorum,
            "unavailable_ms": sum(group.unavailable_ms() for group in self.groups.values()),
            "replica_load_skew": self.replica_load_skew(),
            "groups": groups,
            **totals,
        }


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault against a specific replica."""

    at_ms: float
    kind: str  # "crash" | "process_kill" | "slow" | "transient"
    shard_id: int
    replica_id: int
    #: Outage / slowdown length (crash and slow events).
    duration_ms: float = 0.0
    #: Execution-time multiplier while a slow event is active.
    slow_factor: float = 4.0
    #: Read attempts that fail before the replica behaves again (transient).
    error_count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "process_kill", "slow", "transient"):
            raise ValueError(f"unknown failure kind {self.kind!r}")


class FailureInjector:
    """Replays a failure schedule against a replicated router's groups.

    Driven by the simulated clock: :meth:`poll` applies every event (and
    every crash/slow expiry) due by ``now_ms``, in timestamp order, and
    returns human-readable transition records.  Crashed replicas transition
    to ``RECOVERING`` when their outage ends; actually resyncing them is the
    maintenance worker's job (or the group's emergency-restart path).
    """

    def __init__(self, router: ReplicatedShardRouter, events: Sequence[FailureEvent]) -> None:
        self.router = router
        self._heap: List[Tuple[float, int, str, FailureEvent, Optional[int]]] = []
        self._sequence = 0
        for event in sorted(events, key=lambda e: e.at_ms):
            self._push(event.at_ms, "start", event)
        #: Every transition applied so far, as ``(time_ms, description)``.
        self.log: List[Tuple[float, str]] = []
        #: When set (a :class:`repro.obs.telemetry.TelemetryRegistry`),
        #: :meth:`poll` publishes ``fault_active_<kind>`` gauges so traces
        #: and the time-series sampler show failure windows without parsing
        #: schedules.
        self.telemetry = None
        self._active: Dict[str, int] = {}

    def _push(
        self,
        at_ms: float,
        phase: str,
        event: FailureEvent,
        incarnation: Optional[int] = None,
    ) -> None:
        heapq.heappush(
            self._heap, (float(at_ms), self._sequence, phase, event, incarnation)
        )
        self._sequence += 1

    @property
    def pending(self) -> int:
        return len(self._heap)

    def adopt_pending_ends(self, predecessor: "FailureInjector") -> None:
        """Carry over a replaced injector's not-yet-fired fault expiries.

        Re-arming a new schedule must not orphan the end events of faults the
        old schedule already applied — a crashed replica would otherwise stay
        down forever.  Unapplied *start* events of the old schedule are
        intentionally dropped (the caller replaced that future)."""
        for at_ms, _, phase, event, incarnation in predecessor._heap:
            if phase == "end":
                self._push(at_ms, "end", event, incarnation)

    def poll(self, now_ms: float) -> List[Tuple[float, str]]:
        """Apply all transitions due by ``now_ms``; returns the new ones."""
        self.router.clock.advance(now_ms)
        applied: List[Tuple[float, str]] = []
        while self._heap and self._heap[0][0] <= now_ms:
            at_ms, _, phase, event, incarnation = heapq.heappop(self._heap)
            group = self.router.groups.get(event.shard_id)
            if group is None:
                continue
            try:
                description = self._apply(group, at_ms, phase, event, incarnation)
            except KeyError:
                continue  # the replica left the group before the event fired
            if description is not None:
                applied.append((at_ms, description))
        self.log.extend(applied)
        self._publish_gauges()
        return applied

    def _publish_gauges(self) -> None:
        if self.telemetry is None:
            return
        for kind in ("crash", "process_kill", "slow"):
            self.telemetry.gauge(f"fault_active_{kind}").set(
                float(self._active.get(kind, 0))
            )
        pending = sum(
            replica.pending_transient
            for group in self.router.groups.values()
            for replica in group.replicas
        )
        self.telemetry.gauge("fault_active_transient").set(float(pending))

    def _apply(
        self,
        group: ReplicaGroup,
        at_ms: float,
        phase: str,
        event: FailureEvent,
        incarnation: Optional[int],
    ) -> Optional[str]:
        target = f"s{event.shard_id}r{event.replica_id}"
        if phase == "end":
            # The scheduled window is over either way (a superseding restart
            # only ended it early), so the active-fault gauge always drops.
            if event.kind in ("crash", "process_kill", "slow"):
                self._active[event.kind] = max(
                    0, self._active.get(event.kind, 0) - 1
                )
            # A restart (resync) since the fault started supersedes it; its
            # end event must not cut a *newer* fault on the fresh process
            # short.
            if group.replica(event.replica_id).incarnation != incarnation:
                return None
            if event.kind in ("crash", "process_kill"):
                group.end_outage(event.replica_id, at_ms)
                return f"{target} outage over (recovering)"
            group.clear_slow(event.replica_id, event.slow_factor)
            return f"{target} back to full speed"
        if event.kind in ("crash", "process_kill", "slow"):
            self._active[event.kind] = self._active.get(event.kind, 0) + 1
        if event.kind == "crash":
            group.crash(event.replica_id, at_ms)
            self._push(
                at_ms + event.duration_ms,
                "end",
                event,
                incarnation=group.replica(event.replica_id).incarnation,
            )
            return f"{target} crashed for {event.duration_ms:g}ms"
        if event.kind == "process_kill":
            group.process_kill(event.replica_id, at_ms)
            self._push(
                at_ms + event.duration_ms,
                "end",
                event,
                incarnation=group.replica(event.replica_id).incarnation,
            )
            return f"{target} process killed for {event.duration_ms:g}ms"
        if event.kind == "slow":
            group.set_slow(event.replica_id, event.slow_factor)
            self._push(
                at_ms + event.duration_ms,
                "end",
                event,
                incarnation=group.replica(event.replica_id).incarnation,
            )
            return f"{target} slowed x{event.slow_factor:g} for {event.duration_ms:g}ms"
        group.inject_transient(event.replica_id, event.error_count)
        return f"{target} will throw {event.error_count} transient error(s)"
