"""Shard router: scatter/gather over per-shard index instances.

A :class:`ShardRouter` owns one :class:`~repro.baselines.base.GpuIndex`
instance per shard plus the authoritative key/rowID arrays each shard was
built from.  Point-lookup batches are scattered by the partitioner, answered
per shard, and gathered back into request order; range lookups are scattered
only to the shards whose key ranges overlap the query interval.  Updates are
routed the same way — shards whose index type supports native updates apply
them in place, all others are rebuilt from the (updated) authoritative
arrays, which is also the primitive the background maintenance worker uses to
heal degraded shards.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UnsupportedOperation,
    UpdateResult,
    cancel_opposing_updates,
    delete_one_per_key,
)
from repro.core.config import validate_engine
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats, combine
from repro.obs.trace import NULL_TRACER
from repro.serve.partition import (
    Partitioner,
    make_partitioner,
    negative_key_mask,
    routing_keys,
)
from repro.workloads.keygen import KeySet

#: Factory building one shard's index from its keyset (harness signature).
ShardFactory = Callable[[KeySet, GpuDevice], GpuIndex]


def apply_update_to_entries(
    keys: np.ndarray,
    row_ids: np.ndarray,
    insert_keys: np.ndarray,
    insert_row_ids: np.ndarray,
    delete_keys: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, int]":
    """Apply an update slice to sorted authoritative ``(keys, row_ids)`` arrays.

    Deletes remove one occurrence per delete key (cgRXu's semantics, via
    :func:`~repro.baselines.base.delete_one_per_key`); inserts land behind
    existing duplicates of the same key.  Returns the new arrays plus the
    number of entries actually removed.  Shared by the shard router and the
    replication layer so every authoritative copy agrees byte-for-byte.
    """
    keys, row_ids, removed = delete_one_per_key(keys, row_ids, delete_keys)
    if insert_keys.size:
        # np.insert places same-position values in argument order, so an
        # unsorted batch would break the sorted invariant; sort it first.
        order = np.argsort(insert_keys, kind="stable")
        insert_keys = insert_keys[order]
        insert_row_ids = insert_row_ids[order]
        positions = np.searchsorted(keys, insert_keys, side="right")
        keys = np.insert(keys, positions, insert_keys)
        row_ids = np.insert(row_ids, positions, insert_row_ids)
    return keys, row_ids, removed




@dataclass
class ShardCall:
    """Per-shard breakdown of the last scattered batch (for skew accounting)."""

    shard_id: int
    batch_size: int
    stats: KernelStats


@dataclass
class _Shard:
    """One shard: its index instance and the authoritative entry arrays."""

    shard_id: int
    #: Authoritative keys, kept sorted ascending.
    keys: np.ndarray
    #: RowIDs aligned with ``keys``.
    row_ids: np.ndarray
    index: Optional[GpuIndex] = None
    #: Number of rebuilds this shard has seen (bulk load included).
    builds: int = 0
    #: Replacement index of an in-flight double-buffered rebuild.  While it
    #: exists both generations are resident, which is exactly the peak the
    #: deployment's memory accounting must expose.
    pending_index: Optional[GpuIndex] = None
    #: True between ``begin_shard_rebuild`` and its commit/abort (the
    #: replacement of an empty shard is ``None`` yet still pending).
    pending_rebuild: bool = False
    #: Bumped on every authoritative mutation; lets a rebuild commit detect
    #: updates that landed while the replacement was building.
    version: int = 0
    #: ``version`` the in-flight replacement was built from.
    pending_version: int = -1
    #: In-flight reshard (``"split"`` or ``"merge"``) whose replacement
    #: indexes live in :attr:`reshard_indexes` until commit/abort.  Like a
    #: rebuild's pending buffer, both generations are resident meanwhile.
    reshard_kind: Optional[str] = None
    #: Split key of an in-flight split.
    reshard_key: int = 0
    #: Replacement indexes: ``(left, right)`` for a split, ``(combined,)``
    #: for a merge (``None`` entries for empty halves).
    reshard_indexes: tuple = ()
    #: ``version`` the reshard replacement(s) were built from.
    reshard_version: int = -1
    #: Right-neighbour ``version`` an in-flight merge was built from.
    reshard_partner_version: int = -1

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])


class ShardRouter:
    """Range- or hash-partitioned deployment of one index type."""

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: np.ndarray,
        factory: ShardFactory,
        num_shards: int,
        partitioner: str = "range",
        key_bits: int = 64,
        device: GpuDevice = RTX_4090,
        engine: str = "vector",
    ) -> None:
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        #: Scatter/gather execution engine (``"vector"`` scatters range
        #: batches with one vectorized span computation; answers identical).
        self.engine = validate_engine(engine)
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        self._key_dtype = np.uint32 if key_bits == 32 else np.uint64
        self.device = device
        self.factory = factory

        keys = np.asarray(keys, dtype=self._key_dtype)
        row_ids = np.asarray(row_ids, dtype=np.uint32)
        self.partitioner: Partitioner = make_partitioner(partitioner, keys, num_shards)

        shard_ids = self.partitioner.shard_of(keys)
        self.shards: List[_Shard] = []
        for shard_id in range(self.partitioner.num_shards):
            member = shard_ids == shard_id
            shard_keys = keys[member]
            shard_rows = row_ids[member]
            order = np.argsort(shard_keys, kind="stable")
            shard = _Shard(
                shard_id=shard_id,
                keys=shard_keys[order],
                row_ids=shard_rows[order],
            )
            self._build_shard(shard)
            self.shards.append(shard)

        #: Span sink; the deployment points this at its tracer (the shared
        #: disabled tracer by default, so emission sites cost one flag check).
        self.tracer = NULL_TRACER
        #: Durable tier; when attached, every acknowledged write batch of a
        #: plain (unreplicated) shard is WAL-logged here before it returns.
        #: Replica groups carry their own store reference and log themselves.
        self.store = None
        #: Per-shard breakdown of the most recent scattered call.
        self.last_calls: List[ShardCall] = []
        #: Shards whose read came back as an explicit partial result on the
        #: most recent scattered call (reliability layer armed; their gather
        #: positions carry deterministic miss answers).
        self.last_unavailable_shards: List[int] = []
        #: Largest deployment footprint observed during a rebuild — for
        #: double-buffered rebuilds this includes the window in which both
        #: shard generations were resident.
        self.rebuild_peak_bytes: int = 0
        #: Bumped on every committed split/merge; serving loops compare it to
        #: invalidate routing decisions cached under the old topology.
        self.topology_version: int = 0
        #: Committed split/merge counts (for reports and telemetry).
        self.reshard_counts: Dict[str, int] = {"split": 0, "merge": 0}

    # -------------------------------------------------------------- structure

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    def shard_sizes(self) -> np.ndarray:
        """Authoritative entry count per shard (drives the skew metric)."""
        return np.asarray([shard.num_entries for shard in self.shards], dtype=np.int64)

    @property
    def num_entries(self) -> int:
        return int(self.shard_sizes().sum())

    def build_time_ms(self) -> float:
        """Simulated bulk-load time: shards build concurrently, so the makespan."""
        times = [
            shard.index.build_time_ms for shard in self.shards if shard.index is not None
        ]
        return max(times) if times else 0.0

    def _make_index(self, shard: _Shard) -> Optional[GpuIndex]:
        """Build an index instance from the shard's authoritative arrays.

        ``None`` for an empty shard (lookups into it are trivial misses).
        """
        if shard.num_entries == 0:
            return None
        keyset = KeySet(
            keys=shard.keys.copy(),
            row_ids=shard.row_ids.copy(),
            key_bits=self.key_bits,
            description=f"shard {shard.shard_id}",
        )
        return self.factory(keyset, self.device)

    def _build_shard(self, shard: _Shard) -> List[KernelStats]:
        """(Re)build one shard's index in place from its authoritative arrays."""
        shard.index = self._make_index(shard)
        shard.builds += 1
        return list(shard.index.build_stats) if shard.index is not None else []

    # --------------------------------------------------------------- lifecycle

    def _make_replacement(self, shard: _Shard) -> Optional[GpuIndex]:
        """Build a shard's replacement index for a double-buffered rebuild.

        Indexes with a snapshot lifecycle (cgRXu) are rebuilt through
        ``snapshot()``/``build_from_snapshot()`` so the replacement carries
        the epoch lineage (``epoch + 1``); everything else is rebuilt from
        the authoritative arrays, which track the live index's entries
        byte-for-byte either way.
        """
        live = shard.index
        if (
            live is not None
            and shard.num_entries > 0
            and live.supports_updates
            and hasattr(live, "snapshot")
            and hasattr(live, "build_from_snapshot")
        ):
            # Only native updaters rebuild via their own snapshot: their live
            # entries track every write.  A rebuild-fallback index (cgRX) is
            # rebuilt from the authoritative arrays, which may already be
            # ahead of the live index within this very update.
            return live.build_from_snapshot(live.snapshot(), device=self.device)
        # Empty shards (or index types without a snapshot lifecycle) rebuild
        # from the authoritative arrays; an emptied shard's replacement is
        # simply no index at all.
        return self._make_index(shard)

    def begin_shard_rebuild(self, shard_id: int) -> KernelStats:
        """Phase one of a double-buffered rebuild: build the replacement.

        The live index keeps serving; the replacement lives in the shard's
        rebuild buffer (visible in the deployment's memory footprint) until
        :meth:`commit_shard_rebuild` swaps it in or
        :meth:`abort_shard_rebuild` drops it.
        """
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} already has a rebuild in flight")
        shard.pending_index = self._make_replacement(shard)
        shard.pending_rebuild = True
        shard.pending_version = shard.version
        build_stats = (
            list(shard.pending_index.build_stats)
            if shard.pending_index is not None
            else []
        )
        return combine(f"serve.rebuild_shard_{shard_id}", build_stats)

    def commit_shard_rebuild(self, shard_id: int) -> None:
        """Phase two: atomically swap the replacement in (zero unavailability).

        Every call the shard's index answered before this point was served
        by the old generation; every later call by the new one — there is no
        instant at which the shard has no index.  Updates that landed while
        the replacement was building (the shard's version moved past the one
        the replacement was built from) trigger a catch-up rebuild from the
        current state before the swap, so a commit can never lose writes.
        """
        shard = self.shards[int(shard_id)]
        if not shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} has no rebuild in flight")
        if shard.version != shard.pending_version:
            shard.pending_index = self._make_replacement(shard)
            shard.pending_version = shard.version
        shard.index = shard.pending_index
        shard.pending_index = None
        shard.pending_rebuild = False
        shard.builds += 1

    def abort_shard_rebuild(self, shard_id: int) -> None:
        """Drop an in-flight replacement without swapping it in."""
        shard = self.shards[int(shard_id)]
        shard.pending_index = None
        shard.pending_rebuild = False

    def rebuild_shard(self, shard_id: int, mode: str = "double_buffered") -> KernelStats:
        """Rebuild one shard from scratch; returns the build work performed.

        ``double_buffered`` (default) builds the replacement off the request
        path and swaps it in atomically — the shard serves throughout, at
        the price of both generations being resident during the build.
        ``stop_the_world`` takes the shard offline for the build (the
        pre-lifecycle behaviour); the caller accounts the outage window
        against availability.
        """
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            # An immediate full rebuild supersedes a replacement someone
            # started via the explicit two-phase API: it would be built
            # from the same (or staler) state anyway.
            self.abort_shard_rebuild(shard_id)
        if mode == "double_buffered":
            stats = self.begin_shard_rebuild(shard_id)
            self.rebuild_peak_bytes = max(
                self.rebuild_peak_bytes, self.memory_footprint_bytes()
            )
            self.commit_shard_rebuild(shard_id)
            return stats
        if mode != "stop_the_world":
            raise ValueError(f"unknown rebuild mode {mode!r}")
        shard.index = None  # offline for the duration of the build
        build_stats = self._build_shard(shard)
        self.rebuild_peak_bytes = max(
            self.rebuild_peak_bytes, self.memory_footprint_bytes()
        )
        return combine(f"serve.rebuild_shard_{shard_id}", build_stats)

    def compact_shard(self, shard_id: int, max_buckets: int = 64) -> Optional[KernelStats]:
        """Compact the hottest-chained buckets of one shard.

        The cheap first maintenance tier: fold the longest node chains of a
        chain-based index (cgRXu, or every replica of a cgRXu replica group)
        back into minimal chains.  ``None`` when the shard is empty, its
        index type has no chains, or no bucket is chained at all.
        """
        shard = self.shards[int(shard_id)]
        index = shard.index
        if index is None:
            return None
        compact = getattr(index, "compact_buckets", None)
        chain_lengths = getattr(index, "bucket_chain_lengths", None)
        if not callable(compact) or not callable(chain_lengths):
            return None
        lengths = np.asarray(chain_lengths())
        chained = np.nonzero(lengths > 1)[0]
        if chained.size == 0:
            return None
        hottest = chained[np.argsort(lengths[chained], kind="stable")[::-1]]
        return compact(hottest[: int(max_buckets)])

    # --------------------------------------------------------------- resharding

    @property
    def supports_resharding(self) -> bool:
        """Whether the deployment can split/merge shards in place."""
        return self.partitioner.supports_resharding

    def _build_from_slice(
        self, label: str, keys: np.ndarray, row_ids: np.ndarray, lineage: Optional[GpuIndex]
    ) -> Optional[GpuIndex]:
        """Build a replacement index from an authoritative-array slice.

        When the live index carries the snapshot lifecycle (cgRXu), the
        replacement is built through a sliced snapshot so it keeps the epoch
        lineage (``epoch + 1``), exactly like a double-buffered rebuild;
        otherwise it is built through the shard factory.  ``None`` for an
        empty slice.
        """
        if keys.shape[0] == 0:
            return None
        if (
            lineage is not None
            and hasattr(lineage, "snapshot")
            and hasattr(lineage, "build_from_snapshot")
        ):
            snapshot = lineage.snapshot()
            sliced = dataclasses.replace(
                snapshot, keys=keys.copy(), row_ids=row_ids.copy()
            )
            return lineage.build_from_snapshot(sliced, device=self.device)
        keyset = KeySet(
            keys=keys.copy(),
            row_ids=row_ids.copy(),
            key_bits=self.key_bits,
            description=label,
        )
        return self.factory(keyset, self.device)

    def _check_reshardable(self, shard: _Shard) -> None:
        if not self.supports_resharding:
            raise ValueError(
                f"{self.partitioner.kind} partitioner cannot reshard in place"
            )
        if shard.pending_rebuild or shard.reshard_kind is not None:
            raise ValueError(
                f"shard {shard.shard_id} already has a rebuild or reshard in flight"
            )

    @staticmethod
    def _split_position(shard: _Shard, split_key: int) -> int:
        return int(
            np.searchsorted(shard.keys, shard.keys.dtype.type(split_key), side="left")
        )

    def begin_shard_split(self, shard_id: int, split_key: Optional[int] = None) -> KernelStats:
        """Phase one of a zero-downtime split: build both half replacements.

        The live shard keeps serving; the halves sit in the shard's reshard
        buffer (counted in the memory footprint) until
        :meth:`commit_shard_split`.  ``split_key`` defaults to the shard's
        median stored key; it must divide the stored entries so both halves
        are non-empty at build time.
        """
        shard = self.shards[int(shard_id)]
        self._check_reshardable(shard)
        if shard.num_entries < 2:
            raise ValueError(f"shard {shard_id} is too small to split")
        if split_key is None:
            split_key = int(shard.keys[shard.num_entries // 2])
        split_key = max(int(split_key), 0)
        position = self._split_position(shard, split_key)
        if position <= 0 or position >= shard.num_entries:
            raise ValueError("split key does not divide the shard's entries")
        left = self._build_from_slice(
            f"shard {shard_id}L",
            shard.keys[:position],
            shard.row_ids[:position],
            shard.index,
        )
        right = self._build_from_slice(
            f"shard {shard_id}R",
            shard.keys[position:],
            shard.row_ids[position:],
            shard.index,
        )
        shard.reshard_kind = "split"
        shard.reshard_key = split_key
        shard.reshard_indexes = (left, right)
        shard.reshard_version = shard.version
        return combine(
            f"serve.split_shard_{shard_id}",
            [s for half in (left, right) if half is not None for s in half.build_stats],
        )

    def commit_shard_split(self, shard_id: int) -> None:
        """Phase two: atomically replace the shard with its two halves.

        The old shard serves every call up to this point and the halves every
        later one — no unavailability window.  If updates landed since the
        halves were built (version moved), they are rebuilt from the current
        authoritative arrays first, so the commit can never lose writes.
        """
        shard_id = int(shard_id)
        shard = self.shards[shard_id]
        if shard.reshard_kind != "split":
            raise ValueError(f"shard {shard_id} has no split in flight")
        split_key = shard.reshard_key
        left, right = shard.reshard_indexes
        if shard.version != shard.reshard_version:
            position = self._split_position(shard, split_key)
            left = self._build_from_slice(
                f"shard {shard_id}L",
                shard.keys[:position],
                shard.row_ids[:position],
                shard.index,
            )
            right = self._build_from_slice(
                f"shard {shard_id}R",
                shard.keys[position:],
                shard.row_ids[position:],
                shard.index,
            )
        position = self._split_position(shard, split_key)
        self.partitioner.split_at(shard_id, split_key)
        left_shard = _Shard(
            shard_id=shard_id,
            keys=shard.keys[:position].copy(),
            row_ids=shard.row_ids[:position].copy(),
            index=left,
            builds=shard.builds + 1,
        )
        right_shard = _Shard(
            shard_id=shard_id + 1,
            keys=shard.keys[position:].copy(),
            row_ids=shard.row_ids[position:].copy(),
            index=right,
            builds=shard.builds + 1,
        )
        self.shards[shard_id : shard_id + 1] = [left_shard, right_shard]
        self._renumber_shards()
        self.reshard_counts["split"] += 1
        self.topology_version += 1

    def begin_shard_merge(self, shard_id: int) -> KernelStats:
        """Phase one of a zero-downtime merge of ``shard_id`` and its right
        neighbour: build the combined replacement off the request path."""
        shard_id = int(shard_id)
        if shard_id >= len(self.shards) - 1:
            raise ValueError(f"shard {shard_id} has no right neighbour to merge")
        left, right = self.shards[shard_id], self.shards[shard_id + 1]
        self._check_reshardable(left)
        self._check_reshardable(right)
        # Left keys all sort below the boundary the right shard starts at,
        # so concatenation preserves the sorted invariant.
        combined = self._build_from_slice(
            f"shard {shard_id}M",
            np.concatenate([left.keys, right.keys]),
            np.concatenate([left.row_ids, right.row_ids]),
            left.index if left.index is not None else right.index,
        )
        left.reshard_kind = "merge"
        left.reshard_indexes = (combined,)
        left.reshard_version = left.version
        left.reshard_partner_version = right.version
        return combine(
            f"serve.merge_shard_{shard_id}",
            list(combined.build_stats) if combined is not None else [],
        )

    def commit_shard_merge(self, shard_id: int) -> None:
        """Phase two: atomically replace both shards with the merged one,
        rebuilding first if either side took writes since the build."""
        shard_id = int(shard_id)
        left = self.shards[shard_id]
        if left.reshard_kind != "merge":
            raise ValueError(f"shard {shard_id} has no merge in flight")
        right = self.shards[shard_id + 1]
        (combined,) = left.reshard_indexes
        if (
            left.version != left.reshard_version
            or right.version != left.reshard_partner_version
        ):
            combined = self._build_from_slice(
                f"shard {shard_id}M",
                np.concatenate([left.keys, right.keys]),
                np.concatenate([left.row_ids, right.row_ids]),
                left.index if left.index is not None else right.index,
            )
        self.partitioner.merge_with_next(shard_id)
        merged = _Shard(
            shard_id=shard_id,
            keys=np.concatenate([left.keys, right.keys]),
            row_ids=np.concatenate([left.row_ids, right.row_ids]),
            index=combined,
            builds=max(left.builds, right.builds) + 1,
        )
        self.shards[shard_id : shard_id + 2] = [merged]
        self._renumber_shards()
        self.reshard_counts["merge"] += 1
        self.topology_version += 1

    def abort_reshard(self, shard_id: int) -> None:
        """Drop an in-flight split/merge replacement without committing."""
        shard = self.shards[int(shard_id)]
        shard.reshard_kind = None
        shard.reshard_indexes = ()
        shard.reshard_version = -1
        shard.reshard_partner_version = -1

    def split_shard(self, shard_id: int, split_key: Optional[int] = None) -> KernelStats:
        """Build-and-commit split (both phases; peak footprint recorded)."""
        stats = self.begin_shard_split(shard_id, split_key)
        self.rebuild_peak_bytes = max(
            self.rebuild_peak_bytes, self.memory_footprint_bytes()
        )
        self.commit_shard_split(shard_id)
        return stats

    def merge_shards(self, shard_id: int) -> KernelStats:
        """Build-and-commit merge of ``shard_id`` with its right neighbour."""
        stats = self.begin_shard_merge(shard_id)
        self.rebuild_peak_bytes = max(
            self.rebuild_peak_bytes, self.memory_footprint_bytes()
        )
        self.commit_shard_merge(shard_id)
        return stats

    def _renumber_shards(self) -> None:
        for position, shard in enumerate(self.shards):
            shard.shard_id = position

    def _routing_stats(self, num_keys: int) -> KernelStats:
        return KernelStats(
            name="serve.route",
            threads=num_keys,
            bytes_read=num_keys * self.key_bytes,
            compute_ops=self.partitioner.routing_compute_ops(num_keys),
            launches=1,
        )

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Scatter a point-lookup batch, answer per shard, gather in order.

        Negative (signed-dtype) keys are below the unsigned stored keyspace:
        they are answered as definitional misses without touching any shard.
        Casting them instead would wrap them to the top of the keyspace and —
        for 32-bit deployments — alias real stored keys.
        """
        raw = np.asarray(keys)
        negative = negative_key_mask(raw)
        if negative is not None:
            keys = np.where(negative, 0, raw).astype(self._key_dtype)
        else:
            keys = np.asarray(raw, dtype=self._key_dtype)
        num = int(keys.shape[0])
        row_agg = np.full(num, -1, dtype=np.int64)
        counts = np.zeros(num, dtype=np.int64)
        parts: List[KernelStats] = [self._routing_stats(num)]
        self.last_calls = []
        self.last_unavailable_shards = []

        tracer = self.tracer
        scatter_span = None
        if tracer.enabled:
            now_ms = tracer.clock.now_ms if tracer.clock is not None else 0.0
            scatter_span = tracer.push_span(
                "router.scatter",
                now_ms,
                category="router",
                lane="router",
                batch_size=num,
                engine=self.engine,
                partitioner=self.partitioner.kind,
            )
        try:
            if num:
                shard_ids = self.partitioner.shard_of(keys)
                if negative is not None:
                    # Out-of-domain keys keep the (-1, 0) miss answer and are
                    # never scattered.
                    shard_ids[negative] = -1
                for shard_id in np.unique(shard_ids):
                    if shard_id < 0:
                        continue
                    member = np.where(shard_ids == shard_id)[0]
                    shard = self.shards[int(shard_id)]
                    if shard.index is None:
                        continue
                    result = shard.index.point_lookup_batch(keys[member])
                    row_agg[member] = result.row_ids
                    counts[member] = result.match_counts
                    parts.append(result.stats)
                    self.last_calls.append(
                        ShardCall(int(shard_id), int(member.shape[0]), result.stats)
                    )
                    if getattr(shard.index, "last_read_unavailable", False):
                        self.last_unavailable_shards.append(int(shard_id))
                    if scatter_span is not None:
                        # Shards answer concurrently: the scatter/gather span
                        # covers the slowest shard call of the batch.
                        shard_ms = shard.index.lookup_time_ms(result)
                        scatter_span.duration_ms = max(
                            scatter_span.duration_ms, shard_ms
                        )
                        tracer.record_span(
                            "router.shard_call",
                            scatter_span.start_ms,
                            shard_ms,
                            category="router",
                            lane=f"shard-{int(shard_id)}",
                            parent=scatter_span,
                            shard=int(shard_id),
                            batch_size=int(member.shape[0]),
                        )
        finally:
            if scatter_span is not None:
                tracer.pop()
        stats = combine("serve.point_lookup", parts)
        return LookupResult(row_ids=row_agg, match_counts=counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Scatter range lookups to overlapping shards and concatenate results.

        Negative endpoints clamp to the bottom of the unsigned keyspace: a
        range whose high end is negative matches nothing, one that straddles
        zero behaves like ``[0, high]``.
        """
        lows_raw = np.asarray(lows)
        highs_raw = np.asarray(highs)
        if lows_raw.shape != highs_raw.shape:
            raise ValueError("lows and highs must have the same shape")
        lows = routing_keys(lows_raw).astype(self._key_dtype)
        highs = routing_keys(highs_raw).astype(self._key_dtype)
        num = int(lows.shape[0])
        parts: List[KernelStats] = [self._routing_stats(num)]
        self.last_calls = []
        self.last_unavailable_shards = []

        # Scatter: shard -> positions of the queries that touch it.  The
        # vector engine computes every query's shard span in two vectorized
        # searchsorted sweeps instead of a per-query Python loop.  Routing
        # sees the *raw* endpoints so entirely-negative ranges get an empty
        # shard span instead of a clamped one.
        per_shard: Dict[int, "List[int] | np.ndarray"] = {}
        # Span dispatch is plain searchsorted math; "compiled" behaves as
        # "vector" here and accelerates inside the shards instead.
        if self.engine != "scalar" and num:
            first, last = self.partitioner.shard_span_batch(lows_raw, highs_raw)
            for shard_id in range(self.num_shards):
                member = np.nonzero((first <= shard_id) & (shard_id <= last))[0]
                if member.size:
                    per_shard[shard_id] = member
        else:
            for position in range(num):
                for shard_id in self.partitioner.shards_for_range(int(lows_raw[position]), int(highs_raw[position])):
                    per_shard.setdefault(int(shard_id), []).append(position)

        tracer = self.tracer
        scatter_span = None
        if tracer.enabled:
            now_ms = tracer.clock.now_ms if tracer.clock is not None else 0.0
            scatter_span = tracer.push_span(
                "router.scatter",
                now_ms,
                category="router",
                lane="router",
                batch_size=num,
                engine=self.engine,
                partitioner=self.partitioner.kind,
                kind="range",
            )
        collected: List[List[np.ndarray]] = [[] for _ in range(num)]
        try:
            for shard_id in sorted(per_shard):
                shard = self.shards[shard_id]
                if shard.index is None:
                    continue
                positions = per_shard[shard_id]
                result = shard.index.range_lookup_batch(lows[positions], highs[positions])
                for offset, position in enumerate(positions):
                    if result.row_ids[offset].shape[0]:
                        collected[position].append(result.row_ids[offset])
                parts.append(result.stats)
                self.last_calls.append(ShardCall(shard_id, len(positions), result.stats))
                if getattr(shard.index, "last_read_unavailable", False):
                    self.last_unavailable_shards.append(int(shard_id))
                if scatter_span is not None:
                    shard_ms = shard.index.lookup_time_ms(result)
                    scatter_span.duration_ms = max(scatter_span.duration_ms, shard_ms)
                    tracer.record_span(
                        "router.shard_call",
                        scatter_span.start_ms,
                        shard_ms,
                        category="router",
                        lane=f"shard-{shard_id}",
                        parent=scatter_span,
                        shard=shard_id,
                        batch_size=len(positions),
                    )
        finally:
            if scatter_span is not None:
                tracer.pop()

        row_ids = [
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.uint32)
            for pieces in collected
        ]
        stats = combine("serve.range_lookup", parts)
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Route an update batch; rebuild shards whose index cannot update in place.

        Negative keys are rejected uniformly at this boundary: the stored
        keyspace is unsigned, so a signed key can neither be inserted nor
        name an entry to delete — silently wrapping it would corrupt a
        different key's entries.
        """
        for side, batch in (("insert", insert_keys), ("delete", delete_keys)):
            if batch is not None and negative_key_mask(np.asarray(batch)) is not None:
                raise ValueError(
                    f"negative {side} keys are outside the unsigned keyspace"
                )
        insert_keys = (
            np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )

        # Normalising to cgRXu's cancellation semantics here keeps every
        # shard type — native updaters and rebuild-fallback shards alike —
        # in agreement with the authoritative arrays, so background
        # rebuilds can never change query answers.
        insert_keys, insert_row_ids, delete_keys = cancel_opposing_updates(
            insert_keys, insert_row_ids, delete_keys
        )

        parts: List[KernelStats] = [
            self._routing_stats(int(insert_keys.shape[0] + delete_keys.shape[0]))
        ]
        insert_shards = self.partitioner.shard_of(insert_keys)
        delete_shards = self.partitioner.shard_of(delete_keys)

        inserted = 0
        deleted = 0
        any_rebuilt = False
        touched = np.union1d(np.unique(insert_shards), np.unique(delete_shards))
        for shard_id in touched:
            shard = self.shards[int(shard_id)]
            shard_inserts = insert_keys[insert_shards == shard_id]
            shard_insert_rows = insert_row_ids[insert_shards == shard_id]
            shard_deletes = delete_keys[delete_shards == shard_id]
            inserted += int(shard_inserts.shape[0])

            if shard.index is not None and shard.index.supports_updates:
                result = shard.index.update_batch(
                    insert_keys=shard_inserts if shard_inserts.size else None,
                    insert_row_ids=shard_insert_rows if shard_inserts.size else None,
                    delete_keys=shard_deletes if shard_deletes.size else None,
                )
                parts.append(result.stats)
                any_rebuilt = any_rebuilt or result.rebuilt
                # Where the live index can dump its entries, snapshot it as
                # the authoritative state: a rebuild then reproduces the live
                # index exactly, duplicate tie-order included — and the
                # sorted-array maintenance below would be redundant work.
                try:
                    shard.keys, shard.row_ids = shard.index.export_entries()
                    shard.version += 1
                    deleted += result.deleted
                except UnsupportedOperation:
                    deleted += self._apply_authoritative(
                        shard, shard_inserts, shard_insert_rows, shard_deletes
                    )
            else:
                deleted += self._apply_authoritative(
                    shard, shard_inserts, shard_insert_rows, shard_deletes
                )
                parts.append(self.rebuild_shard(int(shard_id)))
                any_rebuilt = True

            if self.store is not None and getattr(shard.index, "store", None) is None:
                # Plain shards have no replication log; the shard version
                # (bumped exactly once above) is their LSN.  Replica groups
                # WAL-logged this batch themselves before acknowledging.
                self.store.log_batch(
                    int(shard_id),
                    shard.version,
                    shard_inserts,
                    shard_insert_rows,
                    shard_deletes,
                )

        stats = combine("serve.update", parts)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=any_rebuilt)

    @staticmethod
    def _apply_authoritative(
        shard: _Shard,
        insert_keys: np.ndarray,
        insert_row_ids: np.ndarray,
        delete_keys: np.ndarray,
    ) -> int:
        """Apply an update slice to the shard's sorted authoritative arrays.

        Deletes remove one occurrence per delete key (matching cgRXu's
        semantics); returns the number of entries actually removed.
        """
        shard.keys, shard.row_ids, removed = apply_update_to_entries(
            shard.keys, shard.row_ids, insert_keys, insert_row_ids, delete_keys
        )
        shard.version += 1
        return removed

    # ------------------------------------------------------------------ memory

    def memory_footprint_bytes(self) -> int:
        """Resident device bytes, in-flight rebuild buffers included."""
        total = sum(
            shard.index.memory_footprint().total_bytes
            for shard in self.shards
            if shard.index is not None
        )
        total += sum(
            shard.pending_index.memory_footprint().total_bytes
            for shard in self.shards
            if shard.pending_index is not None
        )
        total += sum(
            replacement.memory_footprint().total_bytes
            for shard in self.shards
            for replacement in shard.reshard_indexes
            if replacement is not None
        )
        return int(total)
