"""Shard router: scatter/gather over per-shard index instances.

A :class:`ShardRouter` owns one :class:`~repro.baselines.base.GpuIndex`
instance per shard plus the authoritative key/rowID arrays each shard was
built from.  Point-lookup batches are scattered by the partitioner, answered
per shard, and gathered back into request order; range lookups are scattered
only to the shards whose key ranges overlap the query interval.  Updates are
routed the same way — shards whose index type supports native updates apply
them in place, all others are rebuilt from the (updated) authoritative
arrays, which is also the primitive the background maintenance worker uses to
heal degraded shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UnsupportedOperation,
    UpdateResult,
    cancel_opposing_updates,
    delete_one_per_key,
)
from repro.core.config import validate_engine
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats, combine
from repro.obs.trace import NULL_TRACER
from repro.serve.partition import Partitioner, make_partitioner
from repro.workloads.keygen import KeySet

#: Factory building one shard's index from its keyset (harness signature).
ShardFactory = Callable[[KeySet, GpuDevice], GpuIndex]


def apply_update_to_entries(
    keys: np.ndarray,
    row_ids: np.ndarray,
    insert_keys: np.ndarray,
    insert_row_ids: np.ndarray,
    delete_keys: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, int]":
    """Apply an update slice to sorted authoritative ``(keys, row_ids)`` arrays.

    Deletes remove one occurrence per delete key (cgRXu's semantics, via
    :func:`~repro.baselines.base.delete_one_per_key`); inserts land behind
    existing duplicates of the same key.  Returns the new arrays plus the
    number of entries actually removed.  Shared by the shard router and the
    replication layer so every authoritative copy agrees byte-for-byte.
    """
    keys, row_ids, removed = delete_one_per_key(keys, row_ids, delete_keys)
    if insert_keys.size:
        # np.insert places same-position values in argument order, so an
        # unsorted batch would break the sorted invariant; sort it first.
        order = np.argsort(insert_keys, kind="stable")
        insert_keys = insert_keys[order]
        insert_row_ids = insert_row_ids[order]
        positions = np.searchsorted(keys, insert_keys, side="right")
        keys = np.insert(keys, positions, insert_keys)
        row_ids = np.insert(row_ids, positions, insert_row_ids)
    return keys, row_ids, removed




@dataclass
class ShardCall:
    """Per-shard breakdown of the last scattered batch (for skew accounting)."""

    shard_id: int
    batch_size: int
    stats: KernelStats


@dataclass
class _Shard:
    """One shard: its index instance and the authoritative entry arrays."""

    shard_id: int
    #: Authoritative keys, kept sorted ascending.
    keys: np.ndarray
    #: RowIDs aligned with ``keys``.
    row_ids: np.ndarray
    index: Optional[GpuIndex] = None
    #: Number of rebuilds this shard has seen (bulk load included).
    builds: int = 0
    #: Replacement index of an in-flight double-buffered rebuild.  While it
    #: exists both generations are resident, which is exactly the peak the
    #: deployment's memory accounting must expose.
    pending_index: Optional[GpuIndex] = None
    #: True between ``begin_shard_rebuild`` and its commit/abort (the
    #: replacement of an empty shard is ``None`` yet still pending).
    pending_rebuild: bool = False
    #: Bumped on every authoritative mutation; lets a rebuild commit detect
    #: updates that landed while the replacement was building.
    version: int = 0
    #: ``version`` the in-flight replacement was built from.
    pending_version: int = -1

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])


class ShardRouter:
    """Range- or hash-partitioned deployment of one index type."""

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: np.ndarray,
        factory: ShardFactory,
        num_shards: int,
        partitioner: str = "range",
        key_bits: int = 64,
        device: GpuDevice = RTX_4090,
        engine: str = "vector",
    ) -> None:
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        #: Scatter/gather execution engine (``"vector"`` scatters range
        #: batches with one vectorized span computation; answers identical).
        self.engine = validate_engine(engine)
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        self._key_dtype = np.uint32 if key_bits == 32 else np.uint64
        self.device = device
        self.factory = factory

        keys = np.asarray(keys, dtype=self._key_dtype)
        row_ids = np.asarray(row_ids, dtype=np.uint32)
        self.partitioner: Partitioner = make_partitioner(partitioner, keys, num_shards)

        shard_ids = self.partitioner.shard_of(keys)
        self.shards: List[_Shard] = []
        for shard_id in range(self.partitioner.num_shards):
            member = shard_ids == shard_id
            shard_keys = keys[member]
            shard_rows = row_ids[member]
            order = np.argsort(shard_keys, kind="stable")
            shard = _Shard(
                shard_id=shard_id,
                keys=shard_keys[order],
                row_ids=shard_rows[order],
            )
            self._build_shard(shard)
            self.shards.append(shard)

        #: Span sink; the deployment points this at its tracer (the shared
        #: disabled tracer by default, so emission sites cost one flag check).
        self.tracer = NULL_TRACER
        #: Per-shard breakdown of the most recent scattered call.
        self.last_calls: List[ShardCall] = []
        #: Largest deployment footprint observed during a rebuild — for
        #: double-buffered rebuilds this includes the window in which both
        #: shard generations were resident.
        self.rebuild_peak_bytes: int = 0

    # -------------------------------------------------------------- structure

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    def shard_sizes(self) -> np.ndarray:
        """Authoritative entry count per shard (drives the skew metric)."""
        return np.asarray([shard.num_entries for shard in self.shards], dtype=np.int64)

    @property
    def num_entries(self) -> int:
        return int(self.shard_sizes().sum())

    def build_time_ms(self) -> float:
        """Simulated bulk-load time: shards build concurrently, so the makespan."""
        times = [
            shard.index.build_time_ms for shard in self.shards if shard.index is not None
        ]
        return max(times) if times else 0.0

    def _make_index(self, shard: _Shard) -> Optional[GpuIndex]:
        """Build an index instance from the shard's authoritative arrays.

        ``None`` for an empty shard (lookups into it are trivial misses).
        """
        if shard.num_entries == 0:
            return None
        keyset = KeySet(
            keys=shard.keys.copy(),
            row_ids=shard.row_ids.copy(),
            key_bits=self.key_bits,
            description=f"shard {shard.shard_id}",
        )
        return self.factory(keyset, self.device)

    def _build_shard(self, shard: _Shard) -> List[KernelStats]:
        """(Re)build one shard's index in place from its authoritative arrays."""
        shard.index = self._make_index(shard)
        shard.builds += 1
        return list(shard.index.build_stats) if shard.index is not None else []

    # --------------------------------------------------------------- lifecycle

    def _make_replacement(self, shard: _Shard) -> Optional[GpuIndex]:
        """Build a shard's replacement index for a double-buffered rebuild.

        Indexes with a snapshot lifecycle (cgRXu) are rebuilt through
        ``snapshot()``/``build_from_snapshot()`` so the replacement carries
        the epoch lineage (``epoch + 1``); everything else is rebuilt from
        the authoritative arrays, which track the live index's entries
        byte-for-byte either way.
        """
        live = shard.index
        if (
            live is not None
            and shard.num_entries > 0
            and hasattr(live, "snapshot")
            and hasattr(live, "build_from_snapshot")
        ):
            return live.build_from_snapshot(live.snapshot(), device=self.device)
        # Empty shards (or index types without a snapshot lifecycle) rebuild
        # from the authoritative arrays; an emptied shard's replacement is
        # simply no index at all.
        return self._make_index(shard)

    def begin_shard_rebuild(self, shard_id: int) -> KernelStats:
        """Phase one of a double-buffered rebuild: build the replacement.

        The live index keeps serving; the replacement lives in the shard's
        rebuild buffer (visible in the deployment's memory footprint) until
        :meth:`commit_shard_rebuild` swaps it in or
        :meth:`abort_shard_rebuild` drops it.
        """
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} already has a rebuild in flight")
        shard.pending_index = self._make_replacement(shard)
        shard.pending_rebuild = True
        shard.pending_version = shard.version
        build_stats = (
            list(shard.pending_index.build_stats)
            if shard.pending_index is not None
            else []
        )
        return combine(f"serve.rebuild_shard_{shard_id}", build_stats)

    def commit_shard_rebuild(self, shard_id: int) -> None:
        """Phase two: atomically swap the replacement in (zero unavailability).

        Every call the shard's index answered before this point was served
        by the old generation; every later call by the new one — there is no
        instant at which the shard has no index.  Updates that landed while
        the replacement was building (the shard's version moved past the one
        the replacement was built from) trigger a catch-up rebuild from the
        current state before the swap, so a commit can never lose writes.
        """
        shard = self.shards[int(shard_id)]
        if not shard.pending_rebuild:
            raise ValueError(f"shard {shard_id} has no rebuild in flight")
        if shard.version != shard.pending_version:
            shard.pending_index = self._make_replacement(shard)
            shard.pending_version = shard.version
        shard.index = shard.pending_index
        shard.pending_index = None
        shard.pending_rebuild = False
        shard.builds += 1

    def abort_shard_rebuild(self, shard_id: int) -> None:
        """Drop an in-flight replacement without swapping it in."""
        shard = self.shards[int(shard_id)]
        shard.pending_index = None
        shard.pending_rebuild = False

    def rebuild_shard(self, shard_id: int, mode: str = "double_buffered") -> KernelStats:
        """Rebuild one shard from scratch; returns the build work performed.

        ``double_buffered`` (default) builds the replacement off the request
        path and swaps it in atomically — the shard serves throughout, at
        the price of both generations being resident during the build.
        ``stop_the_world`` takes the shard offline for the build (the
        pre-lifecycle behaviour); the caller accounts the outage window
        against availability.
        """
        shard = self.shards[int(shard_id)]
        if shard.pending_rebuild:
            # An immediate full rebuild supersedes a replacement someone
            # started via the explicit two-phase API: it would be built
            # from the same (or staler) state anyway.
            self.abort_shard_rebuild(shard_id)
        if mode == "double_buffered":
            stats = self.begin_shard_rebuild(shard_id)
            self.rebuild_peak_bytes = max(
                self.rebuild_peak_bytes, self.memory_footprint_bytes()
            )
            self.commit_shard_rebuild(shard_id)
            return stats
        if mode != "stop_the_world":
            raise ValueError(f"unknown rebuild mode {mode!r}")
        shard.index = None  # offline for the duration of the build
        build_stats = self._build_shard(shard)
        self.rebuild_peak_bytes = max(
            self.rebuild_peak_bytes, self.memory_footprint_bytes()
        )
        return combine(f"serve.rebuild_shard_{shard_id}", build_stats)

    def compact_shard(self, shard_id: int, max_buckets: int = 64) -> Optional[KernelStats]:
        """Compact the hottest-chained buckets of one shard.

        The cheap first maintenance tier: fold the longest node chains of a
        chain-based index (cgRXu, or every replica of a cgRXu replica group)
        back into minimal chains.  ``None`` when the shard is empty, its
        index type has no chains, or no bucket is chained at all.
        """
        shard = self.shards[int(shard_id)]
        index = shard.index
        if index is None:
            return None
        compact = getattr(index, "compact_buckets", None)
        chain_lengths = getattr(index, "bucket_chain_lengths", None)
        if not callable(compact) or not callable(chain_lengths):
            return None
        lengths = np.asarray(chain_lengths())
        chained = np.nonzero(lengths > 1)[0]
        if chained.size == 0:
            return None
        hottest = chained[np.argsort(lengths[chained], kind="stable")[::-1]]
        return compact(hottest[: int(max_buckets)])

    def _routing_stats(self, num_keys: int) -> KernelStats:
        return KernelStats(
            name="serve.route",
            threads=num_keys,
            bytes_read=num_keys * self.key_bytes,
            compute_ops=self.partitioner.routing_compute_ops(num_keys),
            launches=1,
        )

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Scatter a point-lookup batch, answer per shard, gather in order."""
        keys = np.asarray(keys, dtype=self._key_dtype)
        num = int(keys.shape[0])
        row_agg = np.full(num, -1, dtype=np.int64)
        counts = np.zeros(num, dtype=np.int64)
        parts: List[KernelStats] = [self._routing_stats(num)]
        self.last_calls = []

        tracer = self.tracer
        scatter_span = None
        if tracer.enabled:
            now_ms = tracer.clock.now_ms if tracer.clock is not None else 0.0
            scatter_span = tracer.push_span(
                "router.scatter",
                now_ms,
                category="router",
                lane="router",
                batch_size=num,
                engine=self.engine,
                partitioner=self.partitioner.kind,
            )
        try:
            if num:
                shard_ids = self.partitioner.shard_of(keys)
                for shard_id in np.unique(shard_ids):
                    member = np.where(shard_ids == shard_id)[0]
                    shard = self.shards[int(shard_id)]
                    if shard.index is None:
                        continue
                    result = shard.index.point_lookup_batch(keys[member])
                    row_agg[member] = result.row_ids
                    counts[member] = result.match_counts
                    parts.append(result.stats)
                    self.last_calls.append(
                        ShardCall(int(shard_id), int(member.shape[0]), result.stats)
                    )
                    if scatter_span is not None:
                        # Shards answer concurrently: the scatter/gather span
                        # covers the slowest shard call of the batch.
                        shard_ms = shard.index.lookup_time_ms(result)
                        scatter_span.duration_ms = max(
                            scatter_span.duration_ms, shard_ms
                        )
                        tracer.record_span(
                            "router.shard_call",
                            scatter_span.start_ms,
                            shard_ms,
                            category="router",
                            lane=f"shard-{int(shard_id)}",
                            parent=scatter_span,
                            shard=int(shard_id),
                            batch_size=int(member.shape[0]),
                        )
        finally:
            if scatter_span is not None:
                tracer.pop()
        stats = combine("serve.point_lookup", parts)
        return LookupResult(row_ids=row_agg, match_counts=counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Scatter range lookups to overlapping shards and concatenate results."""
        lows = np.asarray(lows, dtype=self._key_dtype)
        highs = np.asarray(highs, dtype=self._key_dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")
        num = int(lows.shape[0])
        parts: List[KernelStats] = [self._routing_stats(num)]
        self.last_calls = []

        # Scatter: shard -> positions of the queries that touch it.  The
        # vector engine computes every query's shard span in two vectorized
        # searchsorted sweeps instead of a per-query Python loop.
        per_shard: Dict[int, "List[int] | np.ndarray"] = {}
        if self.engine == "vector" and num:
            first, last = self.partitioner.shard_span_batch(lows, highs)
            for shard_id in range(self.num_shards):
                member = np.nonzero((first <= shard_id) & (shard_id <= last))[0]
                if member.size:
                    per_shard[shard_id] = member
        else:
            for position in range(num):
                for shard_id in self.partitioner.shards_for_range(int(lows[position]), int(highs[position])):
                    per_shard.setdefault(int(shard_id), []).append(position)

        tracer = self.tracer
        scatter_span = None
        if tracer.enabled:
            now_ms = tracer.clock.now_ms if tracer.clock is not None else 0.0
            scatter_span = tracer.push_span(
                "router.scatter",
                now_ms,
                category="router",
                lane="router",
                batch_size=num,
                engine=self.engine,
                partitioner=self.partitioner.kind,
                kind="range",
            )
        collected: List[List[np.ndarray]] = [[] for _ in range(num)]
        try:
            for shard_id in sorted(per_shard):
                shard = self.shards[shard_id]
                if shard.index is None:
                    continue
                positions = per_shard[shard_id]
                result = shard.index.range_lookup_batch(lows[positions], highs[positions])
                for offset, position in enumerate(positions):
                    if result.row_ids[offset].shape[0]:
                        collected[position].append(result.row_ids[offset])
                parts.append(result.stats)
                self.last_calls.append(ShardCall(shard_id, len(positions), result.stats))
                if scatter_span is not None:
                    shard_ms = shard.index.lookup_time_ms(result)
                    scatter_span.duration_ms = max(scatter_span.duration_ms, shard_ms)
                    tracer.record_span(
                        "router.shard_call",
                        scatter_span.start_ms,
                        shard_ms,
                        category="router",
                        lane=f"shard-{shard_id}",
                        parent=scatter_span,
                        shard=shard_id,
                        batch_size=len(positions),
                    )
        finally:
            if scatter_span is not None:
                tracer.pop()

        row_ids = [
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.uint32)
            for pieces in collected
        ]
        stats = combine("serve.range_lookup", parts)
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Route an update batch; rebuild shards whose index cannot update in place."""
        insert_keys = (
            np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )

        # Normalising to cgRXu's cancellation semantics here keeps every
        # shard type — native updaters and rebuild-fallback shards alike —
        # in agreement with the authoritative arrays, so background
        # rebuilds can never change query answers.
        insert_keys, insert_row_ids, delete_keys = cancel_opposing_updates(
            insert_keys, insert_row_ids, delete_keys
        )

        parts: List[KernelStats] = [
            self._routing_stats(int(insert_keys.shape[0] + delete_keys.shape[0]))
        ]
        insert_shards = self.partitioner.shard_of(insert_keys)
        delete_shards = self.partitioner.shard_of(delete_keys)

        inserted = 0
        deleted = 0
        any_rebuilt = False
        touched = np.union1d(np.unique(insert_shards), np.unique(delete_shards))
        for shard_id in touched:
            shard = self.shards[int(shard_id)]
            shard_inserts = insert_keys[insert_shards == shard_id]
            shard_insert_rows = insert_row_ids[insert_shards == shard_id]
            shard_deletes = delete_keys[delete_shards == shard_id]
            inserted += int(shard_inserts.shape[0])

            if shard.index is not None and shard.index.supports_updates:
                result = shard.index.update_batch(
                    insert_keys=shard_inserts if shard_inserts.size else None,
                    insert_row_ids=shard_insert_rows if shard_inserts.size else None,
                    delete_keys=shard_deletes if shard_deletes.size else None,
                )
                parts.append(result.stats)
                any_rebuilt = any_rebuilt or result.rebuilt
                # Where the live index can dump its entries, snapshot it as
                # the authoritative state: a rebuild then reproduces the live
                # index exactly, duplicate tie-order included — and the
                # sorted-array maintenance below would be redundant work.
                try:
                    shard.keys, shard.row_ids = shard.index.export_entries()
                    shard.version += 1
                    deleted += result.deleted
                except UnsupportedOperation:
                    deleted += self._apply_authoritative(
                        shard, shard_inserts, shard_insert_rows, shard_deletes
                    )
            else:
                deleted += self._apply_authoritative(
                    shard, shard_inserts, shard_insert_rows, shard_deletes
                )
                parts.append(self.rebuild_shard(int(shard_id)))
                any_rebuilt = True

        stats = combine("serve.update", parts)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=any_rebuilt)

    @staticmethod
    def _apply_authoritative(
        shard: _Shard,
        insert_keys: np.ndarray,
        insert_row_ids: np.ndarray,
        delete_keys: np.ndarray,
    ) -> int:
        """Apply an update slice to the shard's sorted authoritative arrays.

        Deletes remove one occurrence per delete key (matching cgRXu's
        semantics); returns the number of entries actually removed.
        """
        shard.keys, shard.row_ids, removed = apply_update_to_entries(
            shard.keys, shard.row_ids, insert_keys, insert_row_ids, delete_keys
        )
        shard.version += 1
        return removed

    # ------------------------------------------------------------------ memory

    def memory_footprint_bytes(self) -> int:
        """Resident device bytes, in-flight rebuild buffers included."""
        total = sum(
            shard.index.memory_footprint().total_bytes
            for shard in self.shards
            if shard.index is not None
        )
        total += sum(
            shard.pending_index.memory_footprint().total_bytes
            for shard in self.shards
            if shard.pending_index is not None
        )
        return int(total)
