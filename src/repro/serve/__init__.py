"""Index serving: sharding, request batching, caching, background maintenance.

The paper's indexes are single-instance, bulk-call structures; this package
turns any of them into a served deployment:

* :mod:`repro.serve.partition` — range/hash key-space partitioning,
* :mod:`repro.serve.router` — scatter/gather over per-shard index instances,
* :mod:`repro.serve.batching` — coalescing client requests into device-sized
  batches (the paper's lookups only amortise at large batch sizes),
* :mod:`repro.serve.cache` — LRU result + negative cache with accounting,
* :mod:`repro.serve.maintenance` — queueable background tasks that rebuild
  degraded shards and resync recovered replicas off the request path, plus
  the load-skew-driven shard split/merge policy,
* :mod:`repro.serve.qos` — per-tenant admission control and load shedding
  (token-bucket rate limits, saturation/overload backlog thresholds),
* :mod:`repro.serve.replication` — per-shard replica groups: load-balanced
  reads, quorum-acknowledged write fan-out with apply logs, failure
  injection (crash/slow/transient) with automatic failover, and catch-up of
  recovered replicas, and
* :mod:`repro.serve.metrics` — p50/p99 latency, throughput, hit-rate,
  shard-skew and availability/failover telemetry (a façade over the labeled
  :class:`repro.obs.TelemetryRegistry` substrate).

:class:`~repro.serve.sharded.ShardedIndex` composes all of it behind the
:class:`~repro.baselines.base.GpuIndex` interface.  Arm
``ServeConfig(tracing=True)`` for per-request tracing via
:mod:`repro.obs` (spans on the simulated clock, Chrome trace export) and
``ServeConfig(telemetry_sample_interval_ms=...)`` for periodic
time-series sampling of every labeled instrument.
"""

from repro.serve.batching import Batch, BatchPolicy, BatchScheduler
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.maintenance import (
    MaintenancePolicy,
    MaintenanceQueue,
    MaintenanceTask,
    MaintenanceWorker,
    ReshardPolicy,
    queueable,
)
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, shard_skew
from repro.serve.qos import (
    UNLABELED_TENANT,
    AdmissionController,
    ShedDecision,
    TenantQoS,
)
from repro.serve.reliability import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ReliabilityConfig,
    ReliabilityState,
)
from repro.serve.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.serve.replication import (
    DOWN,
    HEALTHY,
    RECOVERING,
    FailureEvent,
    FailureInjector,
    Replica,
    ReplicaGroup,
    ReplicatedShardRouter,
    ReplicationConfig,
    SimulatedClock,
)
from repro.serve.router import ShardRouter
from repro.serve.sharded import ServeConfig, ShardedIndex

__all__ = [
    "AdmissionController",
    "Batch",
    "BatchPolicy",
    "BatchScheduler",
    "CacheStats",
    "DOWN",
    "FailureEvent",
    "FailureInjector",
    "HEALTHY",
    "HashPartitioner",
    "LatencyHistogram",
    "MaintenancePolicy",
    "MaintenanceQueue",
    "MaintenanceTask",
    "MaintenanceWorker",
    "MetricsRegistry",
    "Partitioner",
    "RECOVERING",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "RangePartitioner",
    "ReliabilityConfig",
    "ReliabilityState",
    "Replica",
    "ReplicaGroup",
    "ReplicatedShardRouter",
    "ReplicationConfig",
    "ReshardPolicy",
    "ResultCache",
    "ServeConfig",
    "ShardRouter",
    "ShardedIndex",
    "ShedDecision",
    "SimulatedClock",
    "TenantQoS",
    "UNLABELED_TENANT",
    "make_partitioner",
    "queueable",
    "shard_skew",
]
