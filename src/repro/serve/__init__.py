"""Index serving: sharding, request batching, caching, background maintenance.

The paper's indexes are single-instance, bulk-call structures; this package
turns any of them into a served deployment:

* :mod:`repro.serve.partition` — range/hash key-space partitioning,
* :mod:`repro.serve.router` — scatter/gather over per-shard index instances,
* :mod:`repro.serve.batching` — coalescing client requests into device-sized
  batches (the paper's lookups only amortise at large batch sizes),
* :mod:`repro.serve.cache` — LRU result + negative cache with accounting,
* :mod:`repro.serve.maintenance` — queueable background tasks that rebuild
  degraded shards off the request path, and
* :mod:`repro.serve.metrics` — p50/p99 latency, throughput, hit-rate and
  shard-skew telemetry.

:class:`~repro.serve.sharded.ShardedIndex` composes all of it behind the
:class:`~repro.baselines.base.GpuIndex` interface.
"""

from repro.serve.batching import Batch, BatchPolicy, BatchScheduler
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.maintenance import (
    MaintenancePolicy,
    MaintenanceQueue,
    MaintenanceTask,
    MaintenanceWorker,
    queueable,
)
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, shard_skew
from repro.serve.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.serve.router import ShardRouter
from repro.serve.sharded import ServeConfig, ShardedIndex

__all__ = [
    "Batch",
    "BatchPolicy",
    "BatchScheduler",
    "CacheStats",
    "ResultCache",
    "HashPartitioner",
    "LatencyHistogram",
    "MaintenancePolicy",
    "MaintenanceQueue",
    "MaintenanceTask",
    "MaintenanceWorker",
    "MetricsRegistry",
    "Partitioner",
    "RangePartitioner",
    "ServeConfig",
    "ShardRouter",
    "ShardedIndex",
    "make_partitioner",
    "queueable",
    "shard_skew",
]
