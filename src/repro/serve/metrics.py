"""Serving telemetry: latency percentiles, throughput, cache and shard health.

A :class:`MetricsRegistry` is attached to every served deployment.  The hot
path records one latency sample per request (queueing delay plus the share of
the device batch the request rode in) and bumps counters; :meth:`snapshot`
reduces everything into the flat dict the serving experiment reports —
p50/p99 latency, request throughput, cache hit rate and shard skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


class LatencyHistogram:
    """Latency samples with exact percentile reduction.

    The simulation records every sample (request counts are laptop-scale);
    a production implementation would substitute fixed bucket boundaries.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        """All recorded samples as an array (for windowed reductions)."""
        return np.asarray(self._samples, dtype=np.float64)

    def record(self, latency_ms: float) -> None:
        self._samples.append(float(latency_ms))

    def record_many(self, latencies_ms: Iterable[float]) -> None:
        self._samples.extend(float(value) for value in latencies_ms)

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0..100); NaN when empty."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def mean_ms(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(np.asarray(self._samples)))

    @property
    def max_ms(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.max(np.asarray(self._samples)))


def shard_skew(per_shard_load: np.ndarray) -> float:
    """Load imbalance: max shard load over mean shard load (1.0 = balanced)."""
    loads = np.asarray(per_shard_load, dtype=np.float64)
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean <= 0.0:
        return 1.0
    return float(loads.max() / mean)


@dataclass
class MetricsRegistry:
    """Counters, latency histogram and per-shard load of one deployment."""

    #: Shard count of the deployment; when set, skew metrics include shards
    #: that received no load at all (a cold shard is the worst imbalance).
    num_shards: Optional[int] = None
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Requests served per shard (drives the skew metric).
    shard_requests: Dict[int, int] = field(default_factory=dict)
    #: Requests received per client (drives the client-skew metric).
    client_requests: Dict[int, int] = field(default_factory=dict)
    #: Simulated device-busy time accumulated per shard.
    shard_busy_ms: Dict[int, float] = field(default_factory=dict)
    #: Timestamps bounding the served stream (for throughput).
    first_arrival_ms: Optional[float] = None
    last_completion_ms: Optional[float] = None
    #: Detection-plus-retry latency of every read failover (replication).
    failover_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Closed windows during which a shard had no available replica.
    unavailability_windows: List[tuple] = field(default_factory=list)
    #: Requests served per replica, keyed ``"shard:replica"``.
    replica_requests: Dict[str, int] = field(default_factory=dict)
    #: Background-maintenance windows ``(tier, start_ms, end_ms)``.
    maintenance_windows: List[tuple] = field(default_factory=list)
    #: Simulated maintenance device time accumulated per tier.
    maintenance_device_ms: Dict[str, float] = field(default_factory=dict)
    #: Arrival timestamp of every latency sample (aligned with ``latency``),
    #: so tail latency can be reduced over maintenance windows after the fact.
    request_arrivals: List[float] = field(default_factory=list)

    # --------------------------------------------------------------- recording

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + int(amount)

    def record_request(self, latency_ms: float, arrival_ms: float, completion_ms: float) -> None:
        self.latency.record(latency_ms)
        self.request_arrivals.append(float(arrival_ms))
        self.bump("requests")
        if self.first_arrival_ms is None or arrival_ms < self.first_arrival_ms:
            self.first_arrival_ms = float(arrival_ms)
        if self.last_completion_ms is None or completion_ms > self.last_completion_ms:
            self.last_completion_ms = float(completion_ms)

    def record_client(self, client_id: int) -> None:
        self.client_requests[int(client_id)] = (
            self.client_requests.get(int(client_id), 0) + 1
        )

    def record_failover(self, latency_ms: float) -> None:
        """One read failed over to another replica (or emergency-restarted)."""
        self.failover_latency.record(latency_ms)
        self.bump("failovers")

    def record_unavailability(self, start_ms: float, end_ms: float) -> None:
        """A shard had no available replica over ``[start_ms, end_ms]``."""
        self.unavailability_windows.append((float(start_ms), float(end_ms)))

    def record_replica_request(self, shard_id: int, replica_id: int, amount: int = 1) -> None:
        key = f"{int(shard_id)}:{int(replica_id)}"
        self.replica_requests[key] = self.replica_requests.get(key, 0) + int(amount)

    def record_maintenance(self, tier: str, start_ms: float, end_ms: float) -> None:
        """Background maintenance of ``tier`` ran over ``[start_ms, end_ms]``."""
        self.maintenance_windows.append((str(tier), float(start_ms), float(end_ms)))
        self.maintenance_device_ms[str(tier)] = self.maintenance_device_ms.get(
            str(tier), 0.0
        ) + (float(end_ms) - float(start_ms))

    def record_shard_batch(self, shard_id: int, batch_size: int, busy_ms: float) -> None:
        self.shard_requests[int(shard_id)] = (
            self.shard_requests.get(int(shard_id), 0) + int(batch_size)
        )
        self.shard_busy_ms[int(shard_id)] = (
            self.shard_busy_ms.get(int(shard_id), 0.0) + float(busy_ms)
        )
        self.bump("batches")

    # --------------------------------------------------------------- reduction

    @property
    def span_ms(self) -> float:
        """Simulated wall time covered by the served stream."""
        if self.first_arrival_ms is None or self.last_completion_ms is None:
            return 0.0
        return max(0.0, self.last_completion_ms - self.first_arrival_ms)

    @property
    def throughput_per_s(self) -> float:
        """Requests completed per simulated second."""
        requests = self.counters.get("requests", 0)
        span = self.span_ms
        if requests == 0 or span <= 0.0:
            return 0.0
        return requests / (span / 1e3)

    def _shard_loads(self, per_shard: Dict[int, float]) -> np.ndarray:
        """Load vector over *all* shards (zero-load shards included when known)."""
        if self.num_shards is not None:
            return np.asarray(
                [per_shard.get(shard, 0.0) for shard in range(self.num_shards)]
            )
        return np.asarray(list(per_shard.values()))

    def request_skew(self) -> float:
        if not self.shard_requests:
            return 1.0
        return shard_skew(self._shard_loads(self.shard_requests))

    def busy_skew(self) -> float:
        if not self.shard_busy_ms:
            return 1.0
        return shard_skew(self._shard_loads(self.shard_busy_ms))

    def replica_skew(self) -> float:
        """Load imbalance across the replicas that served at least one request.

        Replicas the registry never saw (e.g. down the whole stream) are not
        in the denominator; :meth:`ReplicatedShardRouter.replica_load_skew`
        reports the membership-aware figure.
        """
        if not self.replica_requests:
            return 1.0
        return shard_skew(np.asarray(list(self.replica_requests.values())))

    def latency_during_maintenance(self, q: float = 99.0) -> float:
        """Latency percentile of the requests that arrived while background
        maintenance was running (NaN when no request did).

        This is the number the tier policy is judged by: incremental
        compaction and double-buffered rebuilds should leave the tail of
        concurrent foreground requests where it was, while a stop-the-world
        rebuild drags it up.
        """
        if not self.maintenance_windows or not self.request_arrivals:
            return float("nan")
        arrivals = np.asarray(self.request_arrivals, dtype=np.float64)
        in_window = np.zeros(arrivals.shape[0], dtype=bool)
        for _, start, end in self.maintenance_windows:
            in_window |= (arrivals >= start) & (arrivals <= end)
        if not in_window.any():
            return float("nan")
        return float(np.percentile(self.latency.samples[in_window], q))

    @property
    def unavailable_ms(self) -> float:
        """Total simulated time some shard had no available replica.

        Windows from different shards may overlap; they are merged (interval
        union) so concurrent outages are not double-counted against the span.
        """
        if not self.unavailability_windows:
            return 0.0
        merged_total = 0.0
        current_start, current_end = None, None
        for start, end in sorted(self.unavailability_windows):
            if current_end is None or start > current_end:
                if current_end is not None:
                    merged_total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        merged_total += current_end - current_start
        return float(merged_total)

    @property
    def availability(self) -> float:
        """Fraction of the served span with every shard available (1.0 = always)."""
        span = self.span_ms
        if span <= 0.0:
            return 1.0
        return max(0.0, 1.0 - self.unavailable_ms / span)

    def snapshot(self) -> dict:
        """Flat report of the registry, as consumed by the serving experiment."""
        snapshot = {
            "requests": self.counters.get("requests", 0),
            "batches": self.counters.get("batches", 0),
            "span_ms": self.span_ms,
            "throughput_per_s": self.throughput_per_s,
            "latency_p50_ms": self.latency.percentile(50.0),
            "latency_p99_ms": self.latency.percentile(99.0),
            "latency_mean_ms": self.latency.mean_ms,
            "latency_max_ms": self.latency.max_ms,
            "request_skew": self.request_skew(),
            "busy_skew": self.busy_skew(),
        }
        if self.client_requests:
            snapshot["unique_clients"] = len(self.client_requests)
            snapshot["client_skew"] = shard_skew(
                np.asarray(list(self.client_requests.values()))
            )
        if self.replica_requests:
            snapshot["replica_skew"] = self.replica_skew()
        if len(self.failover_latency):
            snapshot["failover_latency_mean_ms"] = self.failover_latency.mean_ms
            snapshot["failover_latency_p99_ms"] = self.failover_latency.percentile(99.0)
        if self.unavailability_windows:
            snapshot["unavailable_ms"] = self.unavailable_ms
            snapshot["availability"] = self.availability
        if self.maintenance_windows:
            snapshot["maintenance_windows"] = len(self.maintenance_windows)
            for tier, device_ms in sorted(self.maintenance_device_ms.items()):
                snapshot[f"maintenance_ms_{tier}"] = device_ms
            p99_maintenance = self.latency_during_maintenance(99.0)
            if not np.isnan(p99_maintenance):
                snapshot["latency_p99_during_maintenance_ms"] = p99_maintenance
        for counter, value in sorted(self.counters.items()):
            if counter not in ("requests", "batches"):
                snapshot[counter] = value
        return snapshot
