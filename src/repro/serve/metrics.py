"""Serving telemetry: latency percentiles, throughput, cache and shard health.

A :class:`MetricsRegistry` is attached to every served deployment.  The hot
path records one latency sample per request (queueing delay plus the share of
the device batch the request rode in) and bumps counters; :meth:`snapshot`
reduces everything into the flat dict the serving experiment reports —
p50/p99 latency, request throughput, cache hit rate and shard skew.

Since the observability PR the registry is a façade over a labeled
:class:`repro.obs.TelemetryRegistry`: every counter, per-shard load and
latency distribution lives as a labeled instrument there (so the whole
deployment exports as a Prometheus-style exposition and samples into a time
series on the simulated clock), while this module preserves the historical
recording API and the exact :meth:`snapshot` key set byte-for-byte.
Latency distributions are log-bucketed bounded-memory histograms
(:class:`repro.obs.LogBucketHistogram`); the exact-sample
:class:`LatencyHistogram` is retained as the accuracy oracle the tests
compare bucketed percentiles against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.telemetry import LogBucketHistogram, TelemetryRegistry

#: Labeled instrument names the façade records into.
EVENTS_METRIC = "serve_events_total"
LATENCY_METRIC = "serve_request_latency_ms"
FAILOVER_LATENCY_METRIC = "serve_failover_latency_ms"
SHARD_REQUESTS_METRIC = "serve_shard_requests_total"
SHARD_BUSY_METRIC = "serve_shard_busy_ms_total"
CLIENT_REQUESTS_METRIC = "serve_client_requests_total"
REPLICA_REQUESTS_METRIC = "serve_replica_requests_total"
MAINTENANCE_DEVICE_METRIC = "serve_maintenance_device_ms_total"
TENANT_REQUESTS_METRIC = "serve_tenant_requests_total"
TENANT_LATENCY_METRIC = "serve_tenant_latency_ms"
SHED_METRIC = "serve_shed_total"
RECOVERY_LATENCY_METRIC = "serve_recovery_ms"
WAL_BYTES_METRIC = "serve_wal_bytes_total"
CHECKPOINT_BYTES_METRIC = "serve_checkpoint_bytes_total"


class LatencyHistogram:
    """Latency samples with exact percentile reduction.

    Retained as the exactness *oracle*: the serving hot path now records into
    bounded-memory log-bucketed histograms, and the tests bound the bucketed
    percentile error against this exact-sample implementation.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        """All recorded samples as an array (for windowed reductions)."""
        return np.asarray(self._samples, dtype=np.float64)

    def record(self, latency_ms: float) -> None:
        self._samples.append(float(latency_ms))

    def record_many(self, latencies_ms: Iterable[float]) -> None:
        self._samples.extend(float(value) for value in latencies_ms)

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0..100); NaN when empty."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def mean_ms(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(np.asarray(self._samples)))

    @property
    def max_ms(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.max(np.asarray(self._samples)))


class BoundedLatencyHistogram(LogBucketHistogram):
    """Log-bucketed histogram with the latency-flavoured accessor names."""

    __slots__ = ()

    @property
    def mean_ms(self) -> float:
        return self.mean

    @property
    def max_ms(self) -> float:
        return self.maximum


def shard_skew(per_shard_load: np.ndarray) -> float:
    """Load imbalance: max shard load over mean shard load (1.0 = balanced)."""
    loads = np.asarray(per_shard_load, dtype=np.float64)
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean <= 0.0:
        return 1.0
    return float(loads.max() / mean)


class MetricsRegistry:
    """Counters, latency histograms and per-shard load of one deployment.

    Façade over a labeled :class:`TelemetryRegistry`: the historical dict
    attributes (``counters``, ``shard_requests``, ...) are read-only views
    materialised from the labeled instruments.
    """

    def __init__(
        self,
        num_shards: Optional[int] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        #: Shard count of the deployment; when set, skew metrics include
        #: shards that received no load at all (a cold shard is the worst
        #: imbalance).
        self.num_shards = num_shards
        #: Labeled instrument substrate (exposition / time-series surface).
        self.telemetry = telemetry if telemetry is not None else TelemetryRegistry()
        #: Request latency distribution (bounded-memory, mergeable).
        self.latency = self._histogram(LATENCY_METRIC)
        #: Detection-plus-retry latency of every read failover (replication).
        self.failover_latency = self._histogram(FAILOVER_LATENCY_METRIC)
        #: Host wall-clock time of every checkpoint+WAL shard recovery.
        self.recovery_latency = self._histogram(RECOVERY_LATENCY_METRIC)
        #: Timestamps bounding the served stream (for throughput).
        self.first_arrival_ms: Optional[float] = None
        self.last_completion_ms: Optional[float] = None
        #: Closed windows during which a shard had no available replica.
        self.unavailability_windows: List[tuple] = []
        #: Background-maintenance windows ``(tier, start_ms, end_ms)``.
        self.maintenance_windows: List[tuple] = []
        #: Arrival timestamp and exact latency of every request (aligned),
        #: kept so tail latency can be reduced over maintenance windows after
        #: the fact with exact percentiles (the simulation-side oracle; the
        #: histogram above is the bounded-memory production analogue).
        self.request_arrivals: List[float] = []
        self.request_latencies: List[float] = []

    def _histogram(self, name: str) -> BoundedLatencyHistogram:
        return self.telemetry.get_or_create(name, BoundedLatencyHistogram)

    # ----------------------------------------------------------- dict views

    def _labeled_ints(self, metric: str, key_type=int) -> dict:
        return {
            key_type(labels[0][1]): instrument.value
            for _, labels, instrument in self.telemetry.instruments(metric)
        }

    @property
    def counters(self) -> Dict[str, int]:
        """Event counters (read-only view; record via :meth:`bump`)."""
        return {
            labels[0][1]: instrument.value
            for _, labels, instrument in self.telemetry.instruments(EVENTS_METRIC)
        }

    @property
    def shard_requests(self) -> Dict[int, int]:
        """Requests served per shard (drives the skew metric)."""
        return self._labeled_ints(SHARD_REQUESTS_METRIC)

    @property
    def client_requests(self) -> Dict[int, int]:
        """Requests received per client (drives the client-skew metric)."""
        return self._labeled_ints(CLIENT_REQUESTS_METRIC)

    @property
    def shard_busy_ms(self) -> Dict[int, float]:
        """Simulated device-busy time accumulated per shard."""
        return self._labeled_ints(SHARD_BUSY_METRIC)

    @property
    def replica_requests(self) -> Dict[str, int]:
        """Requests served per replica, keyed ``"shard:replica"``."""
        return self._labeled_ints(REPLICA_REQUESTS_METRIC, key_type=str)

    @property
    def maintenance_device_ms(self) -> Dict[str, float]:
        """Simulated maintenance device time accumulated per tier."""
        return self._labeled_ints(MAINTENANCE_DEVICE_METRIC, key_type=str)

    @property
    def tenant_latency(self) -> Dict[int, BoundedLatencyHistogram]:
        """Per-tenant request latency distributions (multi-tenant streams)."""
        return {
            int(labels[0][1]): instrument
            for _, labels, instrument in self.telemetry.instruments(
                TENANT_LATENCY_METRIC
            )
        }

    @property
    def shed_requests(self) -> Dict[Tuple[int, str], int]:
        """Shed request counts keyed ``(tenant, reason)``."""
        shed: Dict[Tuple[int, str], int] = {}
        for _, labels, instrument in self.telemetry.instruments(SHED_METRIC):
            by_label = dict(labels)
            shed[(int(by_label["tenant"]), by_label["reason"])] = instrument.value
        return shed

    # --------------------------------------------------------------- recording

    def bump(self, counter: str, amount: int = 1) -> None:
        self.telemetry.counter(EVENTS_METRIC, event=counter).inc(int(amount))

    def record_request(self, latency_ms: float, arrival_ms: float, completion_ms: float) -> None:
        self.latency.record(latency_ms)
        self.request_arrivals.append(float(arrival_ms))
        self.request_latencies.append(float(latency_ms))
        self.bump("requests")
        if self.first_arrival_ms is None or arrival_ms < self.first_arrival_ms:
            self.first_arrival_ms = float(arrival_ms)
        if self.last_completion_ms is None or completion_ms > self.last_completion_ms:
            self.last_completion_ms = float(completion_ms)

    def record_client(self, client_id: int) -> None:
        self.telemetry.counter(CLIENT_REQUESTS_METRIC, client=str(int(client_id))).inc()

    def record_failover(self, latency_ms: float) -> None:
        """One read failed over to another replica (or emergency-restarted)."""
        self.failover_latency.record(latency_ms)
        self.bump("failovers")

    def record_unavailability(self, start_ms: float, end_ms: float) -> None:
        """A shard had no available replica over ``[start_ms, end_ms]``."""
        self.unavailability_windows.append((float(start_ms), float(end_ms)))

    def record_hedge(self, won: bool) -> None:
        """One hedged read raced a slow primary; ``won`` = hedge answered
        first.  Only the reliability layer emits these, so the counters stay
        out of un-hedged snapshots."""
        self.bump("hedges")
        self.bump("hedge_wins" if won else "hedge_losses")

    def record_replica_request(self, shard_id: int, replica_id: int, amount: int = 1) -> None:
        key = f"{int(shard_id)}:{int(replica_id)}"
        self.telemetry.counter(REPLICA_REQUESTS_METRIC, replica=key).inc(int(amount))

    def record_maintenance(self, tier: str, start_ms: float, end_ms: float) -> None:
        """Background maintenance of ``tier`` ran over ``[start_ms, end_ms]``."""
        self.maintenance_windows.append((str(tier), float(start_ms), float(end_ms)))
        self.telemetry.counter(MAINTENANCE_DEVICE_METRIC, tier=str(tier)).inc(
            float(end_ms) - float(start_ms)
        )

    def record_tenant_request(self, tenant_id: int, latency_ms: float) -> None:
        """One served request of a labeled tenant (latency + count)."""
        tenant = str(int(tenant_id))
        self.telemetry.counter(TENANT_REQUESTS_METRIC, tenant=tenant).inc()
        self.telemetry.get_or_create(
            TENANT_LATENCY_METRIC, BoundedLatencyHistogram, tenant=tenant
        ).record(float(latency_ms))

    def record_shed(self, tenant_id: int, reason: str) -> None:
        """One request shed by admission control (never served)."""
        self.telemetry.counter(
            SHED_METRIC, tenant=str(int(tenant_id)), reason=str(reason)
        ).inc()
        self.bump("requests_shed")

    def record_wal_append(self, shard_id: int, num_bytes: int, fsynced: bool) -> None:
        """One acknowledged write batch was durably logged before its ack."""
        self.telemetry.counter(WAL_BYTES_METRIC, shard=str(int(shard_id))).inc(
            int(num_bytes)
        )
        self.bump("wal_appends")
        self.bump("wal_bytes", int(num_bytes))
        if fsynced:
            self.bump("wal_fsyncs")

    def record_checkpoint(self, shard_id: int, num_bytes: int) -> None:
        """One durable checkpoint was taken (and the WAL truncated behind it)."""
        self.telemetry.counter(CHECKPOINT_BYTES_METRIC, shard=str(int(shard_id))).inc(
            int(num_bytes)
        )
        self.bump("checkpoints")
        self.bump("checkpoint_bytes", int(num_bytes))

    def record_recovery(self, shard_id: int, duration_ms: float, replayed: int) -> None:
        """One shard was recovered from checkpoint + WAL tail."""
        self.recovery_latency.record(float(duration_ms))
        self.bump("recoveries")
        self.bump("wal_records_replayed", int(replayed))

    def record_shard_batch(self, shard_id: int, batch_size: int, busy_ms: float) -> None:
        shard = str(int(shard_id))
        self.telemetry.counter(SHARD_REQUESTS_METRIC, shard=shard).inc(int(batch_size))
        self.telemetry.counter(SHARD_BUSY_METRIC, shard=shard).inc(float(busy_ms))
        self.bump("batches")

    # --------------------------------------------------------------- reduction

    @property
    def span_ms(self) -> float:
        """Simulated wall time covered by the served stream."""
        if self.first_arrival_ms is None or self.last_completion_ms is None:
            return 0.0
        return max(0.0, self.last_completion_ms - self.first_arrival_ms)

    @property
    def throughput_per_s(self) -> float:
        """Requests completed per simulated second."""
        requests = self.counters.get("requests", 0)
        span = self.span_ms
        if requests == 0 or span <= 0.0:
            return 0.0
        return requests / (span / 1e3)

    def _shard_loads(self, per_shard: Dict[int, float]) -> np.ndarray:
        """Load vector over *all* shards (zero-load shards included when known)."""
        if self.num_shards is not None:
            return np.asarray(
                [per_shard.get(shard, 0.0) for shard in range(self.num_shards)]
            )
        return np.asarray(list(per_shard.values()))

    def request_skew(self) -> float:
        shard_requests = self.shard_requests
        if not shard_requests:
            return 1.0
        return shard_skew(self._shard_loads(shard_requests))

    def busy_skew(self) -> float:
        shard_busy_ms = self.shard_busy_ms
        if not shard_busy_ms:
            return 1.0
        return shard_skew(self._shard_loads(shard_busy_ms))

    def replica_skew(self) -> float:
        """Load imbalance across the replicas that served at least one request.

        Replicas the registry never saw (e.g. down the whole stream) are not
        in the denominator; :meth:`ReplicatedShardRouter.replica_load_skew`
        reports the membership-aware figure.
        """
        replica_requests = self.replica_requests
        if not replica_requests:
            return 1.0
        return shard_skew(np.asarray(list(replica_requests.values())))

    def latency_during_maintenance(self, q: float = 99.0) -> float:
        """Latency percentile of the requests that arrived while background
        maintenance was running (NaN when no request did).

        This is the number the tier policy is judged by: incremental
        compaction and double-buffered rebuilds should leave the tail of
        concurrent foreground requests where it was, while a stop-the-world
        rebuild drags it up.  Reduced over the exact per-request log (not the
        bucketed histogram) so the answer stays sample-exact.
        """
        if not self.maintenance_windows or not self.request_arrivals:
            return float("nan")
        arrivals = np.asarray(self.request_arrivals, dtype=np.float64)
        in_window = np.zeros(arrivals.shape[0], dtype=bool)
        for _, start, end in self.maintenance_windows:
            in_window |= (arrivals >= start) & (arrivals <= end)
        if not in_window.any():
            return float("nan")
        latencies = np.asarray(self.request_latencies, dtype=np.float64)
        return float(np.percentile(latencies[in_window], q))

    @property
    def unavailable_ms(self) -> float:
        """Total simulated time some shard had no available replica.

        Windows from different shards may overlap; they are merged (interval
        union) so concurrent outages are not double-counted against the span.
        """
        if not self.unavailability_windows:
            return 0.0
        merged_total = 0.0
        current_start, current_end = None, None
        for start, end in sorted(self.unavailability_windows):
            if current_end is None or start > current_end:
                if current_end is not None:
                    merged_total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        merged_total += current_end - current_start
        return float(merged_total)

    @property
    def availability(self) -> float:
        """Fraction of the served span with every shard available (1.0 = always)."""
        span = self.span_ms
        if span <= 0.0:
            return 1.0
        return max(0.0, 1.0 - self.unavailable_ms / span)

    def snapshot(self) -> dict:
        """Flat report of the registry, as consumed by the serving experiment."""
        counters = self.counters
        snapshot = {
            "requests": counters.get("requests", 0),
            "batches": counters.get("batches", 0),
            "span_ms": self.span_ms,
            "throughput_per_s": self.throughput_per_s,
            "latency_p50_ms": self.latency.percentile(50.0),
            "latency_p99_ms": self.latency.percentile(99.0),
            "latency_mean_ms": self.latency.mean_ms,
            "latency_max_ms": self.latency.max_ms,
            "request_skew": self.request_skew(),
            "busy_skew": self.busy_skew(),
        }
        client_requests = self.client_requests
        if client_requests:
            snapshot["unique_clients"] = len(client_requests)
            snapshot["client_skew"] = shard_skew(
                np.asarray(list(client_requests.values()))
            )
        if self.replica_requests:
            snapshot["replica_skew"] = self.replica_skew()
        if len(self.failover_latency):
            snapshot["failover_latency_mean_ms"] = self.failover_latency.mean_ms
            snapshot["failover_latency_p99_ms"] = self.failover_latency.percentile(99.0)
        if self.unavailability_windows:
            snapshot["unavailable_ms"] = self.unavailable_ms
            snapshot["availability"] = self.availability
        if self.maintenance_windows:
            snapshot["maintenance_windows"] = len(self.maintenance_windows)
            for tier, device_ms in sorted(self.maintenance_device_ms.items()):
                snapshot[f"maintenance_ms_{tier}"] = device_ms
            p99_maintenance = self.latency_during_maintenance(99.0)
            if not np.isnan(p99_maintenance):
                snapshot["latency_p99_during_maintenance_ms"] = p99_maintenance
        tenant_latency = self.tenant_latency
        if tenant_latency:
            for tenant, histogram in sorted(tenant_latency.items()):
                snapshot[f"tenant_{tenant}_requests"] = histogram.count
                snapshot[f"tenant_{tenant}_p50_ms"] = histogram.percentile(50.0)
                snapshot[f"tenant_{tenant}_p99_ms"] = histogram.percentile(99.0)
        if len(self.recovery_latency):
            snapshot["recovery_mean_ms"] = self.recovery_latency.mean_ms
            snapshot["recovery_max_ms"] = self.recovery_latency.max_ms
        shed_requests = self.shed_requests
        if shed_requests:
            for (tenant, reason), count in sorted(shed_requests.items()):
                snapshot[f"tenant_{tenant}_shed_{reason}"] = count
        for counter, value in sorted(counters.items()):
            if counter not in ("requests", "batches"):
                snapshot[counter] = value
        return snapshot
