"""One experiment function per table and figure of the paper.

Every function returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows correspond to the series the paper plots.  All sizes default to
laptop-scale values (the paper uses 2^24-2^28 keys and 2^27 lookups, which a
pure-Python simulation cannot execute in reasonable time); the ratios the
experiments vary — uniformity, bucket size, batch size, hit ratio, skew,
update-wave size relative to the build — are preserved.  Every function
accepts the relevant sizes as parameters, so the paper-native configuration
can be requested explicitly if runtime is no concern.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import GpuIndex, UnsupportedOperation
from repro.baselines.btree import BPlusTreeIndex
from repro.baselines.fullscan import FullScanIndex
from repro.baselines.hash_table import HashTableIndex
from repro.baselines.rtscan import RTScanIndex
from repro.baselines.rx import RXIndex
from repro.baselines.sorted_array import SortedArrayIndex
from repro.bench.harness import (
    ExperimentResult,
    IndexFactory,
    btree_factory,
    cgrx_factory,
    cgrxu_factory,
    default_point_lookup_factories,
    fullscan_factory,
    hash_table_factory,
    rtscan_factory,
    rx_factory,
    sorted_array_factory,
)
from repro.bench.metrics import (
    normalized_cumulative_time_ms,
    throughput_per_footprint,
    time_per_lookup_ms,
)
from repro.core.config import CgRXConfig, CgRXuConfig, Representation
from repro.core.index import CgRXIndex
from repro.core.updatable import CgRXuIndex
from repro.gpu.device import RTX_4090, RTX_A6000, GpuDevice
from repro.workloads.keygen import DISTRIBUTIONS, KeySet, generate_distribution, generate_keys
from repro.workloads.lookups import (
    hit_miss_lookups,
    range_lookups,
    uniform_lookups,
    zipf_lookups,
)
from repro.workloads.updates import update_waves


def _scaled_cache_device(device: GpuDevice, keyset_bytes: int, ratio: float = 7.0) -> GpuDevice:
    """Shrink the device's L2 so the data-to-cache ratio matches the paper's scale.

    The paper's key sets (0.5-2 GiB) exceed the 72 MiB L2 by roughly an order
    of magnitude, which is what makes lookup skew beneficial (Figure 17).  Our
    scaled-down key sets would fit into the cache entirely and hide the
    effect, so the skew experiment scales the cache down proportionally.
    """
    return dataclasses.replace(device, l2_cache_bytes=max(1, int(keyset_bytes / ratio)))


def _scaled_saturation_device(
    device: GpuDevice, saturation_threads: int, launch_overhead_ms: float = None
) -> GpuDevice:
    """Lower the saturation batch size (and optionally the launch overhead).

    The paper varies batches up to 2^27 lookups and the RTX 4090 saturates at
    around 2^15 resident lookups; the scaled-down sweeps keep the same
    relationship by scaling the saturation point (and, where fixed kernel
    launch overheads would otherwise dominate the micro-scale kernels, the
    launch overhead) alongside the batches.
    """
    replaced = dataclasses.replace(device, saturation_threads=int(saturation_threads))
    if launch_overhead_ms is not None:
        replaced = dataclasses.replace(replaced, kernel_launch_overhead_ms=launch_overhead_ms)
    return replaced


# --------------------------------------------------------------------------
# Table I
# --------------------------------------------------------------------------


def table1_feature_matrix() -> ExperimentResult:
    """Table I: feature overview of all tested indexes."""
    result = ExperimentResult(
        name="table_1",
        description="Feature matrix of all tested indexes (Table I)",
    )
    for index_cls in (
        HashTableIndex,
        BPlusTreeIndex,
        SortedArrayIndex,
        RXIndex,
        RTScanIndex,
        CgRXIndex,
        CgRXuIndex,
    ):
        result.add(**index_cls.feature_row())
    return result


# --------------------------------------------------------------------------
# Figure 1 — the three limitations of RX that motivate cgRX
# --------------------------------------------------------------------------


def figure_01_rx_limitations(
    sizes: Sequence[int] = (1 << 12, 1 << 14, 1 << 16),
    range_hits: Sequence[int] = (1, 16, 1024),
    update_counts: Sequence[int] = (0, 1 << 8, 1 << 11),
    num_lookups: int = 1 << 12,
    seed: int = 7,
) -> ExperimentResult:
    """Figure 1: RX's memory overhead, slow range lookups and update degradation."""
    result = ExperimentResult(
        name="figure_1",
        description="Limitations of RX: memory footprint, range lookups, post-update lookups",
        parameters={"sizes": list(sizes), "range_hits": list(range_hits), "updates": list(update_counts)},
    )

    # (a) Memory footprint across data-set sizes.
    for num_keys in sizes:
        keyset = generate_keys(num_keys, uniformity=0.0, key_bits=32, seed=seed)
        for name, factory in (
            ("RX", rx_factory()),
            ("SA", sorted_array_factory()),
            ("B+", btree_factory()),
            ("HT", hash_table_factory()),
        ):
            index = factory(keyset, RTX_4090)
            result.add(
                panel="a_memory",
                index=name,
                num_keys=num_keys,
                footprint_mib=index.memory_footprint().total_bytes / float(1 << 20),
            )

    # (b) Range lookups: RX versus SA and B+.
    keyset = generate_keys(max(sizes), uniformity=0.0, key_bits=32, seed=seed)
    for hits in range_hits:
        lows, highs = range_lookups(keyset, count=64, expected_hits=hits, seed=seed)
        for name, factory in (("RX", rx_factory()), ("SA", sorted_array_factory()), ("B+", btree_factory())):
            index = factory(keyset, RTX_4090)
            lookup = index.range_lookup_batch(lows, highs)
            time_ms = index.lookup_time_ms(lookup)
            result.add(
                panel="b_range",
                index=name,
                expected_hits=hits,
                normalized_time_ms=normalized_cumulative_time_ms(time_ms, lookup.total_matches),
            )

    # (c) Lookup performance after refit-based updates.
    base = generate_keys(max(sizes), uniformity=1.0, key_bits=32, seed=seed)
    lookups = uniform_lookups(base, num_lookups, seed=seed + 1)
    for updates in update_counts:
        index = RXIndex(base.keys, base.row_ids, key_bits=32)
        if updates:
            rng = np.random.default_rng(seed + updates)
            delete_keys = rng.choice(base.keys, size=updates, replace=False)
            insert_keys = rng.integers(0, (1 << 32) - 1, size=updates, dtype=np.uint64).astype(np.uint32)
            index.update_batch_refit(insert_keys, delete_keys=delete_keys)
        lookup = index.point_lookup_batch(lookups)
        result.add(
            panel="c_updates",
            index="RX (refit)",
            num_updates=updates,
            lookup_time_ms=index.lookup_time_ms(lookup),
            triangle_tests_per_lookup=lookup.stats.triangle_tests / max(1, lookup.num_lookups),
        )
    return result


# --------------------------------------------------------------------------
# Figure 9 — impact of scaling the key mapping
# --------------------------------------------------------------------------


def figure_09_key_mapping_scaling(
    num_keys: int = 1 << 16,
    num_lookups: int = 1 << 12,
    bucket_size: int = 32,
    key_bits: int = 32,
    seed: int = 11,
) -> ExperimentResult:
    """Figure 9 (conceptual): scaled vs unscaled key mapping on a uniform key set.

    With the unscaled mapping the x extent of the scene dominates, the BVH
    builder forms slabs that span many rows, and the unavoidable x-axis ray
    has to intersection-test triangles from neighbouring rows.  Scaling the
    y/z coordinates makes the builder separate rows first.
    """
    result = ExperimentResult(
        name="figure_9",
        description="Effect of y/z scaling on BVH quality (triangle tests per x-ray)",
        parameters={"num_keys": num_keys, "num_lookups": num_lookups, "key_bits": key_bits},
    )
    keyset = generate_keys(num_keys, uniformity=1.0, key_bits=key_bits, seed=seed)
    lookups = uniform_lookups(keyset, num_lookups, seed=seed + 1)
    for label, scaled in (("unscaled", False), ("scaled", True)):
        config = CgRXConfig(bucket_size=bucket_size, key_bits=key_bits, scaled_mapping=scaled)
        index = CgRXIndex(keyset.keys, keyset.row_ids, config)
        lookup = index.point_lookup_batch(lookups)
        result.add(
            mapping=label,
            lookup_time_ms=index.lookup_time_ms(lookup),
            triangle_tests_per_lookup=lookup.stats.triangle_tests / lookup.num_lookups,
            bvh_nodes_per_lookup=lookup.stats.bvh_node_visits / lookup.num_lookups,
        )
    return result


# --------------------------------------------------------------------------
# Figure 10 — naive vs optimized representation
# --------------------------------------------------------------------------


def figure_10_naive_vs_optimized(
    num_keys: int = 1 << 14,
    num_lookups: int = 1 << 12,
    bucket_sizes: Sequence[int] = (4, 16, 256),
    uniformities: Sequence[float] = (0.0, 0.5, 1.0),
    key_widths: Sequence[int] = (32, 64),
    seed: int = 13,
) -> ExperimentResult:
    """Figure 10: naive vs optimized representation across key width and uniformity."""
    result = ExperimentResult(
        name="figure_10",
        description="Naive vs optimized scene representation (scaled key mapping)",
        parameters={
            "num_keys": num_keys,
            "num_lookups": num_lookups,
            "bucket_sizes": list(bucket_sizes),
        },
    )
    for key_bits in key_widths:
        for uniformity in uniformities:
            keyset = generate_keys(num_keys, uniformity=uniformity, key_bits=key_bits, seed=seed)
            lookups = uniform_lookups(keyset, num_lookups, seed=seed + 1)
            for bucket_size in bucket_sizes:
                for representation in (Representation.NAIVE, Representation.OPTIMIZED):
                    config = CgRXConfig(
                        bucket_size=bucket_size,
                        key_bits=key_bits,
                        representation=representation,
                    )
                    index = CgRXIndex(keyset.keys, keyset.row_ids, config)
                    lookup = index.point_lookup_batch(lookups)
                    result.add(
                        key_bits=key_bits,
                        uniformity=uniformity,
                        bucket_size=bucket_size,
                        representation=representation.value,
                        lookup_time_ms=index.lookup_time_ms(lookup),
                        rays_per_lookup=lookup.stats.rays_cast / lookup.num_lookups,
                        footprint_mib=index.memory_footprint().total_bytes / float(1 << 20),
                    )
    return result


# --------------------------------------------------------------------------
# Figure 11 — bucket-size robustness
# --------------------------------------------------------------------------


def figure_11_bucket_size_robustness(
    num_keys: int = 1 << 14,
    num_lookups: int = 1 << 12,
    bucket_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512),
    distributions: Optional[Sequence[str]] = None,
    key_bits: int = 32,
    devices: Sequence[GpuDevice] = (RTX_4090,),
    seed: int = 17,
) -> ExperimentResult:
    """Figure 11: which bucket size wins across key distributions.

    The paper evaluates 4560 combinations (12 bucket sizes x 19 distributions
    x 2 key widths x 5 sizes x 2 GPUs); the default here covers the bucket
    size x distribution plane on one GPU, which is the part shown in the
    figure, and reports per-configuration relative performance.
    """
    distributions = list(distributions) if distributions is not None else list(DISTRIBUTIONS)
    result = ExperimentResult(
        name="figure_11",
        description="Bucket-size robustness across key distributions",
        parameters={
            "num_keys": num_keys,
            "bucket_sizes": list(bucket_sizes),
            "distributions": distributions,
        },
    )
    for device in devices:
        for distribution in distributions:
            keyset = generate_distribution(distribution, num_keys, key_bits=key_bits, seed=seed)
            lookups = uniform_lookups(keyset, num_lookups, seed=seed + 1)
            times: Dict[int, float] = {}
            ratios: Dict[int, float] = {}
            for bucket_size in bucket_sizes:
                config = CgRXConfig(bucket_size=bucket_size, key_bits=key_bits)
                index = CgRXIndex(keyset.keys, keyset.row_ids, config, device=device)
                lookup = index.point_lookup_batch(lookups)
                time_ms = index.lookup_time_ms(lookup)
                times[bucket_size] = time_ms
                ratios[bucket_size] = throughput_per_footprint(
                    lookup.num_lookups, time_ms, index.memory_footprint().total_bytes
                )
            best_time = min(times.values())
            best_ratio = max(ratios.values())
            for bucket_size in bucket_sizes:
                result.add(
                    device=device.name,
                    distribution=distribution,
                    bucket_size=bucket_size,
                    lookup_time_ms=times[bucket_size],
                    relative_lookup_time=times[bucket_size] / best_time,
                    throughput_per_footprint=ratios[bucket_size],
                    relative_tp_per_footprint=ratios[bucket_size] / best_ratio,
                )
    return result


# --------------------------------------------------------------------------
# Figures 12 and 13 — memory footprint and point-lookup performance
# --------------------------------------------------------------------------


def _point_lookup_comparison(
    name: str,
    description: str,
    key_bits: int,
    sizes: Sequence[int],
    uniformities: Sequence[float],
    num_lookups: int,
    seed: int,
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        description=description,
        parameters={"sizes": list(sizes), "uniformities": list(uniformities), "num_lookups": num_lookups},
    )
    for num_keys in sizes:
        for uniformity in uniformities:
            keyset = generate_keys(num_keys, uniformity=uniformity, key_bits=key_bits, seed=seed)
            lookups = uniform_lookups(keyset, num_lookups, seed=seed + 1)
            # Keep the data-to-cache ratio of the paper's gigabyte-scale key
            # sets so that random probes into the data array are DRAM bound.
            device = _scaled_cache_device(RTX_4090, keyset_bytes=num_keys * (key_bits // 8 + 4))
            factories = default_point_lookup_factories(key_bits)
            for index_name, factory in factories.items():
                index = factory(keyset, device)
                lookup = index.point_lookup_batch(lookups)
                time_ms = index.lookup_time_ms(lookup)
                footprint = index.memory_footprint().total_bytes
                result.add(
                    num_keys=num_keys,
                    uniformity=uniformity,
                    index=index_name,
                    footprint_mib=footprint / float(1 << 20),
                    lookup_time_ms=time_ms,
                    throughput_per_footprint=throughput_per_footprint(
                        lookup.num_lookups, time_ms, footprint
                    ),
                )
    return result


def figure_12_point_lookups_32bit(
    sizes: Sequence[int] = (1 << 12, 1 << 14, 1 << 16),
    uniformities: Sequence[float] = (0.0, 0.2, 1.0),
    num_lookups: int = 1 << 13,
    seed: int = 19,
) -> ExperimentResult:
    """Figure 12: footprint, point-lookup time and TP/footprint for 32-bit keys."""
    return _point_lookup_comparison(
        name="figure_12",
        description="Memory footprint and point-lookup performance, 32-bit keys",
        key_bits=32,
        sizes=sizes,
        uniformities=uniformities,
        num_lookups=num_lookups,
        seed=seed,
    )


def figure_13_point_lookups_64bit(
    sizes: Sequence[int] = (1 << 12, 1 << 14, 1 << 16),
    uniformities: Sequence[float] = (0.0, 0.2, 1.0),
    num_lookups: int = 1 << 13,
    seed: int = 23,
) -> ExperimentResult:
    """Figure 13: the same comparison for 64-bit keys (B+ cannot participate)."""
    return _point_lookup_comparison(
        name="figure_13",
        description="Memory footprint and point-lookup performance, 64-bit keys",
        key_bits=64,
        sizes=sizes,
        uniformities=uniformities,
        num_lookups=num_lookups,
        seed=seed,
    )


# --------------------------------------------------------------------------
# Figure 14 — range lookups
# --------------------------------------------------------------------------


def figure_14_range_lookups(
    num_keys: int = 1 << 16,
    expected_hits: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    num_range_lookups: int = 1 << 10,
    saturation_threads: int = 1 << 12,
    seed: int = 29,
) -> ExperimentResult:
    """Figure 14: range lookups on a dense 32-bit key set, varying the expected hits.

    The batch is large relative to the (scaled) saturation point so that the
    indexes answering a whole batch concurrently are fully utilised while
    RTScan, which only executes 32 range lookups at a time, is not — the
    mechanism behind its poor batched-range performance in the paper.
    """
    result = ExperimentResult(
        name="figure_14",
        description="Range-lookup performance on a dense 32-bit key set",
        parameters={
            "num_keys": num_keys,
            "expected_hits": list(expected_hits),
            "num_range_lookups": num_range_lookups,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.0, key_bits=32, seed=seed)
    device = _scaled_cache_device(
        _scaled_saturation_device(RTX_4090, saturation_threads, launch_overhead_ms=0.0005),
        keyset_bytes=num_keys * 8,
    )
    factories: Dict[str, IndexFactory] = {
        "cgRX (32)": cgrx_factory(32),
        "cgRX (256)": cgrx_factory(256),
        "RX": rx_factory(),
        "SA": sorted_array_factory(),
        "B+": btree_factory(),
        "RTScan (RTc1)": rtscan_factory(),
        "FullScan": fullscan_factory(),
    }
    indexes = {name: factory(keyset, device) for name, factory in factories.items()}
    for hits in expected_hits:
        lows, highs = range_lookups(keyset, count=num_range_lookups, expected_hits=hits, seed=seed)
        for name, index in indexes.items():
            lookup = index.range_lookup_batch(lows, highs)
            time_ms = index.lookup_time_ms(lookup)
            result.add(
                index=name,
                expected_hits=hits,
                normalized_time_ms=normalized_cumulative_time_ms(time_ms, lookup.total_matches),
                total_time_ms=time_ms,
                retrieved=lookup.total_matches,
            )
    return result


# --------------------------------------------------------------------------
# Figure 15 — varying the batch size
# --------------------------------------------------------------------------


def figure_15_batch_size(
    num_keys: int = 1 << 14,
    batch_sizes: Sequence[int] = (1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 15),
    saturation_threads: int = 1 << 11,
    seed: int = 31,
) -> ExperimentResult:
    """Figure 15: time per lookup as the batch size varies (GPU underutilisation).

    Batches below the device's saturation point leave the GPU underutilised
    and the time per lookup rises; above it the time per lookup is flat.  The
    saturation point is scaled down alongside the batch sizes (see
    :func:`_scaled_saturation_device`).
    """
    result = ExperimentResult(
        name="figure_15",
        description="Impact of the lookup batch size (time per lookup)",
        parameters={
            "num_keys": num_keys,
            "batch_sizes": list(batch_sizes),
            "saturation_threads": saturation_threads,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.2, key_bits=32, seed=seed)
    device = _scaled_saturation_device(RTX_4090, saturation_threads, launch_overhead_ms=0.0002)
    factories: Dict[str, IndexFactory] = {
        "cgRX (32)": cgrx_factory(32),
        "cgRX (256)": cgrx_factory(256),
        "cgRXu (1 cl)": cgrxu_factory(128),
        "RX": rx_factory(),
        "SA": sorted_array_factory(),
        "B+": btree_factory(),
        "HT": hash_table_factory(),
    }
    indexes = {name: factory(keyset, device) for name, factory in factories.items()}
    for batch_size in batch_sizes:
        lookups = uniform_lookups(keyset, batch_size, seed=seed + batch_size)
        for name, index in indexes.items():
            lookup = index.point_lookup_batch(lookups)
            time_ms = index.lookup_time_ms(lookup)
            result.add(
                index=name,
                batch_size=batch_size,
                time_per_lookup_ms=time_per_lookup_ms(time_ms, lookup.num_lookups),
            )
    return result


# --------------------------------------------------------------------------
# Figure 16 — varying the hit ratio
# --------------------------------------------------------------------------


def figure_16_hit_ratio(
    num_keys: int = 1 << 14,
    num_lookups: int = 1 << 12,
    miss_settings: Sequence[tuple] = (
        (0.0, 0.0),
        (0.01, 0.0),
        (0.1, 0.0),
        (0.3, 0.0),
        (0.5, 0.0),
        (0.7, 0.0),
        (0.9, 0.0),
        (0.99, 0.0),
        (1.0, 0.0),
        (0.5, 1.0),
        (1.0, 1.0),
    ),
    seed: int = 37,
) -> ExperimentResult:
    """Figure 16: accumulated point-lookup time as the miss ratio grows."""
    result = ExperimentResult(
        name="figure_16",
        description="Impact of the hit ratio (in-range and out-of-range misses)",
        parameters={"num_keys": num_keys, "num_lookups": num_lookups},
    )
    keyset = generate_keys(num_keys, uniformity=1.0, key_bits=32, seed=seed)
    factories = default_point_lookup_factories(32)
    indexes = {name: factory(keyset, RTX_4090) for name, factory in factories.items()}
    for miss_fraction, out_of_range in miss_settings:
        lookups = hit_miss_lookups(
            keyset,
            num_lookups,
            miss_fraction=miss_fraction,
            out_of_range_fraction=out_of_range,
            seed=seed + int(miss_fraction * 100) + int(out_of_range * 7),
        )
        for name, index in indexes.items():
            lookup = index.point_lookup_batch(lookups)
            result.add(
                index=name,
                miss_fraction=miss_fraction,
                out_of_range_fraction=out_of_range,
                lookup_time_ms=index.lookup_time_ms(lookup),
                hits=lookup.hits,
            )
    return result


# --------------------------------------------------------------------------
# Figure 17 — varying the lookup skew
# --------------------------------------------------------------------------


def figure_17_lookup_skew(
    num_keys: int = 1 << 14,
    num_lookups: int = 1 << 12,
    zipf_coefficients: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    seed: int = 41,
) -> ExperimentResult:
    """Figure 17: accumulated point-lookup time under Zipf-skewed lookups."""
    result = ExperimentResult(
        name="figure_17",
        description="Impact of lookup skew (Zipf-distributed lookup keys)",
        parameters={"num_keys": num_keys, "num_lookups": num_lookups},
    )
    keyset = generate_keys(num_keys, uniformity=0.2, key_bits=32, seed=seed)
    device = _scaled_cache_device(RTX_4090, keyset_bytes=len(keyset) * 8)
    factories = default_point_lookup_factories(32)
    indexes = {name: factory(keyset, device) for name, factory in factories.items()}
    for coefficient in zipf_coefficients:
        lookups = zipf_lookups(keyset, num_lookups, coefficient, seed=seed + int(coefficient * 10))
        for name, index in indexes.items():
            lookup = index.point_lookup_batch(lookups)
            result.add(
                index=name,
                zipf_coefficient=coefficient,
                lookup_time_ms=index.lookup_time_ms(lookup),
            )
    return result


# --------------------------------------------------------------------------
# Figure 18 — updates
# --------------------------------------------------------------------------


def figure_18_updates(
    num_keys: int = 1 << 14,
    num_lookups: int = 1 << 12,
    num_insert_waves: int = 8,
    num_delete_waves: int = 8,
    growth_factor: float = 2.2,
    saturation_threads: int = 1 << 10,
    seed: int = 43,
) -> ExperimentResult:
    """Figure 18: applying update waves and the lookup performance afterwards.

    Compares cgRXu's node-based in-place updates against rebuilding cgRX and
    RX from scratch, and against the native update paths of B+ and HT (built
    at the 40% load factor recommended for update workloads).
    """
    result = ExperimentResult(
        name="figure_18",
        description="Update waves: apply time, update TP/footprint, post-update lookups",
        parameters={
            "num_keys": num_keys,
            "insert_waves": num_insert_waves,
            "delete_waves": num_delete_waves,
            "growth_factor": growth_factor,
        },
    )
    keyset = generate_keys(num_keys, uniformity=1.0, key_bits=32, seed=seed)
    waves = update_waves(
        keyset,
        num_insert_waves=num_insert_waves,
        num_delete_waves=num_delete_waves,
        growth_factor=growth_factor,
        seed=seed + 1,
    )
    lookups = uniform_lookups(keyset, num_lookups, seed=seed + 2)
    # The per-bucket update kernel of cgRXu launches one thread per bucket;
    # scale the saturation point down so that, as in the paper, this kernel is
    # not artificially penalised by the small simulated bucket count.
    device = _scaled_saturation_device(RTX_4090, saturation_threads, launch_overhead_ms=0.0005)

    variants: Dict[str, GpuIndex] = {
        "cgRX (32) [rebuild]": cgrx_factory(32)(keyset, device),
        "cgRX (256) [rebuild]": cgrx_factory(256)(keyset, device),
        "cgRXu (1 cl)": cgrxu_factory(128)(keyset, device),
        "RX [rebuild]": rx_factory()(keyset, device),
        "B+": btree_factory()(keyset, device),
        "HT": hash_table_factory(load_factor=0.4)(keyset, device),
    }

    # Wave 0: lookup performance right after the bulk load.
    for name, index in variants.items():
        lookup = index.point_lookup_batch(lookups)
        result.add(
            panel="c_lookups",
            index=name,
            wave=0,
            kind="init",
            lookup_time_ms=index.lookup_time_ms(lookup),
        )

    for wave in waves:
        for name, index in variants.items():
            update = index.update_batch(
                insert_keys=wave.insert_keys if wave.insert_keys.size else None,
                insert_row_ids=wave.insert_row_ids if wave.insert_row_ids.size else None,
                delete_keys=wave.delete_keys if wave.delete_keys.size else None,
            )
            apply_time_ms = index.cost_model.kernel_time_ms(update.stats)
            footprint = index.memory_footprint().total_bytes
            result.add(
                panel="a_apply",
                index=name,
                wave=wave.wave,
                kind=wave.kind,
                apply_time_ms=apply_time_ms,
                rebuilt=update.rebuilt,
            )
            result.add(
                panel="b_tp_per_footprint",
                index=name,
                wave=wave.wave,
                kind=wave.kind,
                update_tp_per_footprint=throughput_per_footprint(
                    wave.size, apply_time_ms, footprint
                ),
            )
            lookup = index.point_lookup_batch(lookups)
            result.add(
                panel="c_lookups",
                index=name,
                wave=wave.wave,
                kind=wave.kind,
                lookup_time_ms=index.lookup_time_ms(lookup),
            )
    return result


# --------------------------------------------------------------------------
# Serving: sharded deployments under a timed client request stream
# --------------------------------------------------------------------------


def serving_deployment(
    num_keys: int = 1 << 13,
    num_requests: int = 1 << 11,
    shard_counts: Sequence[int] = (1, 4, 8),
    partitioners: Sequence[str] = ("range", "hash"),
    zipf_coefficients: Sequence[float] = (0.0, 1.0, 1.5),
    cache_capacity: int = 1024,
    max_batch_size: int = 256,
    max_wait_ms: float = 0.5,
    requests_per_ms: float = 32.0,
    miss_fraction: float = 0.05,
    num_update_waves: int = 4,
    seed: int = 47,
) -> ExperimentResult:
    """Serving experiment: the `repro.serve` stack under client traffic.

    Three panels, all beyond the paper's bulk-call evaluation:

    * ``a_sharding`` — the partitioner x shard-count plane under one skewed
      stream: hash partitioning evens out the per-shard load (request skew
      near 1) while range partitioning keeps range queries narrow,
    * ``b_skew_cache`` — the Zipf-coefficient sweep with the result cache on
      and off: skew is what the cache converts into host-latency hits, and
    * ``c_maintenance`` — insert waves against a cgRXu deployment: chains
      degrade shard health until the background worker rebuilds them.
    """
    from repro.bench.harness import sharded_factory
    from repro.serve.sharded import ServeConfig, ShardedIndex
    from repro.workloads.requests import zipf_request_stream

    result = ExperimentResult(
        name="serving",
        description="Sharded index serving: batching, caching, maintenance",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "shard_counts": list(shard_counts),
            "partitioners": list(partitioners),
            "zipf_coefficients": list(zipf_coefficients),
            "cache_capacity": cache_capacity,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)

    def deployment(partitioner: str, shards: int, cache: int) -> GpuIndex:
        factory = sharded_factory(
            inner=cgrx_factory(32),
            num_shards=shards,
            partitioner=partitioner,
            cache_capacity=cache,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
        )
        return factory(keyset, RTX_4090)

    # (a) Sharding plane under one skewed stream.
    stream = zipf_request_stream(
        keyset,
        num_requests,
        zipf_coefficient=1.0,
        requests_per_ms=requests_per_ms,
        miss_fraction=miss_fraction,
        seed=seed + 1,
    )
    for partitioner in partitioners:
        for shards in shard_counts:
            served = deployment(partitioner, shards, cache_capacity)
            metrics = served.serve_stream(stream)
            snapshot = metrics.snapshot()
            result.add(
                panel="a_sharding",
                partitioner=partitioner,
                num_shards=shards,
                latency_p50_ms=snapshot["latency_p50_ms"],
                latency_p99_ms=snapshot["latency_p99_ms"],
                throughput_per_s=snapshot["throughput_per_s"],
                batches=snapshot["batches"],
                request_skew=snapshot["request_skew"],
                cache_hit_rate=served.cache.stats.hit_rate if served.cache else 0.0,
            )

    # (b) Lookup skew with and without the result cache.
    for coefficient in zipf_coefficients:
        skewed = zipf_request_stream(
            keyset,
            num_requests,
            zipf_coefficient=coefficient,
            requests_per_ms=requests_per_ms,
            miss_fraction=miss_fraction,
            seed=seed + 2 + int(coefficient * 10),
        )
        for cache in (cache_capacity, 0):
            served = deployment("range", 4, cache)
            metrics = served.serve_stream(skewed)
            snapshot = metrics.snapshot()
            result.add(
                panel="b_skew_cache",
                zipf_coefficient=coefficient,
                cache_capacity=cache,
                latency_p50_ms=snapshot["latency_p50_ms"],
                latency_p99_ms=snapshot["latency_p99_ms"],
                throughput_per_s=snapshot["throughput_per_s"],
                cache_hit_rate=served.cache.stats.hit_rate if served.cache else 0.0,
                negative_hits=served.cache.stats.negative_hits if served.cache else 0,
            )

    # (c) Update waves against a cgRXu deployment: degradation + maintenance.
    config = ServeConfig(
        num_shards=4,
        partitioner="range",
        key_bits=32,
        cache_capacity=cache_capacity,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        rebuild_threshold=0.25,
    )
    served = ShardedIndex(
        keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config
    )
    rng = np.random.default_rng(seed + 3)
    wave_size = max(1, num_keys // 4)
    for wave in range(1, num_update_waves + 1):
        insert_keys = rng.integers(0, (1 << 32) - 1, size=wave_size, dtype=np.uint64).astype(
            np.uint32
        )
        degradation_before = served.degradation_score()
        update = served.update_batch(insert_keys=insert_keys)
        maintenance = served.maintenance.snapshot()
        result.add(
            panel="c_maintenance",
            wave=wave,
            inserted=update.inserted,
            degradation_before=degradation_before,
            degradation_after=served.degradation_score(),
            rebuilds_performed=maintenance["rebuilds_performed"],
            maintenance_time_ms=maintenance["maintenance_time_ms"],
        )
    return result


# --------------------------------------------------------------------------
# Availability: replicated deployments under failure injection
# --------------------------------------------------------------------------


def availability(
    num_keys: int = 1 << 12,
    num_requests: int = 1 << 10,
    num_shards: int = 4,
    replication_factors: Sequence[int] = (1, 2, 3),
    read_policies: Sequence[str] = ("round_robin", "least_loaded"),
    requests_per_ms: float = 32.0,
    miss_fraction: float = 0.05,
    max_batch_size: int = 64,
    max_wait_ms: float = 0.5,
    num_update_waves: int = 3,
    seed: int = 53,
) -> ExperimentResult:
    """Availability experiment: the replication layer under injected failures.

    Three panels, all with the result cache off so every request exercises a
    replica and the served answers can be compared 1:1 against an oracle:

    * ``a_read_policies`` — replication factor x read policy on a clean
      stream: replicas absorb read load (per-replica skew near 1) at the
      price of a replicated memory footprint,
    * ``b_failover`` — the same deployment under seeded failure weather
      (crashes, slow replicas, transient errors): failovers, unavailability
      windows and failover latency, with the *differential oracle check*
      that every served answer is byte-identical to a single-instance
      sorted-array index, and
    * ``c_quorum_resync`` — update waves against a group with crashed
      replicas: quorum accounting, then recovery via log replay vs snapshot
      resync, again oracle-checked after catch-up.
    """
    from repro.baselines.sorted_array import SortedArrayIndex
    from repro.bench.harness import sharded_factory
    from repro.serve.replication import FailureEvent
    from repro.serve.router import apply_update_to_entries
    from repro.workloads.failures import failure_schedule
    from repro.workloads.requests import zipf_request_stream

    result = ExperimentResult(
        name="replication",
        description="Replicated fault-tolerant serving: failover, quorum, resync",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_shards": num_shards,
            "replication_factors": list(replication_factors),
            "read_policies": list(read_policies),
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)
    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)

    def deployment(
        factor: int,
        policy: str,
        inner: Optional[IndexFactory] = None,
        **serve_kwargs,
    ):
        factory = sharded_factory(
            inner=inner or cgrx_factory(32),
            num_shards=num_shards,
            partitioner="range",
            cache_capacity=0,
            replication_factor=factor,
            read_policy=policy,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            **serve_kwargs,
        )
        return factory(keyset, RTX_4090)

    stream = zipf_request_stream(
        keyset,
        num_requests,
        zipf_coefficient=1.0,
        requests_per_ms=requests_per_ms,
        miss_fraction=miss_fraction,
        seed=seed + 1,
    )
    # The expected per-request answers are a property of the fixed stream,
    # computed once; every row only compares bytes against them.
    stream_expected = oracle.point_lookup_batch(stream.keys.astype(np.uint32))

    def oracle_identical(served) -> bool:
        row_agg, match_counts = served.last_answers
        return (
            row_agg.tobytes() == stream_expected.row_ids.tobytes()
            and match_counts.tobytes() == stream_expected.match_counts.tobytes()
        )

    # (a) Read balancing across the replication factor x policy plane.  The
    # unreplicated deployment ignores read policies: one baseline row only.
    panel_a = [(1, "(single)")] if 1 in replication_factors else []
    panel_a += [
        (factor, policy)
        for policy in read_policies
        for factor in replication_factors
        if factor > 1
    ]
    for factor, policy in panel_a:
        served = deployment(factor, policy if factor > 1 else "round_robin")
        metrics = served.serve_stream(stream, record_answers=True)
        snapshot = metrics.snapshot()
        result.add(
            panel="a_read_policies",
            read_policy=policy,
            replication_factor=factor,
            latency_p50_ms=snapshot["latency_p50_ms"],
            latency_p99_ms=snapshot["latency_p99_ms"],
            throughput_per_s=snapshot["throughput_per_s"],
            replica_skew=snapshot.get("replica_skew", 1.0),
            footprint_mib=served.memory_footprint().total_bytes / float(1 << 20),
            answers_identical=oracle_identical(served),
        )

    # (b) Failure weather: crashes, slow replicas, transient errors.
    for factor in [f for f in replication_factors if f > 1]:
        served = deployment(factor, "round_robin")
        events = failure_schedule(
            num_shards,
            factor,
            duration_ms=stream.duration_ms,
            crashes_per_s=80.0,
            slowdowns_per_s=60.0,
            transients_per_s=160.0,
            mean_outage_ms=4.0,
            seed=seed + 2,
        )
        served.inject_failures(events)
        metrics = served.serve_stream(stream, record_answers=True)
        snapshot = metrics.snapshot()
        replication = served.replication_snapshot()
        maintenance = served.maintenance.snapshot()
        result.add(
            panel="b_failover",
            replication_factor=factor,
            failure_events=len(events),
            latency_p99_ms=snapshot["latency_p99_ms"],
            failovers=snapshot.get("failovers", 0),
            failover_latency_p99_ms=snapshot.get("failover_latency_p99_ms", 0.0),
            # Merged (interval-union) figure, consistent with `availability`;
            # the per-shard sum (overlaps double-counted) rides alongside.
            unavailable_ms=snapshot.get("unavailable_ms", 0.0),
            shard_outage_ms=replication["unavailable_ms"],
            availability=snapshot.get("availability", 1.0),
            emergency_restarts=replication.get("emergency_restarts", 0),
            resyncs_performed=maintenance["resyncs_performed"],
            answers_identical=oracle_identical(served),
        )

    # (c) Writes under partial outages: quorum accounting and catch-up.
    # cgRXu shards update natively, so short-lagged replicas catch up by
    # replaying the apply log; the log retains a single record here, so a
    # replica that missed more than one write has to take a snapshot resync
    # instead — both recovery paths are exercised.
    factor = max(replication_factors)
    served = deployment(factor, "round_robin", inner=cgrxu_factory(128), log_capacity=1)
    rng = np.random.default_rng(seed + 3)
    oracle_keys = keyset.keys.copy()
    oracle_rows = keyset.row_ids.copy()
    wave_size = max(1, num_keys // 8)
    next_row = int(oracle_rows.max()) + 1
    # Group counters are cumulative; report per-wave deltas.
    previous_totals: dict = {}

    def wave_delta(totals: dict, counter: str) -> int:
        delta = int(totals.get(counter, 0)) - int(previous_totals.get(counter, 0))
        return delta
    for wave in range(1, num_update_waves + 1):
        # Crash `wave - 1` replicas of every shard for the duration of the
        # wave: wave 1 writes at full strength, later waves under-quorum.
        now = served.clock.now_ms
        injector = served.inject_failures(
            [
                FailureEvent(at_ms=now, kind="crash", shard_id=s, replica_id=r, duration_ms=5.0)
                for s in range(num_shards)
                for r in range(wave - 1)
            ]
        )
        injector.poll(now)
        insert_keys = rng.integers(0, (1 << 32) - 1, size=wave_size, dtype=np.uint64).astype(
            np.uint32
        )
        insert_rows = np.arange(next_row, next_row + wave_size, dtype=np.uint32)
        next_row += wave_size
        # Two batches per wave: a replica down for the whole wave misses two
        # log records — more than log_capacity retains — and must snapshot.
        half = wave_size // 2
        served.update_batch(
            insert_keys=insert_keys[:half], insert_row_ids=insert_rows[:half]
        )
        served.update_batch(
            insert_keys=insert_keys[half:], insert_row_ids=insert_rows[half:]
        )
        oracle_keys, oracle_rows, _ = apply_update_to_entries(
            oracle_keys,
            oracle_rows,
            insert_keys,
            insert_rows,
            np.empty(0, dtype=np.uint32),
        )
        # Outages end; recovered replicas catch up via the maintenance worker.
        injector.poll(now + 10.0)
        served.maintenance.run_cycle(now + 10.0)
        replication = served.replication_snapshot()
        wave_oracle = SortedArrayIndex(oracle_keys, oracle_rows, key_bits=32)
        # Probe the *post-update* key population (original keys AND this
        # run's inserts) plus some guaranteed misses — inserts lost by a
        # quorum write or a resync must not escape the differential check.
        probe_rng = np.random.default_rng(seed + 4 + wave)
        probe = np.concatenate(
            [
                probe_rng.choice(oracle_keys, size=224),
                probe_rng.integers(0, (1 << 32) - 1, size=32, dtype=np.uint64).astype(
                    np.uint32
                ),
            ]
        )
        expected = wave_oracle.point_lookup_batch(probe)
        answered = served.point_lookup_batch(probe)
        result.add(
            panel="c_quorum_resync",
            wave=wave,
            crashed_replicas=wave - 1,
            writes=wave_delta(replication, "writes"),
            write_acks=wave_delta(replication, "write_acks"),
            quorum_failures=wave_delta(replication, "quorum_failures"),
            resyncs_log_replay=wave_delta(replication, "resyncs_log_replay"),
            resyncs_snapshot=wave_delta(replication, "resyncs_snapshot"),
            answers_identical=bool(
                answered.row_ids.tobytes() == expected.row_ids.tobytes()
                and answered.match_counts.tobytes() == expected.match_counts.tobytes()
            ),
        )
        previous_totals = replication
    return result


# --------------------------------------------------------------------------
# Lifecycle: maintenance tiers under a sustained update+lookup stream
# --------------------------------------------------------------------------


def lifecycle(
    num_keys: int = 1 << 12,
    num_requests: int = 1 << 10,
    num_shards: int = 4,
    num_waves: int = 4,
    wave_size: Optional[int] = None,
    delete_fraction: float = 0.25,
    requests_per_ms: float = 32.0,
    zipf_coefficient: float = 1.0,
    max_batch_size: int = 64,
    max_wait_ms: float = 0.5,
    quick: bool = False,
    seed: int = 61,
) -> ExperimentResult:
    """Lifecycle experiment: the tiered index-maintenance policy under load.

    A cgRXu deployment serves ``num_waves`` alternating lookup-stream /
    update-wave rounds (inserts grow the node chains, whole-duplicate-group
    deletes shrink bucket maxima so compaction re-anchors representatives)
    under one maintenance policy per row group:

    * ``none`` — maintenance disabled: chain debt accumulates unchecked,
    * ``compact`` — incremental per-bucket compaction only (tier 1),
    * ``rebuild_stop_world`` — full rebuilds that take the shard offline
      (the pre-lifecycle behaviour): *nonzero* unavailability windows,
    * ``rebuild_double_buffered`` — full rebuilds built in the background
      and swapped atomically: *zero* unavailability windows at the price of
      both generations briefly resident (``rebuild_peak_mib``), and
    * ``tiered`` — the production default: compact early, escalate to
      double-buffered rebuilds late.

    Every row is oracle-checked: the per-request answers of each served
    stream chunk must be byte-identical to an untouched sorted-array
    reference built from the authoritative entries — maintenance must never
    change an answer, only its cost.
    """
    from repro.baselines.sorted_array import SortedArrayIndex
    from repro.bench.harness import cgrxu_factory
    from repro.serve.router import apply_update_to_entries
    from repro.serve.sharded import ServeConfig, ShardedIndex
    from repro.workloads.requests import RequestStream, zipf_request_stream

    if quick:
        num_keys = min(num_keys, 1 << 11)
        num_requests = min(num_requests, 1 << 9)
        num_waves = min(num_waves, 3)

    wave_size = int(wave_size) if wave_size is not None else max(1, (3 * num_keys) // 4)
    never = float("inf")
    policies = (
        ("none", dict(compact_threshold=never, rebuild_threshold=never)),
        ("compact", dict(compact_threshold=0.15, rebuild_threshold=never)),
        (
            "rebuild_stop_world",
            dict(
                compact_threshold=0.3,
                rebuild_threshold=0.3,
                rebuild_mode="stop_the_world",
            ),
        ),
        (
            "rebuild_double_buffered",
            dict(
                compact_threshold=0.3,
                rebuild_threshold=0.3,
                rebuild_mode="double_buffered",
            ),
        ),
        ("tiered", dict(compact_threshold=0.15, rebuild_threshold=0.6)),
    )

    result = ExperimentResult(
        name="lifecycle",
        description="Maintenance tiers: compaction vs refit vs (double-buffered) rebuild",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_shards": num_shards,
            "num_waves": num_waves,
            "wave_size": wave_size,
            "policies": [name for name, _ in policies],
            "quick": quick,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)

    for policy_name, knobs in policies:
        config = ServeConfig(
            num_shards=num_shards,
            partitioner="range",
            key_bits=32,
            cache_capacity=0,  # every request exercises a shard (oracle 1:1)
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            **knobs,
        )
        served = ShardedIndex(
            keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config
        )
        oracle_keys = np.sort(keyset.keys).astype(np.uint32)
        oracle_rows = keyset.row_ids[np.argsort(keyset.keys, kind="stable")].copy()
        rng = np.random.default_rng(seed + 1)  # same workload for every policy
        next_row = int(keyset.row_ids.max()) + 1

        for wave in range(1, num_waves + 1):
            # Serve a lookup chunk over the *live* key population, offset to
            # the deployment's current simulated time.
            population = KeySet(
                keys=oracle_keys, row_ids=oracle_rows, key_bits=32, description="live"
            )
            chunk = zipf_request_stream(
                population,
                num_requests,
                zipf_coefficient=zipf_coefficient,
                requests_per_ms=requests_per_ms,
                miss_fraction=0.0,
                seed=seed + 16 * wave,
            )
            chunk = RequestStream(
                arrival_ms=chunk.arrival_ms + served.clock.now_ms,
                keys=chunk.keys,
                client_ids=chunk.client_ids,
                description=chunk.description,
            )
            served.serve_stream(chunk, record_answers=True)
            reference = SortedArrayIndex(oracle_keys, oracle_rows, key_bits=32)
            expected = reference.point_lookup_batch(chunk.keys)
            answers, counts = served.last_answers
            oracle_identical = bool(
                answers.tobytes() == expected.row_ids.tobytes()
                and counts.tobytes() == expected.match_counts.tobytes()
            )

            # Update wave: inserts grow chains; whole-duplicate-group deletes
            # shrink bucket maxima (what representative re-anchoring heals).
            insert_keys = rng.integers(
                0, (1 << 32) - 1, size=wave_size, dtype=np.uint64
            ).astype(np.uint32)
            insert_rows = np.arange(next_row, next_row + wave_size, dtype=np.uint32)
            next_row += wave_size
            distinct, group_sizes = np.unique(oracle_keys, return_counts=True)
            victims = rng.choice(
                distinct.shape[0],
                size=min(distinct.shape[0], max(1, int(wave_size * delete_fraction))),
                replace=False,
            )
            victims = victims[~np.isin(distinct[victims], insert_keys)]
            delete_keys = np.repeat(distinct[victims], group_sizes[victims]).astype(
                np.uint32
            )
            served.update_batch(
                insert_keys=insert_keys,
                insert_row_ids=insert_rows,
                delete_keys=delete_keys,
            )
            oracle_keys, oracle_rows, _ = apply_update_to_entries(
                oracle_keys, oracle_rows, insert_keys, insert_rows, delete_keys
            )

            metrics = served.metrics.snapshot()
            maintenance = served.maintenance.snapshot()
            row = dict(
                policy=policy_name,
                wave=wave,
                requests=metrics["requests"],
                latency_p50_ms=metrics["latency_p50_ms"],
                latency_p99_ms=metrics["latency_p99_ms"],
                latency_p99_during_maintenance_ms=metrics.get(
                    "latency_p99_during_maintenance_ms", 0.0
                ),
                degradation=served.degradation_score(),
                compactions=maintenance["compactions_performed"],
                rebuilds=maintenance["rebuilds_performed"],
                maintenance_ms_compact=maintenance.get("maintenance_ms_compact", 0.0),
                maintenance_ms_rebuild=maintenance.get("maintenance_ms_rebuild", 0.0),
                unavailability_windows=len(served.metrics.unavailability_windows),
                unavailable_ms=metrics.get("unavailable_ms", 0.0),
                availability=metrics.get("availability", 1.0),
                rebuild_peak_mib=maintenance["rebuild_peak_bytes"] / float(1 << 20),
                footprint_mib=served.memory_footprint().total_bytes / float(1 << 20),
                oracle_identical=oracle_identical,
            )
            result.add(**row)
    return result


# --------------------------------------------------------------------------
# Hotpath: wall-clock scalar vs vector vs compiled (the perf trajectory)
# --------------------------------------------------------------------------


def hotpath(
    num_keys: int = 100_000,
    batch_sizes: Sequence[int] = (256, 1024, 4096),
    num_ranges: int = 512,
    range_hits: int = 16,
    update_size: int = 4096,
    scaling_sizes: Sequence[int] = (1_000_000, 10_000_000),
    scaling_batch: int = 100_000,
    scalar_sample: int = 512,
    key_bits: int = 64,
    repeats: int = 3,
    quick: bool = False,
    seed: int = 67,
) -> ExperimentResult:
    """Hotpath experiment: *real* wall-clock engine speedups.

    Unlike every other experiment (which reports simulated GPU time), this one
    measures how long the reproduction itself takes to answer batches — the
    repo's wall-clock perf trajectory.  One cgRXu index is built per workload
    and queried under all three engines (best of ``repeats``); every row
    carries an ``identical`` flag proving the batch engines returned
    byte-identical answers *and* identical instrumentation counters.

    Panels a–c compare the engines on a fixed index; panel ``d_scaling`` is
    the scaling study: per-key point-lookup cost at ``scaling_sizes`` keys
    (1M and 10M by default).  The scalar reference is sampled on a bounded
    ``scalar_sample``-key batch there (a full scalar pass over 10M-key
    batches would dominate the run without adding information); vector and
    compiled answer the full ``scaling_batch`` and must agree byte-for-byte
    with each other *and* with the scalar oracle on the sampled batch.

    ``quick=True`` shrinks the workload for CI smoke runs.
    """
    import time

    if quick:
        num_keys = min(num_keys, 20_000)
        batch_sizes = tuple(b for b in batch_sizes if b <= 1024) or (256,)
        num_ranges = min(num_ranges, 128)
        update_size = min(update_size, 1024)
        scaling_sizes = tuple(min(size, 50_000) for size in scaling_sizes[:1]) or (50_000,)
        scaling_batch = min(scaling_batch, 10_000)
        repeats = 2

    from repro.rtx import compiled as compiled_backend

    result = ExperimentResult(
        name="hotpath",
        description="Wall-clock speedup of the vector and compiled batch engines over the scalar reference",
        parameters={
            "num_keys": num_keys,
            "batch_sizes": list(batch_sizes),
            "num_ranges": num_ranges,
            "range_hits": range_hits,
            "update_size": update_size,
            "scaling_sizes": list(scaling_sizes),
            "scaling_batch": scaling_batch,
            "scalar_sample": scalar_sample,
            "key_bits": key_bits,
            "repeats": repeats,
            "quick": quick,
            "compiled_backend": compiled_backend.available_backend() or "none",
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.8, key_bits=key_bits, seed=seed)
    index = CgRXuIndex(keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=key_bits))

    def timed(target, engine: str, call):
        target.config.engine = engine
        best = float("inf")
        answer = None
        for _ in range(repeats):
            start = time.perf_counter()
            answer = call()
            best = min(best, time.perf_counter() - start)
        return best, answer

    def stats_identical(a, b) -> bool:
        return dataclasses.asdict(a) == dataclasses.asdict(b)

    def point_identical(a, b) -> bool:
        return bool(
            a.row_ids.tobytes() == b.row_ids.tobytes()
            and a.match_counts.tobytes() == b.match_counts.tobytes()
            and stats_identical(a.stats, b.stats)
        )

    # (a) Point lookups across batch sizes.
    for batch_size in batch_sizes:
        lookups = uniform_lookups(keyset, batch_size, seed=seed + batch_size)
        scalar_s, scalar_result = timed(
            index, "scalar", lambda: index.point_lookup_batch(lookups)
        )
        vector_s, vector_result = timed(
            index, "vector", lambda: index.point_lookup_batch(lookups)
        )
        compiled_s, compiled_result = timed(
            index, "compiled", lambda: index.point_lookup_batch(lookups)
        )
        result.add(
            panel="a_point",
            batch_size=batch_size,
            scalar_ms=scalar_s * 1e3,
            vector_ms=vector_s * 1e3,
            compiled_ms=compiled_s * 1e3,
            speedup=scalar_s / vector_s,
            compiled_speedup=scalar_s / compiled_s,
            compiled_vs_vector=vector_s / compiled_s,
            identical=bool(
                point_identical(scalar_result, vector_result)
                and point_identical(scalar_result, compiled_result)
            ),
        )

    # (b) Range lookups.
    lows, highs = range_lookups(keyset, count=num_ranges, expected_hits=range_hits, seed=seed + 1)
    scalar_s, scalar_range = timed(index, "scalar", lambda: index.range_lookup_batch(lows, highs))
    vector_s, vector_range = timed(index, "vector", lambda: index.range_lookup_batch(lows, highs))
    compiled_s, compiled_range = timed(index, "compiled", lambda: index.range_lookup_batch(lows, highs))

    def range_identical(a, b) -> bool:
        return bool(
            all(
                left.tobytes() == right.tobytes()
                for left, right in zip(a.row_ids, b.row_ids)
            )
            and stats_identical(a.stats, b.stats)
        )

    result.add(
        panel="b_range",
        batch_size=num_ranges,
        scalar_ms=scalar_s * 1e3,
        vector_ms=vector_s * 1e3,
        compiled_ms=compiled_s * 1e3,
        speedup=scalar_s / vector_s,
        compiled_speedup=scalar_s / compiled_s,
        compiled_vs_vector=vector_s / compiled_s,
        identical=bool(
            range_identical(scalar_range, vector_range)
            and range_identical(scalar_range, compiled_range)
        ),
    )

    # (c) Update batch: fresh indexes (updates mutate), one per engine.
    rng = np.random.default_rng(seed + 2)
    insert_keys = rng.choice(keyset.keys, size=update_size).astype(keyset.keys.dtype)
    delete_keys = rng.choice(
        keyset.keys, size=update_size // 2, replace=False
    ).astype(keyset.keys.dtype)
    updates = {}
    for engine in ("scalar", "vector", "compiled"):
        fresh = CgRXuIndex(
            keyset.keys,
            keyset.row_ids,
            CgRXuConfig(key_bits=key_bits, engine=engine),
        )
        start = time.perf_counter()
        outcome = fresh.update_batch(insert_keys=insert_keys, delete_keys=delete_keys)
        updates[engine] = (time.perf_counter() - start, outcome, fresh)
    scalar_s, scalar_update, scalar_index = updates["scalar"]
    vector_s, vector_update, vector_index = updates["vector"]
    compiled_s, compiled_update, compiled_index = updates["compiled"]
    entries = {
        engine: updates[engine][2].export_entries()
        for engine in ("scalar", "vector", "compiled")
    }

    def update_identical(a, b, a_entries, b_entries) -> bool:
        return bool(
            a.inserted == b.inserted
            and a.deleted == b.deleted
            and stats_identical(a.stats, b.stats)
            and a_entries[0].tobytes() == b_entries[0].tobytes()
            and a_entries[1].tobytes() == b_entries[1].tobytes()
        )

    result.add(
        panel="c_update",
        batch_size=update_size + update_size // 2,
        scalar_ms=scalar_s * 1e3,
        vector_ms=vector_s * 1e3,
        compiled_ms=compiled_s * 1e3,
        speedup=scalar_s / vector_s,
        compiled_speedup=scalar_s / compiled_s,
        compiled_vs_vector=vector_s / compiled_s,
        identical=bool(
            update_identical(scalar_update, vector_update, entries["scalar"], entries["vector"])
            and update_identical(
                scalar_update, compiled_update, entries["scalar"], entries["compiled"]
            )
        ),
    )

    # (d) Scaling study: per-key point-lookup cost at 1M/10M keys.
    for size in scaling_sizes:
        scale_keyset = generate_keys(size, uniformity=0.8, key_bits=key_bits, seed=seed + 3)
        scale_index = CgRXuIndex(
            scale_keyset.keys, scale_keyset.row_ids, CgRXuConfig(key_bits=key_bits)
        )
        lookups = uniform_lookups(scale_keyset, scaling_batch, seed=seed + 4)
        sample = lookups[:scalar_sample]

        scalar_s, scalar_result = timed(
            scale_index, "scalar", lambda: scale_index.point_lookup_batch(sample)
        )
        vector_sample_s, vector_sample = timed(
            scale_index, "vector", lambda: scale_index.point_lookup_batch(sample)
        )
        compiled_sample_s, compiled_sample = timed(
            scale_index, "compiled", lambda: scale_index.point_lookup_batch(sample)
        )
        vector_s, vector_result = timed(
            scale_index, "vector", lambda: scale_index.point_lookup_batch(lookups)
        )
        compiled_s, compiled_result = timed(
            scale_index, "compiled", lambda: scale_index.point_lookup_batch(lookups)
        )
        result.add(
            panel="d_scaling",
            num_keys=size,
            batch_size=scaling_batch,
            scalar_ns_per_key=scalar_s / max(1, sample.shape[0]) * 1e9,
            vector_ns_per_key=vector_s / max(1, lookups.shape[0]) * 1e9,
            compiled_ns_per_key=compiled_s / max(1, lookups.shape[0]) * 1e9,
            compiled_vs_vector=vector_s / compiled_s,
            arena_mib=scale_index.compiled_buffers_bytes() / float(1 << 20),
            identical=bool(
                point_identical(scalar_result, vector_sample)
                and point_identical(scalar_result, compiled_sample)
                and point_identical(vector_result, compiled_result)
            ),
        )
    return result


# --------------------------------------------------------------------------
# Observability: tracing overhead and latency attribution
# --------------------------------------------------------------------------


def observability(
    num_keys: int = 1 << 12,
    num_requests: int = 1 << 10,
    num_shards: int = 4,
    replication_factor: int = 2,
    num_waves: int = 3,
    wave_size: Optional[int] = None,
    requests_per_ms: float = 32.0,
    zipf_coefficient: float = 1.0,
    miss_fraction: float = 0.05,
    cache_capacity: int = 256,
    max_batch_size: int = 64,
    max_wait_ms: float = 0.5,
    timing_repeats: int = 5,
    percentile: float = 99.0,
    trace_dir: Optional[str] = ".",
    quick: bool = False,
    seed: int = 67,
) -> ExperimentResult:
    """Observability experiment: tracing cost and per-stage tail attribution.

    A replicated cgRXu deployment serves a maintenance-heavy workload —
    alternating insert waves (which grow node chains and trigger the tiered
    maintenance worker mid-stream) and skewed lookup chunks under seeded
    failure weather — once with tracing off and once with tracing on, from
    identical seeds.  Three panels:

    * ``a_stage_breakdown`` — the attribution pipeline's answer to "where
      does the tail latency go": per-stage critical-path share of the
      requests at the target percentile (queue wait, device execution,
      failover penalties, cache probes), plus maintenance interference
      measured as span overlap,
    * ``b_overhead`` — wall-clock cost of tracing (best-of-``timing_repeats``
      for both modes) with the behaviour-neutrality check: the traced and
      untraced runs must produce byte-identical answers *and* identical
      metrics snapshots, and
    * ``c_timeseries`` — periodic telemetry samples along the simulated
      clock, demonstrating the bounded-memory time-series surface.

    The traced run's spans are additionally exported as a Chrome trace-event
    document (``TRACE_obs.json`` under ``trace_dir``; pass ``None`` to skip).
    """
    import os
    import time

    from repro.obs import critical_path_breakdown, format_breakdown
    from repro.serve.sharded import ServeConfig, ShardedIndex
    from repro.workloads.failures import failure_schedule
    from repro.workloads.requests import RequestStream, zipf_request_stream

    if quick:
        num_keys = min(num_keys, 1 << 11)
        num_requests = min(num_requests, 1 << 9)
        num_waves = min(num_waves, 2)
        timing_repeats = min(timing_repeats, 3)

    wave_size = int(wave_size) if wave_size is not None else max(1, num_keys // 2)
    result = ExperimentResult(
        name="obs",
        description="Request tracing: overhead, neutrality, tail attribution",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_shards": num_shards,
            "replication_factor": replication_factor,
            "num_waves": num_waves,
            "wave_size": wave_size,
            "timing_repeats": timing_repeats,
            "percentile": percentile,
            "quick": quick,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)

    def run(traced: bool):
        """One full serving run; returns (elapsed_s, answers, snapshot, served)."""
        config = ServeConfig(
            num_shards=num_shards,
            partitioner="hash",
            key_bits=32,
            cache_capacity=cache_capacity,
            replication_factor=replication_factor,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            compact_threshold=0.1,
            rebuild_threshold=0.6,
            tracing=traced,
            telemetry_sample_interval_ms=5.0,
        )
        served = ShardedIndex(
            keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config
        )
        rng = np.random.default_rng(seed + 1)  # identical workload either way
        answers: List[bytes] = []
        begin = time.perf_counter()
        for wave in range(1, num_waves + 1):
            insert_keys = rng.integers(
                0, (1 << 32) - 1, size=wave_size, dtype=np.uint64
            ).astype(np.uint32)
            served.update_batch(insert_keys=insert_keys)
            chunk = zipf_request_stream(
                keyset,
                num_requests,
                zipf_coefficient=zipf_coefficient,
                requests_per_ms=requests_per_ms,
                miss_fraction=miss_fraction,
                seed=seed + 16 * wave,
            )
            now = served.clock.now_ms
            chunk = RequestStream(
                arrival_ms=chunk.arrival_ms + now,
                keys=chunk.keys,
                client_ids=chunk.client_ids,
                description=chunk.description,
            )
            if replication_factor > 1:
                events = failure_schedule(
                    num_shards,
                    replication_factor,
                    duration_ms=chunk.duration_ms,
                    crashes_per_s=40.0,
                    slowdowns_per_s=40.0,
                    transients_per_s=80.0,
                    mean_outage_ms=4.0,
                    seed=seed + 2 + wave,
                )
                served.inject_failures(
                    [dataclasses.replace(e, at_ms=e.at_ms + now) for e in events]
                )
            served.serve_stream(chunk, record_answers=True)
            row_agg, match_counts = served.last_answers
            answers.append(row_agg.tobytes() + match_counts.tobytes())
        elapsed = time.perf_counter() - begin
        return elapsed, b"".join(answers), served.metrics.snapshot(), served

    # Best-of-repeats timing, modes interleaved so background load drift
    # hits both equally; every repeat is a fresh deployment so no state
    # leaks between measurements.
    untraced_s = traced_s = float("inf")
    untraced_run = traced_run = None
    for _ in range(timing_repeats):
        elapsed, answers, snapshot, served = run(traced=False)
        untraced_s = min(untraced_s, elapsed)
        untraced_run = (answers, snapshot, served)
        elapsed, answers, snapshot, served = run(traced=True)
        traced_s = min(traced_s, elapsed)
        traced_run = (answers, snapshot, served)

    answers_u, snapshot_u, _ = untraced_run
    answers_t, snapshot_t, served_t = traced_run
    overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s if untraced_s else 0.0

    # (a) Critical-path attribution over the traced run's spans.
    spans = served_t.tracer.spans
    breakdown = critical_path_breakdown(spans, percentile=percentile)
    for stage in breakdown["stages"]:
        result.add(
            panel="a_stage_breakdown",
            stage=stage["stage"],
            total_ms=stage["total_ms"],
            fraction=stage["fraction"],
        )
    result.add(
        panel="a_stage_breakdown",
        stage="(maintenance interference)",
        total_ms=breakdown["maintenance_overlap_ms"],
        fraction=breakdown["maintenance_overlap_fraction"],
    )
    result.parameters["attribution"] = format_breakdown(breakdown)
    result.parameters["latency_at_percentile_ms"] = breakdown["latency_at_percentile_ms"]

    # (b) Overhead and behaviour-neutrality.
    result.add(
        panel="b_overhead",
        untraced_s=untraced_s,
        traced_s=traced_s,
        overhead_pct=overhead_pct,
        answers_identical=bool(answers_u == answers_t),
        metrics_identical=bool(snapshot_u == snapshot_t),
        num_spans=len(spans),
        tail_requests=breakdown["tail_requests"],
        num_requests=breakdown["num_requests"],
    )

    # (c) The periodic telemetry time series of the traced run.
    for sample in served_t.metrics.telemetry.series:
        values = sample["values"]
        result.add(
            panel="c_timeseries",
            t_ms=sample["t_ms"],
            requests=values.get('serve_events_total{event="requests"}', 0),
            batches=values.get('serve_events_total{event="batches"}', 0),
            cache_hits=values.get('serve_events_total{event="cache_hits"}', 0),
            latency_p99_ms=values.get("serve_request_latency_ms", {}).get("p99"),
        )

    if trace_dir is not None:
        path = os.path.join(trace_dir, "TRACE_obs.json")
        served_t.tracer.save_chrome_trace(path)
        result.parameters["trace_path"] = path
    return result


# --------------------------------------------------------------------------
# Adaptive serving: dynamic resharding + multi-tenant QoS under hostile load
# --------------------------------------------------------------------------


def adaptive(
    num_keys: int = 20_000,
    num_requests: int = 24_000,
    num_phases: int = 4,
    requests_per_ms: float = 800.0,
    num_shards: int = 4,
    reshard_interval_ms: float = 2.0,
    reshard_max_shards: int = 32,
    max_batch_size: int = 4096,
    max_wait_ms: float = 0.01,
    tenant_duration_ms: float = 100.0,
    quick: bool = False,
    seed: int = 71,
) -> ExperimentResult:
    """Adaptive serving under hostile workloads.  Three panels:

    * ``a_hotspot_migration`` — a contiguous hotspot window sweeping across
      the sorted keyspace at a rate that saturates whichever shard it lands
      on.  A static range partition flattens (the hot shard's device queue
      backs up, p99 explodes); hash placement spreads the hotspot but gives
      up range locality; the adaptive range deployment splits the hot shard
      within a couple of policy windows and merges the cold remainder back,
      holding p99 with **zero** unavailability windows — topology changes
      ride the epoch snapshot/double-buffer lifecycle, so no request is lost
      or misrouted.
    * ``b_multi_tenant_qos`` — a bursty flooding tenant against a
      well-behaved high-priority tenant, served with admission control off
      and on.  With QoS on, the flood is shed at its token-bucket rate limit
      (an explicit, observable answer recorded in telemetry) and the
      well-behaved tenant's p99 is insulated.
    * ``c_range_hammer`` — worst-case range-partition traffic (90% of the
      requests on one thin keyspace slice) with negative int64 keys mixed
      in: the signed-key routing fix must answer them as deterministic
      misses, never wrap them onto the top shard.

    Every served row is oracle-checked: answers must be byte-identical to a
    single-instance sorted-array reference (shed requests excluded — they
    were never served, by design — and negative keys expected as misses).
    """
    from repro.baselines.sorted_array import SortedArrayIndex
    from repro.serve.qos import TenantQoS
    from repro.serve.sharded import ServeConfig, ShardedIndex
    from repro.workloads.adversarial import (
        TenantSpec,
        multi_tenant_stream,
        range_hammer_stream,
        shifting_hotspot_stream,
    )

    if quick:
        num_keys = min(num_keys, 8_000)
        num_requests = min(num_requests, 8_000)
        tenant_duration_ms = min(tenant_duration_ms, 40.0)

    result = ExperimentResult(
        name="adaptive",
        description="Adaptive resharding + per-tenant QoS under hostile workloads",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_phases": num_phases,
            "requests_per_ms": requests_per_ms,
            "num_shards": num_shards,
            "reshard_interval_ms": reshard_interval_ms,
            "reshard_max_shards": reshard_max_shards,
            "quick": quick,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=64, seed=seed)
    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=64)

    def oracle_check(served, stream, expected=None):
        """Byte-identical check against the oracle, skipping shed requests."""
        if expected is None:
            expected = oracle.point_lookup_batch(
                np.maximum(stream.keys, 0).astype(np.uint64)
            )
        rows, counts = served.last_answers
        expected_rows = expected.row_ids.astype(np.int64)
        expected_counts = expected.match_counts.astype(np.int64)
        if stream.keys.dtype.kind == "i":
            # Negative keys sort below the unsigned keyspace: definitional
            # misses, whatever key 0 happens to hold.
            negative = stream.keys < 0
            expected_rows = np.where(negative, -1, expected_rows)
            expected_counts = np.where(negative, 0, expected_counts)
        shed = served.last_shed
        if shed is not None and shed.any():
            keep = ~shed
            shed_untouched = bool(
                np.all(rows[shed] == -1) and np.all(counts[shed] == 0)
            )
            return bool(
                shed_untouched
                and rows[keep].tobytes() == expected_rows[keep].tobytes()
                and counts[keep].tobytes() == expected_counts[keep].tobytes()
            )
        return bool(
            rows.tobytes() == expected_rows.tobytes()
            and counts.tobytes() == expected_counts.tobytes()
        )

    # (a) Hotspot migration: static range vs static hash vs adaptive range.
    hotspot = shifting_hotspot_stream(
        keyset,
        num_requests,
        num_phases=num_phases,
        requests_per_ms=requests_per_ms,
        seed=seed + 1,
    )
    expected_hotspot = oracle.point_lookup_batch(hotspot.keys.astype(np.uint64))
    deployments = (
        ("static_range", dict(partitioner="range")),
        ("static_hash", dict(partitioner="hash")),
        (
            "adaptive_range",
            dict(
                partitioner="range",
                reshard=True,
                reshard_interval_ms=reshard_interval_ms,
                reshard_max_shards=reshard_max_shards,
                reshard_min_split_entries=64,
            ),
        ),
    )
    for policy, knobs in deployments:
        config = ServeConfig(
            num_shards=num_shards,
            key_bits=64,
            cache_capacity=0,  # every request exercises a shard (oracle 1:1)
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            **knobs,
        )
        served = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
        snapshot = served.serve_stream(hotspot, record_answers=True).snapshot()
        maintenance = served.maintenance.snapshot()
        result.add(
            panel="a_hotspot_migration",
            policy=policy,
            requests=snapshot["requests"],
            latency_p50_ms=snapshot["latency_p50_ms"],
            latency_p99_ms=snapshot["latency_p99_ms"],
            latency_max_ms=snapshot["latency_max_ms"],
            request_skew=snapshot["request_skew"],
            shards_final=served.router.num_shards,
            splits=maintenance["splits_performed"],
            merges=maintenance["merges_performed"],
            reshard_ms=maintenance.get("maintenance_ms_reshard", 0.0),
            unavailability_windows=len(served.metrics.unavailability_windows),
            oracle_identical=oracle_check(served, hotspot, expected_hotspot),
        )

    # (b) Multi-tenant QoS: a bursty flood concentrated on the bottom
    # quarter of the keyspace (one shard under the range partition, which it
    # saturates during every burst) against a well-behaved tenant touching
    # the whole keyspace — so the flood's device backlog is the victim
    # tenant's problem too, unless admission control sheds it.
    flood_rate = 2.0 * requests_per_ms
    specs = (
        TenantSpec(
            tenant=1,
            requests_per_ms=flood_rate,
            # Nearly flat popularity: the flood cycles through its whole
            # slice, so the result cache cannot absorb it.
            zipf_coefficient=0.6,
            keyspace=(0.0, 0.25),
            burst_on_ms=20.0,
            burst_off_ms=20.0,
        ),
        TenantSpec(
            tenant=2,
            requests_per_ms=flood_rate / 16.0,
            zipf_coefficient=1.0,
            keyspace=(0.0, 1.0),
        ),
    )
    tenant_stream = multi_tenant_stream(
        keyset, specs, duration_ms=tenant_duration_ms, seed=seed + 2
    )
    expected_tenants = oracle.point_lookup_batch(tenant_stream.keys.astype(np.uint64))
    qos = (
        TenantQoS(tenant=1, priority=0, rate_limit_per_ms=flood_rate / 8.0, cache_share=0.25),
        TenantQoS(tenant=2, priority=2, cache_share=0.25),
    )
    for policy, tenants, max_queue_depth in (
        ("no_qos", None, 0),
        ("qos", qos, 512),
    ):
        config = ServeConfig(
            num_shards=num_shards,
            key_bits=64,
            cache_capacity=1024,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            tenants=tenants,
            max_queue_depth=max_queue_depth,
        )
        served = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
        snapshot = served.serve_stream(tenant_stream, record_answers=True).snapshot()
        result.add(
            panel="b_multi_tenant_qos",
            policy=policy,
            requests=snapshot["requests"],
            flood_p99_ms=snapshot.get("tenant_1_p99_ms", snapshot["latency_p99_ms"]),
            tenant_p99_ms=snapshot.get("tenant_2_p99_ms", snapshot["latency_p99_ms"]),
            flood_served=snapshot.get("tenant_1_requests", snapshot["requests"]),
            tenant_served=snapshot.get("tenant_2_requests", snapshot["requests"]),
            requests_shed=snapshot.get("requests_shed", 0),
            shed_rate_limit=snapshot.get("tenant_1_shed_rate_limit", 0),
            oracle_identical=oracle_check(served, tenant_stream, expected_tenants),
        )

    # (c) Range hammer with negative int64 keys: static vs adaptive range.
    hammer = range_hammer_stream(
        keyset,
        num_requests // 2,
        requests_per_ms=requests_per_ms,
        seed=seed + 3,
    )
    for policy, reshard in (("static_range", False), ("adaptive_range", True)):
        config = ServeConfig(
            num_shards=num_shards,
            key_bits=64,
            cache_capacity=0,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            reshard=reshard,
            reshard_interval_ms=reshard_interval_ms,
            reshard_max_shards=reshard_max_shards,
            reshard_min_split_entries=64,
        )
        served = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
        snapshot = served.serve_stream(hammer, record_answers=True).snapshot()
        maintenance = served.maintenance.snapshot()
        result.add(
            panel="c_range_hammer",
            policy=policy,
            requests=snapshot["requests"],
            latency_p50_ms=snapshot["latency_p50_ms"],
            latency_p99_ms=snapshot["latency_p99_ms"],
            negative_key_misses=snapshot.get("negative_key_misses", 0),
            shards_final=served.router.num_shards,
            splits=maintenance["splits_performed"],
            merges=maintenance["merges_performed"],
            unavailability_windows=len(served.metrics.unavailability_windows),
            oracle_identical=oracle_check(served, hammer),
        )
    return result


def durability(
    num_keys: int = 1 << 12,
    num_requests: int = 1 << 10,
    num_shards: int = 4,
    replication_factor: int = 3,
    num_update_waves: int = 3,
    requests_per_ms: float = 32.0,
    miss_fraction: float = 0.05,
    max_batch_size: int = 64,
    max_wait_ms: float = 0.5,
    quick: bool = False,
    seed: int = 71,
) -> ExperimentResult:
    """Durability experiment: per-shard WAL + checkpoints under crash weather.

    Three panels over a replicated cgRXu deployment with the durable tier
    (``repro.store``) attached, every answer differentially checked against
    an untouched oracle:

    * ``a_crash_restart`` — whole-process kill weather mid-stream: killed
      replicas lose their in-memory index and restore from checkpoint + WAL
      while serving continues on their peers; acked update waves land
      between kills and must survive every restart byte-for-byte,
    * ``b_cold_start`` — the deployment process "exits" (a fresh store is
      opened over the same directory, with a torn WAL record crafted onto
      one shard) and is rebuilt via ``ShardedIndex.cold_start``: the torn
      tail is truncated, every acknowledged write is recovered, and the
      recovered deployment answers byte-identically,
    * ``c_wal_overhead`` — host wall-clock of the same write+read workload
      with the store detached / attached without fsync / attached with
      fsync: what the durability guarantee costs on the write path.
    """
    import shutil
    import tempfile
    import time as _time

    from repro.bench.harness import sharded_factory
    from repro.serve.replication import FailureEvent
    from repro.serve.router import apply_update_to_entries
    from repro.serve.sharded import ShardedIndex, ServeConfig
    from repro.store import DeploymentStore, LocalDirBackend, encode_record
    from repro.workloads.failures import failure_schedule
    from repro.workloads.requests import zipf_request_stream

    if quick:
        num_keys = min(num_keys, 1 << 11)
        num_requests = min(num_requests, 1 << 9)
        num_update_waves = min(num_update_waves, 2)

    result = ExperimentResult(
        name="durability",
        description="Durable serving: WAL + checkpoints, crash/restart recovery",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_shards": num_shards,
            "replication_factor": replication_factor,
            "num_update_waves": num_update_waves,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)
    store_root = tempfile.mkdtemp(prefix="repro-durability-")

    def deployment(store_dir, **serve_kwargs):
        factory = sharded_factory(
            inner=cgrxu_factory(128),
            num_shards=num_shards,
            partitioner="range",
            cache_capacity=0,
            replication_factor=replication_factor,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            store_dir=store_dir,
            **serve_kwargs,
        )
        return factory(keyset, RTX_4090)

    def entries_of(served) -> tuple:
        """The deployment's authoritative entries as a key-sorted multiset."""
        keys = np.concatenate(
            [shard.index.keys for shard in served.router.shards]
        )
        rows = np.concatenate(
            [shard.index.row_ids for shard in served.router.shards]
        )
        order = np.lexsort((rows, keys))
        return keys[order], rows[order]

    def oracle_state(oracle_keys, oracle_rows) -> tuple:
        order = np.lexsort((oracle_rows, oracle_keys))
        return oracle_keys[order], oracle_rows[order]

    def probe_identical(served, oracle_keys, oracle_rows, probe_seed) -> bool:
        oracle = SortedArrayIndex(oracle_keys, oracle_rows, key_bits=32)
        rng = np.random.default_rng(probe_seed)
        probe = np.concatenate(
            [
                rng.choice(oracle_keys, size=224),
                rng.integers(0, (1 << 32) - 1, size=32, dtype=np.uint64).astype(
                    np.uint32
                ),
            ]
        )
        expected = oracle.point_lookup_batch(probe)
        answered = served.point_lookup_batch(probe)
        return bool(
            answered.row_ids.tobytes() == expected.row_ids.tobytes()
            and answered.match_counts.tobytes() == expected.match_counts.tobytes()
        )

    # (a) Process-kill weather: acked update waves between kill rounds, every
    # restart restored from the durable tier while peers keep serving.
    served = deployment(store_root)
    stream = zipf_request_stream(
        keyset,
        num_requests,
        zipf_coefficient=1.0,
        requests_per_ms=requests_per_ms,
        miss_fraction=miss_fraction,
        seed=seed + 1,
    )
    oracle_keys = keyset.keys.copy()
    oracle_rows = keyset.row_ids.copy()
    rng = np.random.default_rng(seed + 2)
    wave_size = max(1, num_keys // 8)
    next_row = int(oracle_rows.max()) + 1
    previous: dict = {}
    for wave in range(1, num_update_waves + 1):
        insert_keys = rng.integers(
            0, (1 << 32) - 1, size=wave_size, dtype=np.uint64
        ).astype(np.uint32)
        delete_keys = rng.choice(oracle_keys, size=wave_size // 4, replace=False)
        insert_rows = np.arange(next_row, next_row + wave_size, dtype=np.uint32)
        next_row += wave_size
        served.update_batch(
            insert_keys=insert_keys,
            insert_row_ids=insert_rows,
            delete_keys=delete_keys,
        )
        oracle_keys, oracle_rows, _ = apply_update_to_entries(
            oracle_keys, oracle_rows, insert_keys, insert_rows, delete_keys
        )
        # Kill one process per shard (rolling over the replica ids), let the
        # outage end, and recover from disk via the maintenance worker.
        now = served.clock.now_ms
        injector = served.inject_failures(
            [
                FailureEvent(
                    at_ms=now,
                    kind="process_kill",
                    shard_id=shard_id,
                    replica_id=(wave - 1) % replication_factor,
                    duration_ms=2.0,
                )
                for shard_id in range(num_shards)
            ]
        )
        injector.poll(now)
        injector.poll(now + 5.0)
        served.maintenance.run_cycle(now + 5.0)
        replication = served.replication_snapshot()
        recovered_keys, recovered_rows = entries_of(served)
        expected_keys, expected_rows = oracle_state(oracle_keys, oracle_rows)
        result.add(
            panel="a_crash_restart",
            wave=wave,
            process_kills=int(replication.get("process_kills", 0)) - int(previous.get("process_kills", 0)),
            durable_restores=int(replication.get("resyncs_durable", 0)) - int(previous.get("resyncs_durable", 0)),
            wal_records_replayed=served.store.counters["records_replayed"],
            acked_writes_lost=int(expected_keys.shape[0] - recovered_keys.shape[0]),
            entries_identical=bool(
                recovered_keys.tobytes() == expected_keys.tobytes()
                and recovered_rows.tobytes() == expected_rows.tobytes()
            ),
            answers_identical=probe_identical(
                served, oracle_keys, oracle_rows, seed + 10 + wave
            ),
        )
        previous = replication
    # ... then serve a read stream through trailing kill weather: recoveries
    # happen while peers keep answering, and every answer matches the oracle.
    weather = failure_schedule(
        num_shards,
        replication_factor,
        duration_ms=stream.duration_ms,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        process_kills_per_s=60.0,
        mean_outage_ms=4.0,
        spare_replica=0,
        seed=seed + 3,
    )
    served.inject_failures(weather)
    stream_oracle = SortedArrayIndex(oracle_keys, oracle_rows, key_bits=32)
    stream_expected = stream_oracle.point_lookup_batch(stream.keys.astype(np.uint32))
    metrics = served.serve_stream(stream, record_answers=True)
    snapshot = metrics.snapshot()
    row_agg, match_counts = served.last_answers
    replication = served.replication_snapshot()
    result.add(
        panel="a_crash_restart",
        wave="stream",
        process_kills=int(replication.get("process_kills", 0)) - int(previous.get("process_kills", 0)),
        durable_restores=int(replication.get("resyncs_durable", 0)) - int(previous.get("resyncs_durable", 0)),
        recoveries=snapshot.get("recoveries", 0),
        recovery_mean_ms=snapshot.get("recovery_mean_ms", 0.0),
        recovery_max_ms=snapshot.get("recovery_max_ms", 0.0),
        latency_p99_ms=snapshot["latency_p99_ms"],
        availability=snapshot.get("availability", 1.0),
        answers_identical=bool(
            row_agg.tobytes() == stream_expected.row_ids.tobytes()
            and match_counts.tobytes() == stream_expected.match_counts.tobytes()
        ),
    )

    # (b) Cold start: open a fresh store over the same directory (the
    # "process" is gone), tear the final WAL record of shard 0, recover.
    store = DeploymentStore(LocalDirBackend(store_root), key_bits=32)
    torn_wal = store.wal(0)
    torn_lsn = torn_wal.max_lsn() + 1
    record = encode_record(
        torn_lsn,
        np.asarray([7], dtype=np.uint32),
        np.asarray([1], dtype=np.uint32),
        np.empty(0, dtype=np.uint32),
    )
    store.backend.put(torn_wal._name(torn_lsn), record[: len(record) // 2])
    began = _time.perf_counter()
    recovered = ShardedIndex.cold_start(
        store,
        factory=cgrxu_factory(128),
        config=ServeConfig(
            replication_factor=replication_factor,
            cache_capacity=0,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
        ),
    )
    cold_start_wall_ms = (_time.perf_counter() - began) * 1e3
    report = recovered.last_recovery
    recovered_keys, recovered_rows = entries_of(recovered)
    expected_keys, expected_rows = oracle_state(oracle_keys, oracle_rows)
    result.add(
        panel="b_cold_start",
        entries_recovered=report["entries_recovered"],
        wal_records_replayed=report["records_replayed"],
        torn_truncated=report["torn_truncated"],
        corrupt_skipped=report["corrupt_skipped"],
        recovery_wall_ms=report["recovery_wall_ms"],
        cold_start_wall_ms=cold_start_wall_ms,
        acked_writes_lost=int(expected_keys.shape[0] - recovered_keys.shape[0]),
        entries_identical=bool(
            recovered_keys.tobytes() == expected_keys.tobytes()
            and recovered_rows.tobytes() == expected_rows.tobytes()
        ),
        answers_identical=probe_identical(
            recovered, oracle_keys, oracle_rows, seed + 20
        ),
    )
    shutil.rmtree(store_root, ignore_errors=True)

    # (c) What durability costs: wall-clock of one write+read workload with
    # the store off, on without fsync, and on with fsync barriers.
    def timed_workload(store_dir, store_fsync) -> dict:
        subject = deployment(store_dir, store_fsync=store_fsync)
        workload_rng = np.random.default_rng(seed + 5)
        began = _time.perf_counter()
        for _ in range(8):
            inserts = workload_rng.integers(
                0, (1 << 32) - 1, size=128, dtype=np.uint64
            ).astype(np.uint32)
            subject.update_batch(
                insert_keys=inserts,
                insert_row_ids=np.arange(128, dtype=np.uint32),
            )
            subject.point_lookup_batch(
                workload_rng.choice(keyset.keys, size=256)
            )
        wall_ms = (_time.perf_counter() - began) * 1e3
        wal_bytes = (
            subject.store.counters["wal_bytes"] if subject.store is not None else 0
        )
        fsyncs = (
            subject.store.backend.counters["fsyncs"]
            if subject.store is not None
            else 0
        )
        return {"wall_ms": wall_ms, "wal_bytes": wal_bytes, "fsyncs": fsyncs}

    baseline = timed_workload(None, True)
    for mode, store_fsync in (("wal", False), ("wal+fsync", True)):
        mode_root = tempfile.mkdtemp(prefix="repro-durability-")
        timing = timed_workload(mode_root, store_fsync)
        shutil.rmtree(mode_root, ignore_errors=True)
        result.add(
            panel="c_wal_overhead",
            mode=mode,
            wall_ms=timing["wall_ms"],
            baseline_wall_ms=baseline["wall_ms"],
            overhead_pct=100.0 * (timing["wall_ms"] / baseline["wall_ms"] - 1.0),
            wal_bytes=timing["wal_bytes"],
            fsyncs=timing["fsyncs"],
        )
    return result


def tail_reliability(
    num_keys: int = 1 << 12,
    num_requests: int = 1 << 11,
    num_shards: int = 4,
    replication_factor: int = 3,
    requests_per_ms: float = 64.0,
    miss_fraction: float = 0.05,
    max_batch_size: int = 64,
    max_wait_ms: float = 0.5,
    deadline_ms: float = 2.0,
    hedge_quantile: float = 0.9,
    storm_slow_factor: float = 64.0,
    quick: bool = False,
    seed: int = 71,
) -> ExperimentResult:
    """Tail tolerance: hedging + deadlines holding p99.9 under gray weather.

    Three panels, cache off so every request exercises a replica read and the
    served answers can be byte-compared against a single-instance oracle:

    * ``a_latency_storm`` — the same stream + metastable latency-storm
      weather served by four configurations (no reliability, deadlines only,
      hedged reads only, hedged + deadlines): exact p99/p99.9, hedge
      win/loss accounting, deadline-exceeded fractions, and the oracle check
      over every *complete* (unmasked) answer.
    * ``b_degradation`` — correlated whole-group outages with no spare:
      explicit partial results (`unavailable` mask) vs stale reads from the
      durable store; stale answers are themselves oracle-checked (no writes
      since the checkpoint, so stale == fresh bytes).
    * ``c_write_safety`` — quorum write waves under the same storm weather
      with the full reliability stack armed: post-wave probes prove zero
      acknowledged-write loss.
    """
    import shutil
    import tempfile

    from repro.baselines.sorted_array import SortedArrayIndex
    from repro.bench.harness import sharded_factory
    from repro.serve.reliability import ReliabilityConfig
    from repro.serve.router import apply_update_to_entries
    from repro.workloads.failures import failure_schedule
    from repro.workloads.requests import zipf_request_stream

    if quick:
        num_requests = min(num_requests, 768)
    result = ExperimentResult(
        name="reliability",
        description="Tail-tolerant serving under gray-failure weather",
        parameters={
            "num_keys": num_keys,
            "num_requests": num_requests,
            "num_shards": num_shards,
            "replication_factor": replication_factor,
            "deadline_ms": deadline_ms,
            "hedge_quantile": hedge_quantile,
            "storm_slow_factor": storm_slow_factor,
            "quick": quick,
        },
    )
    keyset = generate_keys(num_keys, uniformity=0.5, key_bits=32, seed=seed)
    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)
    stream = zipf_request_stream(
        keyset,
        num_requests,
        zipf_coefficient=1.0,
        requests_per_ms=requests_per_ms,
        miss_fraction=miss_fraction,
        seed=seed + 1,
    )
    stream_expected = oracle.point_lookup_batch(stream.keys.astype(np.uint32))

    def deployment(
        reliability: Optional[ReliabilityConfig],
        inner: Optional[IndexFactory] = None,
        **serve_kwargs,
    ):
        factory = sharded_factory(
            inner=inner or cgrx_factory(32),
            num_shards=num_shards,
            partitioner="range",
            cache_capacity=0,
            replication_factor=replication_factor,
            read_policy="round_robin",
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            reliability=reliability,
            **serve_kwargs,
        )
        return factory(keyset, RTX_4090)

    def complete_mask(served) -> np.ndarray:
        mask = np.ones(len(stream), dtype=bool)
        for partial in (
            served.last_shed,
            served.last_unavailable,
            served.last_deadline_exceeded,
            served.last_stale,
        ):
            if partial is not None:
                mask &= ~partial
        return mask

    def identical_on(served, mask: np.ndarray) -> bool:
        row_agg, match_counts = served.last_answers
        return bool(
            row_agg[mask].tobytes() == stream_expected.row_ids[mask].tobytes()
            and match_counts[mask].tobytes()
            == stream_expected.match_counts[mask].tobytes()
        )

    def storm_events(factor_seed: int = 2):
        return failure_schedule(
            num_shards,
            replication_factor,
            duration_ms=stream.duration_ms,
            crashes_per_s=0.0,
            slowdowns_per_s=0.0,
            transients_per_s=0.0,
            latency_storms_per_s=150.0,
            storm_slow_factor=storm_slow_factor,
            mean_storm_ms=20.0,
            seed=seed + factor_seed,
        )

    # (a) The same latency storm, four reliability configurations.
    hedged = ReliabilityConfig(
        hedge_quantile=hedge_quantile, hedge_min_samples=16
    )
    modes = [
        ("baseline", None),
        ("deadline", ReliabilityConfig(deadline_ms=deadline_ms)),
        ("hedged", hedged),
        (
            "hedged+deadline",
            ReliabilityConfig(
                deadline_ms=deadline_ms,
                hedge_quantile=hedge_quantile,
                hedge_min_samples=16,
            ),
        ),
    ]
    for mode, config in modes:
        served = deployment(config)
        served.inject_failures(storm_events())
        metrics = served.serve_stream(stream, record_answers=True)
        latencies = np.asarray(metrics.request_latencies)
        rel_report = served.reliability.snapshot() if served.reliability else {}
        mask = complete_mask(served)
        result.add(
            panel="a_latency_storm",
            mode=mode,
            latency_p50_ms=float(np.percentile(latencies, 50)),
            latency_p99_ms=float(np.percentile(latencies, 99)),
            latency_p999_ms=float(np.percentile(latencies, 99.9)),
            hedges=int(rel_report.get("hedges", 0)),
            hedge_wins=int(rel_report.get("hedge_wins", 0)),
            hedge_waste_ms=float(rel_report.get("hedge_waste_ms", 0.0)),
            deadline_exceeded=int(
                (~mask).sum()
                if served.last_deadline_exceeded is None
                else served.last_deadline_exceeded.sum()
            ),
            complete_fraction=float(mask.mean()),
            complete_answers_identical=identical_on(served, mask),
        )

    # (b) Correlated whole-group outages: explicit degradation, two flavors.
    outage_events = failure_schedule(
        num_shards,
        replication_factor,
        duration_ms=stream.duration_ms,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        correlated_outages_per_s=60.0,
        mean_correlated_outage_ms=8.0,
        seed=seed + 5,
    )
    store_root = tempfile.mkdtemp(prefix="repro-reliability-")
    try:
        for mode, stale_reads in (("partial_results", False), ("stale_reads", True)):
            config = ReliabilityConfig(
                deadline_ms=deadline_ms, stale_reads=stale_reads
            )
            serve_kwargs = (
                {"store_dir": f"{store_root}/{mode}", "store_fsync": False}
                if stale_reads
                else {}
            )
            served = deployment(config, **serve_kwargs)
            served.inject_failures(list(outage_events))
            metrics = served.serve_stream(stream, record_answers=True)
            mask = complete_mask(served)
            stale_mask = (
                served.last_stale
                if served.last_stale is not None
                else np.zeros(len(stream), dtype=bool)
            )
            result.add(
                panel="b_degradation",
                mode=mode,
                unavailable=int(served.last_unavailable.sum()),
                stale_served=int(stale_mask.sum()),
                deadline_exceeded=int(served.last_deadline_exceeded.sum()),
                complete_fraction=float(mask.mean()),
                complete_answers_identical=identical_on(served, mask),
                # No writes landed after the checkpoint, so stale bytes must
                # equal fresh bytes wherever a stale answer was served.
                stale_answers_identical=identical_on(served, stale_mask),
            )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    # (c) Acked writes under the storm: the reliability stack must not lose
    # a single acknowledged write (probes by differential oracle).
    served = deployment(
        ReliabilityConfig(
            deadline_ms=deadline_ms,
            hedge_quantile=hedge_quantile,
            hedge_min_samples=16,
        ),
        inner=cgrxu_factory(128),
    )
    rng = np.random.default_rng(seed + 6)
    oracle_keys = keyset.keys.copy()
    oracle_rows = keyset.row_ids.copy()
    next_row = int(oracle_rows.max()) + 1
    wave_size = max(1, num_keys // 8)
    num_waves = 2 if quick else 3
    for wave in range(1, num_waves + 1):
        now = served.clock.now_ms
        injector = served.inject_failures(storm_events(factor_seed=6 + wave))
        injector.poll(now)
        insert_keys = rng.integers(
            0, (1 << 32) - 1, size=wave_size, dtype=np.uint64
        ).astype(np.uint32)
        insert_rows = np.arange(next_row, next_row + wave_size, dtype=np.uint32)
        next_row += wave_size
        acked = served.update_batch(
            insert_keys=insert_keys, insert_row_ids=insert_rows
        )
        oracle_keys, oracle_rows, _ = apply_update_to_entries(
            oracle_keys,
            oracle_rows,
            insert_keys,
            insert_rows,
            np.empty(0, dtype=np.uint32),
        )
        injector.poll(now + 40.0)
        served.maintenance.run_cycle(now + 40.0)
        wave_oracle = SortedArrayIndex(oracle_keys, oracle_rows, key_bits=32)
        probe_rng = np.random.default_rng(seed + 10 + wave)
        probe = np.concatenate(
            [
                probe_rng.choice(oracle_keys, size=224),
                probe_rng.integers(
                    0, (1 << 32) - 1, size=32, dtype=np.uint64
                ).astype(np.uint32),
            ]
        )
        expected = wave_oracle.point_lookup_batch(probe)
        answered = served.point_lookup_batch(probe)
        result.add(
            panel="c_write_safety",
            wave=wave,
            writes_applied=int(acked.inserted),
            acked_writes_lost=0
            if (
                answered.row_ids.tobytes() == expected.row_ids.tobytes()
                and answered.match_counts.tobytes()
                == expected.match_counts.tobytes()
            )
            else -1,
            answers_identical=bool(
                answered.row_ids.tobytes() == expected.row_ids.tobytes()
                and answered.match_counts.tobytes()
                == expected.match_counts.tobytes()
            ),
        )
    return result


# --------------------------------------------------------------------------
# Running everything
# --------------------------------------------------------------------------

#: All experiment functions keyed by their identifier.
ALL_EXPERIMENTS = {
    "table_1": table1_feature_matrix,
    "figure_1": figure_01_rx_limitations,
    "figure_9": figure_09_key_mapping_scaling,
    "figure_10": figure_10_naive_vs_optimized,
    "figure_11": figure_11_bucket_size_robustness,
    "figure_12": figure_12_point_lookups_32bit,
    "figure_13": figure_13_point_lookups_64bit,
    "figure_14": figure_14_range_lookups,
    "figure_15": figure_15_batch_size,
    "figure_16": figure_16_hit_ratio,
    "figure_17": figure_17_lookup_skew,
    "figure_18": figure_18_updates,
    "serving": serving_deployment,
    "availability": availability,
    "hotpath": hotpath,
    "lifecycle": lifecycle,
    "obs": observability,
    "adaptive": adaptive,
    "durability": durability,
    "reliability": tail_reliability,
}


def list_experiments() -> List[str]:
    """One ``name — summary`` line per experiment, in registry order."""
    lines = []
    width = max(len(name) for name in ALL_EXPERIMENTS)
    for name, function in ALL_EXPERIMENTS.items():
        doc = (function.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        summary = summary.split(".  ")[0].rstrip(".")
        lines.append(f"{name:<{width}}  {summary}")
    return lines


def run_all(
    names: Optional[Iterable[str]] = None, quick: bool = False
) -> List[ExperimentResult]:
    """Run all (or the selected) experiments and return their results.

    ``quick=True`` is forwarded to every experiment that supports a ``quick``
    parameter (currently ``hotpath`` and ``lifecycle``); the others ignore it.
    """
    import inspect

    selected = list(names) if names is not None else list(ALL_EXPERIMENTS)
    results = []
    for name in selected:
        if name not in ALL_EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; available: {sorted(ALL_EXPERIMENTS)}")
        function = ALL_EXPERIMENTS[name]
        kwargs = {}
        if quick and "quick" in inspect.signature(function).parameters:
            kwargs["quick"] = True
        results.append(function(**kwargs))
    return results


def main() -> None:
    """Command-line entry point: run and print the selected experiments.

    ``--json`` (working directory) or ``--json=DIR`` additionally writes each
    result as ``BENCH_<name>.json`` — the committed ``BENCH_*.json``
    snapshots are produced exactly this way.  The directory is bound with
    ``=`` so experiment names are never mistaken for an output path.
    ``--quick`` shrinks the workloads of experiments that support it (used by
    the CI perf-smoke job).  ``--list`` prints every experiment name with a
    one-line description and exits.
    """
    import sys

    json_dir: Optional[str] = None
    quick = False
    arguments = []
    for argument in sys.argv[1:]:
        if argument == "--json":
            json_dir = "."
        elif argument.startswith("--json="):
            json_dir = argument[len("--json="):] or "."
        elif argument == "--quick":
            quick = True
        elif argument == "--list":
            for line in list_experiments():
                print(line)
            return
        else:
            arguments.append(argument)
    names = arguments or None
    for result in run_all(names, quick=quick):
        result.print()
        print()
        if json_dir is not None:
            path = result.save_json(json_dir)
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
