"""Metrics reported by the paper's evaluation."""

from __future__ import annotations


def throughput_per_footprint(num_operations: int, time_ms: float, footprint_bytes: int) -> float:
    """The paper's headline metric: entries looked up per second per footprint byte.

    Section V-B: "We take the throughput as entries looked up per second and
    divide it by the memory footprint of the structure in bytes."
    """
    if time_ms <= 0.0 or footprint_bytes <= 0:
        return float("inf")
    throughput = num_operations / (time_ms / 1e3)
    return throughput / footprint_bytes


def normalized_cumulative_time_ms(total_time_ms: float, total_entries_retrieved: int) -> float:
    """Figure 14's metric: total batch time divided by the number of retrieved entries."""
    if total_entries_retrieved <= 0:
        return float("inf")
    return total_time_ms / total_entries_retrieved


def time_per_lookup_ms(total_time_ms: float, num_lookups: int) -> float:
    """Figure 15's metric: total batch time divided by the number of lookups."""
    if num_lookups <= 0:
        return float("inf")
    return total_time_ms / num_lookups


def speedup(baseline_time_ms: float, contender_time_ms: float) -> float:
    """How many times faster the contender is than the baseline."""
    if contender_time_ms <= 0.0:
        return float("inf")
    return baseline_time_ms / contender_time_ms
