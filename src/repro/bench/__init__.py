"""Benchmark harness regenerating the paper's tables and figures.

Each experiment of the evaluation (Figures 1 and 9-18, Table I) has a
corresponding function in :mod:`repro.bench.experiments` that builds the
required indexes, runs the workload at a configurable (scaled-down) size and
returns an :class:`~repro.bench.harness.ExperimentResult` whose rows mirror
the series shown in the paper.  The ``benchmarks/`` directory wraps these
functions in pytest-benchmark targets, and EXPERIMENTS.md records the
measured shapes next to the paper's claims.
"""

from repro.bench.harness import ExperimentResult, format_table, run_experiment
from repro.bench.metrics import (
    normalized_cumulative_time_ms,
    throughput_per_footprint,
    time_per_lookup_ms,
)
from repro.bench import experiments

__all__ = [
    "ExperimentResult",
    "format_table",
    "run_experiment",
    "throughput_per_footprint",
    "normalized_cumulative_time_ms",
    "time_per_lookup_ms",
    "experiments",
]
