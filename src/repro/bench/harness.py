"""Experiment results, tabular reporting and index factories."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import GpuIndex
from repro.baselines.btree import BPlusTreeIndex
from repro.baselines.fullscan import FullScanIndex
from repro.baselines.hash_table import HashTableIndex
from repro.baselines.rtscan import RTScanIndex
from repro.baselines.rx import RXIndex
from repro.baselines.sorted_array import SortedArrayIndex
from repro.core.config import CgRXConfig, CgRXuConfig
from repro.core.index import CgRXIndex
from repro.core.updatable import CgRXuIndex
from repro.gpu.device import RTX_4090, GpuDevice
from repro.workloads.keygen import KeySet


@dataclass
class ExperimentResult:
    """Rows of one regenerated table or figure."""

    #: Experiment identifier, e.g. ``"figure_12"``.
    name: str
    #: What the experiment shows, for the report header.
    description: str
    #: One dict per series point (index x configuration x workload setting).
    rows: List[dict] = field(default_factory=list)
    #: Workload parameters the experiment ran with (scaled-down sizes etc.).
    parameters: Dict[str, object] = field(default_factory=dict)

    def add(self, **row: object) -> None:
        """Append one row."""
        self.rows.append(row)

    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def series(self, index_name: str) -> List[dict]:
        """All rows belonging to one index/series."""
        return [row for row in self.rows if row.get("index") == index_name]

    def to_table(self) -> str:
        """Human-readable table of all rows."""
        return format_table(self.rows)

    def to_json(self) -> str:
        """The experiment as a JSON document (the ``BENCH_*.json`` format).

        The output is strict JSON: ``NaN``/``Infinity`` values (legal Python
        floats, illegal JSON) are replaced by ``null`` so any spec-compliant
        parser can read the artifact.  Serialisation runs with
        ``allow_nan=False`` as a backstop — a non-finite value that slips
        past the sanitiser is a bug, not output.
        """
        import json

        def convert(value: object):
            if isinstance(value, np.integer):
                return int(value)
            if isinstance(value, np.floating):
                return float(value)
            if isinstance(value, np.bool_):
                return bool(value)
            if isinstance(value, np.ndarray):
                return value.tolist()
            raise TypeError(f"cannot serialise {type(value).__name__}")

        def sanitize(value: object):
            if isinstance(value, dict):
                return {key: sanitize(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [sanitize(item) for item in value]
            if isinstance(value, (np.integer, np.floating, np.bool_, np.ndarray)):
                return sanitize(convert(value))
            if isinstance(value, float) and not math.isfinite(value):
                return None
            return value

        return json.dumps(
            sanitize(
                {
                    "name": self.name,
                    "description": self.description,
                    "parameters": self.parameters,
                    "rows": self.rows,
                }
            ),
            indent=2,
            allow_nan=False,
            default=convert,
        )

    def save_json(self, directory: str = ".") -> str:
        """Write the ``BENCH_<name>.json`` snapshot; returns the path."""
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.name}.json")
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path

    def print(self) -> None:
        """Print the experiment header, parameters and table to stdout."""
        print(f"== {self.name}: {self.description}")
        if self.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            print(f"   parameters: {rendered}")
        print(self.to_table())


def format_table(rows: Sequence[dict], float_format: str = "{:.4g}") -> str:
    """Format a list of row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return "\n".join([header, separator, body])


# --------------------------------------------------------------------------
# Index factories
# --------------------------------------------------------------------------

#: Signature of an index factory: (keyset, device) -> index.
IndexFactory = Callable[[KeySet, GpuDevice], GpuIndex]


def cgrx_factory(bucket_size: int = 32, **config_kwargs: object) -> IndexFactory:
    """Factory for a cgRX configuration."""

    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        config = CgRXConfig(bucket_size=bucket_size, key_bits=keyset.key_bits, **config_kwargs)
        return CgRXIndex(keyset.keys, keyset.row_ids, config, device=device)

    return build


def cgrxu_factory(node_bytes: int = 128, **config_kwargs: object) -> IndexFactory:
    """Factory for a cgRXu configuration."""

    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        config = CgRXuConfig(node_bytes=node_bytes, key_bits=keyset.key_bits, **config_kwargs)
        return CgRXuIndex(keyset.keys, keyset.row_ids, config, device=device)

    return build


def rx_factory(**kwargs: object) -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return RXIndex(keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device, **kwargs)

    return build


def sorted_array_factory() -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device)

    return build


def btree_factory() -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return BPlusTreeIndex(keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device)

    return build


def hash_table_factory(load_factor: float = 0.8) -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return HashTableIndex(
            keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, load_factor=load_factor, device=device
        )

    return build


def rtscan_factory() -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return RTScanIndex(keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device)

    return build


def fullscan_factory() -> IndexFactory:
    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        return FullScanIndex(keyset.keys, keyset.row_ids, key_bits=keyset.key_bits, device=device)

    return build


def sharded_factory(
    inner: Optional[IndexFactory] = None,
    num_shards: int = 4,
    partitioner: str = "range",
    cache_capacity: int = 4096,
    replication_factor: int = 1,
    read_policy: str = "round_robin",
    write_quorum: Optional[int] = None,
    engine: str = "vector",
    rebuild_threshold: float = 0.5,
    compact_threshold: float = 0.2,
    rebuild_mode: str = "double_buffered",
    **config_kwargs: object,
) -> IndexFactory:
    """Factory for a served :class:`~repro.serve.sharded.ShardedIndex` deployment.

    ``inner`` is the factory of the per-shard index type (sorted array when
    omitted); the remaining arguments configure the serving layer, so bench
    experiments can compare served deployments against bare indexes.  With
    ``replication_factor > 1`` every shard becomes a replica group with
    load-balanced reads and quorum-acknowledged writes.  ``engine`` selects
    the router's scatter/gather engine; pass ``engine=...`` to the *inner*
    factory (e.g. ``cgrxu_factory(128, engine="scalar")``) to select the
    per-shard index engine.  ``rebuild_threshold``/``compact_threshold``/
    ``rebuild_mode`` configure the tiered maintenance lifecycle (incremental
    compaction below the rebuild threshold, double-buffered or
    stop-the-world rebuild swaps above it).
    """

    def build(keyset: KeySet, device: GpuDevice = RTX_4090) -> GpuIndex:
        from repro.serve.sharded import ServeConfig, ShardedIndex

        config = ServeConfig(
            num_shards=num_shards,
            partitioner=partitioner,
            key_bits=keyset.key_bits,
            cache_capacity=cache_capacity,
            replication_factor=replication_factor,
            read_policy=read_policy,
            write_quorum=write_quorum,
            engine=engine,
            rebuild_threshold=rebuild_threshold,
            compact_threshold=compact_threshold,
            rebuild_mode=rebuild_mode,
            **config_kwargs,
        )
        return ShardedIndex(
            keyset.keys,
            keyset.row_ids,
            factory=inner or sorted_array_factory(),
            config=config,
            device=device,
        )

    return build


def default_point_lookup_factories(key_bits: int) -> Dict[str, IndexFactory]:
    """The index set compared in the point-lookup experiments (Figures 12/13)."""
    factories: Dict[str, IndexFactory] = {
        "cgRX (32)": cgrx_factory(32),
        "cgRX (256)": cgrx_factory(256),
        "RX": rx_factory(),
        "SA": sorted_array_factory(),
        "HT": hash_table_factory(),
    }
    if key_bits == 32:
        factories["B+"] = btree_factory()
    return factories


# --------------------------------------------------------------------------
# Generic experiment runners
# --------------------------------------------------------------------------


def run_experiment(
    result: ExperimentResult,
    factories: Dict[str, IndexFactory],
    keyset: KeySet,
    lookups: np.ndarray,
    device: GpuDevice = RTX_4090,
    extra: Optional[dict] = None,
) -> ExperimentResult:
    """Build every index, run the point-lookup batch and append one row each."""
    from repro.bench.metrics import throughput_per_footprint

    extra = extra or {}
    for name, factory in factories.items():
        index = factory(keyset, device)
        lookup_result = index.point_lookup_batch(lookups)
        time_ms = index.lookup_time_ms(lookup_result)
        footprint = index.memory_footprint().total_bytes
        result.add(
            index=name,
            footprint_mib=footprint / float(1 << 20),
            lookup_time_ms=time_ms,
            throughput_per_footprint=throughput_per_footprint(
                lookup_result.num_lookups, time_ms, footprint
            ),
            hits=lookup_result.hits,
            **extra,
        )
    return result
