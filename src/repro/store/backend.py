"""Object-store-shaped storage backends.

The interface is deliberately the shape of an object store client (the
CloudFiles idiom the taskqueue exemplars use): flat named blobs under a
prefix, ``put``/``get``/``exists``/``list``/``delete``, plus JSON
conveniences and error-sidecar files.  There is no append and no rename in
the contract — a WAL built on it writes one immutable object per record —
so the same code paths work against a real object store later.

:class:`LocalDirBackend` maps object names onto files under a root
directory.  Writes go through a temporary file plus an atomic rename, with
an ``fsync`` per object when durability is armed (the default), so a crash
can leave at most a torn *final* object, never a half-overwritten old one.
:class:`InMemoryBackend` keeps the objects in a dict — same semantics, no
disk — for tests and the differential fuzzer.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from typing import Dict, List, Optional


class StorageBackend(ABC):
    """Flat named-blob storage with object-store semantics.

    Object names are ``/``-separated relative paths.  Every backend counts
    its traffic (``puts``, ``gets``, ``deletes``, ``bytes_written``,
    ``bytes_read``, ``fsyncs``) so the serving layer can report WAL and
    checkpoint overhead without caring which backend is underneath.
    """

    def __init__(self, fsync: bool = True) -> None:
        #: Whether every put carries a durability barrier.
        self.fsync = bool(fsync)
        self.counters: Dict[str, int] = {
            "puts": 0,
            "gets": 0,
            "deletes": 0,
            "bytes_written": 0,
            "bytes_read": 0,
            "fsyncs": 0,
        }

    # ------------------------------------------------------------ primitives

    @abstractmethod
    def _put(self, name: str, data: bytes) -> None:
        ...

    @abstractmethod
    def _get(self, name: str) -> Optional[bytes]:
        ...

    @abstractmethod
    def _delete(self, name: str) -> bool:
        ...

    @abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """All object names under ``prefix``, sorted ascending."""
        ...

    # -------------------------------------------------------------- surface

    @staticmethod
    def _check_name(name: str) -> str:
        if not name or name.startswith("/") or ".." in name.split("/"):
            raise ValueError(f"invalid object name {name!r}")
        return name

    def put(self, name: str, data: bytes) -> int:
        """Store ``data`` under ``name`` (atomic replace); returns the size."""
        name = self._check_name(name)
        data = bytes(data)
        self._put(name, data)
        self.counters["puts"] += 1
        self.counters["bytes_written"] += len(data)
        if self.fsync:
            self.counters["fsyncs"] += 1
        return len(data)

    def get(self, name: str) -> bytes:
        data = self._get(self._check_name(name))
        if data is None:
            raise KeyError(f"no object named {name!r}")
        self.counters["gets"] += 1
        self.counters["bytes_read"] += len(data)
        return data

    def exists(self, name: str) -> bool:
        return self._get(self._check_name(name)) is not None

    def delete(self, name: str) -> bool:
        """Remove an object; True when it existed."""
        removed = self._delete(self._check_name(name))
        if removed:
            self.counters["deletes"] += 1
        return removed

    def size(self, name: str) -> int:
        return len(self.get(name))

    # ----------------------------------------------------------------- json

    def put_json(self, name: str, payload: dict) -> int:
        return self.put(name, json.dumps(payload, sort_keys=True).encode("utf-8"))

    def get_json(self, name: str) -> dict:
        return json.loads(self.get(name).decode("utf-8"))

    def put_error(self, name: str, error: Exception | str) -> int:
        """Error-sidecar file (the taskqueue idiom): ``<name>.error``."""
        return self.put_json(f"{name}.error", {"error": str(error)})


class InMemoryBackend(StorageBackend):
    """Dict-backed backend: object-store semantics without a filesystem."""

    def __init__(self, fsync: bool = True) -> None:
        super().__init__(fsync=fsync)
        self._objects: Dict[str, bytes] = {}

    def _put(self, name: str, data: bytes) -> None:
        self._objects[name] = data

    def _get(self, name: str) -> Optional[bytes]:
        return self._objects.get(name)

    def _delete(self, name: str) -> bool:
        return self._objects.pop(name, None) is not None

    def list(self, prefix: str = "") -> List[str]:
        return sorted(name for name in self._objects if name.startswith(prefix))


class LocalDirBackend(StorageBackend):
    """Backend over a local directory (the durable tier available everywhere).

    Each object is one file under ``root``.  Puts write a temporary file in
    the target directory, fsync it (when armed), then atomically rename it
    over the destination — so an interrupted put never corrupts a
    previously stored object, and a torn write is confined to the newest
    object (exactly the failure the WAL reader knows how to truncate).
    """

    def __init__(self, root: str, fsync: bool = True) -> None:
        super().__init__(fsync=fsync)
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, *name.split("/"))

    def _put(self, name: str, data: bytes) -> None:
        path = self._path(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            prefix=".put-", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def _get(self, name: str) -> Optional[bytes]:
        path = self._path(name)
        if not os.path.isfile(path):
            return None
        with open(path, "rb") as handle:
            return handle.read()

    def _delete(self, name: str) -> bool:
        path = self._path(name)
        if not os.path.isfile(path):
            return False
        os.unlink(path)
        return True

    def list(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        for directory, _, files in os.walk(self.root):
            for filename in files:
                if filename.startswith(".put-"):
                    continue  # abandoned temporary of an interrupted put
                full = os.path.join(directory, filename)
                name = os.path.relpath(full, self.root).replace(os.sep, "/")
                if name.startswith(prefix):
                    names.append(name)
        return sorted(names)
