"""Durable, epoch-tagged shard checkpoints.

A checkpoint serializes a shard's authoritative entry arrays — the same
``IndexSnapshot`` state the epoch lifecycle rebuilds from — together with
the LSN it is consistent with, framed and checksummed like a WAL record.
Recovery takes the **latest valid** checkpoint: a corrupt one is skipped
(with an error-sidecar file, the CloudFiles idiom) and the previous one is
used, with the longer WAL tail making up the difference.  ``retain``
controls how many generations are kept for exactly that fallback.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.store.backend import StorageBackend
from repro.store.wal import WalCorruption

_MAGIC = b"CKPT"
_VERSION = 1
#: magic, version, key-dtype code (bytes per key), lsn, epoch, n_entries
_HEADER = struct.Struct("<4sHHQQQ")
_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class Checkpoint:
    """One decoded checkpoint: entries plus the LSN/epoch they capture."""

    keys: np.ndarray
    row_ids: np.ndarray
    lsn: int
    epoch: int

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])


def encode_checkpoint(
    keys: np.ndarray, row_ids: np.ndarray, lsn: int, epoch: int
) -> bytes:
    keys = np.ascontiguousarray(keys)
    row_ids = np.ascontiguousarray(row_ids, dtype=np.uint32)
    key_bytes = keys.dtype.itemsize
    if key_bytes not in (4, 8):
        raise ValueError(f"unsupported key dtype {keys.dtype}")
    if row_ids.shape[0] != keys.shape[0]:
        raise ValueError("row_ids must align with keys")
    header = _HEADER.pack(
        _MAGIC, _VERSION, key_bytes, int(lsn), int(epoch), int(keys.shape[0])
    )
    payload = header + keys.tobytes() + row_ids.tobytes()
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_checkpoint(data: bytes) -> Checkpoint:
    if len(data) < _HEADER.size + _CRC.size:
        raise WalCorruption("checkpoint shorter than its framing")
    magic, version, key_bytes, lsn, epoch, n_entries = _HEADER.unpack_from(data)
    if magic != _MAGIC or version != _VERSION or key_bytes not in (4, 8):
        raise WalCorruption("bad checkpoint header")
    body_size = _HEADER.size + n_entries * (key_bytes + 4)
    if len(data) != body_size + _CRC.size:
        raise WalCorruption("checkpoint length does not match its header")
    (crc,) = _CRC.unpack_from(data, body_size)
    if zlib.crc32(data[:body_size]) != crc:
        raise WalCorruption("checkpoint checksum mismatch")
    key_dtype = np.uint32 if key_bytes == 4 else np.uint64
    offset = _HEADER.size
    keys = np.frombuffer(data, dtype=key_dtype, count=n_entries, offset=offset).copy()
    offset += n_entries * key_bytes
    row_ids = np.frombuffer(data, dtype=np.uint32, count=n_entries, offset=offset).copy()
    return Checkpoint(keys=keys, row_ids=row_ids, lsn=int(lsn), epoch=int(epoch))


class CheckpointStore:
    """One shard's checkpoint generations under a backend prefix."""

    def __init__(self, backend: StorageBackend, prefix: str, retain: int = 2) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.backend = backend
        self.prefix = prefix.rstrip("/")
        self.retain = int(retain)
        #: Corrupt checkpoints encountered by :meth:`latest_valid`.
        self.corrupt_skipped = 0

    def _name(self, lsn: int) -> str:
        return f"{self.prefix}/{int(lsn):020d}.ckpt"

    def _names(self) -> List[str]:
        return [
            name
            for name in self.backend.list(f"{self.prefix}/")
            if name.endswith(".ckpt")
        ]

    def save(
        self, keys: np.ndarray, row_ids: np.ndarray, lsn: int, epoch: int
    ) -> int:
        """Write a checkpoint and prune generations past ``retain``."""
        written = self.backend.put(
            self._name(lsn), encode_checkpoint(keys, row_ids, lsn, epoch)
        )
        names = self._names()
        for stale in names[: max(0, len(names) - self.retain)]:
            self.backend.delete(stale)
            # An error sidecar of a skipped generation goes with it.
            self.backend.delete(f"{stale}.error")
        return written

    def latest_valid(self) -> Optional[Checkpoint]:
        """Newest checkpoint that decodes cleanly (corrupt ones are skipped).

        A skipped generation leaves an ``.error`` sidecar naming the damage,
        so the fallback is observable after the fact.
        """
        for name in reversed(self._names()):
            try:
                return decode_checkpoint(self.backend.get(name))
            except WalCorruption as error:
                self.corrupt_skipped += 1
                if not self.backend.exists(f"{name}.error"):
                    self.backend.put_error(name, error)
        return None
