"""Durable storage: pluggable backends, per-shard WALs and checkpoints.

The serving stack's replication log and epoch snapshots are in-memory
constructs; this package is what survives a process exit.  A
:class:`StorageBackend` is an object-store-shaped interface (put / get /
exists / list / delete, in the mould of the CloudFiles usage the taskqueue
exemplars follow) with a :class:`LocalDirBackend` for local directories and
an :class:`InMemoryBackend` for tests and fuzzing.  On top of it,
:class:`ShardWal` keeps an LSN'd, checksummed write-ahead log per shard,
:class:`CheckpointStore` keeps durable epoch-tagged checkpoints, and
:class:`DeploymentStore` ties both into the crash-recovery contract the
serving layer consumes: log every acknowledged write batch, checkpoint and
truncate behind, and recover any shard to a byte-identical state from the
latest valid checkpoint plus the WAL tail.
"""

from repro.store.backend import InMemoryBackend, LocalDirBackend, StorageBackend
from repro.store.checkpoint import Checkpoint, CheckpointStore, decode_checkpoint, encode_checkpoint
from repro.store.durability import DeploymentStore, ShardRecovery, replay_records
from repro.store.wal import (
    ShardWal,
    WalCorruption,
    WalReadResult,
    WalRecord,
    decode_record,
    encode_record,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "DeploymentStore",
    "InMemoryBackend",
    "LocalDirBackend",
    "ShardRecovery",
    "ShardWal",
    "StorageBackend",
    "WalCorruption",
    "WalReadResult",
    "WalRecord",
    "decode_checkpoint",
    "decode_record",
    "encode_checkpoint",
    "encode_record",
    "replay_records",
]
