"""Deployment-level durability: WAL + checkpoints per shard, and recovery.

:class:`DeploymentStore` is the object the serving layer holds: one
backend, one namespace per shard (``shard-NNNN/wal/...`` and
``shard-NNNN/checkpoint/...``), and a ``manifest.json`` naming the
topology.  The contract it implements:

* **log before ack** — every acknowledged write batch is appended to the
  shard's WAL (:meth:`log_batch`) before the write returns to the caller;
* **checkpoint + truncate behind** — :meth:`checkpoint` persists the
  shard's authoritative entries at an LSN and deletes the WAL records that
  checkpoint makes redundant (never the ones racing past it);
* **recover to byte-identical** — :meth:`recover_shard` loads the latest
  valid checkpoint and replays the WAL tail through the same
  entry-array apply discipline the router uses
  (:func:`repro.serve.router.apply_update_to_entries`), so the recovered
  arrays equal the pre-crash authoritative arrays byte for byte; torn tail
  records are truncated, corrupt ones skipped and counted.

Replay is idempotent by LSN guard (:func:`replay_records`): records at or
below the already-applied LSN are no-ops, so recovering twice — or
replaying a record that was both checkpointed and still in the log —
cannot double-apply a write.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.trace import NULL_TRACER
from repro.store.backend import StorageBackend
from repro.store.checkpoint import CheckpointStore
from repro.store.wal import ShardWal, WalRecord

MANIFEST = "manifest.json"


def replay_records(
    keys: np.ndarray,
    row_ids: np.ndarray,
    records: List[WalRecord],
    applied_lsn: int,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Apply WAL records above ``applied_lsn`` to sorted entry arrays.

    The LSN guard makes this idempotent: replaying the same records twice
    (or records already covered by the checkpoint) changes nothing.
    Returns ``(keys, row_ids, new_applied_lsn, records_applied)``.
    """
    # Imported lazily: the serve package imports this module at load time.
    from repro.serve.router import apply_update_to_entries

    applied = 0
    for record in sorted(records, key=lambda r: r.lsn):
        if record.lsn <= applied_lsn:
            continue  # idempotency guard: already applied
        keys, row_ids, _ = apply_update_to_entries(
            keys, row_ids, record.insert_keys, record.insert_row_ids, record.delete_keys
        )
        applied_lsn = record.lsn
        applied += 1
    return keys, row_ids, int(applied_lsn), applied


@dataclass
class ShardRecovery:
    """Everything recovery reconstructed for one shard."""

    shard_id: int
    #: Post-replay authoritative entries (byte-identical to pre-crash state).
    keys: np.ndarray
    row_ids: np.ndarray
    #: LSN the recovered arrays are consistent with.
    lsn: int
    epoch: int
    #: LSN and entries of the checkpoint recovery started from.
    checkpoint_lsn: int
    checkpoint_keys: np.ndarray = None
    checkpoint_row_ids: np.ndarray = None
    #: WAL tail above the checkpoint, for native (index-level) replay.
    records: List[WalRecord] = field(default_factory=list)
    replayed: int = 0
    torn_truncated: int = 0
    corrupt_skipped: int = 0
    #: Host wall-clock time recovery took (the panel the bench reports).
    wall_ms: float = 0.0

    @property
    def num_entries(self) -> int:
        return int(self.keys.shape[0])


class DeploymentStore:
    """Per-shard WALs and checkpoints of one served deployment."""

    def __init__(
        self,
        backend: StorageBackend,
        retain_checkpoints: int = 2,
        key_bits: int = 64,
    ) -> None:
        self.backend = backend
        self.retain_checkpoints = int(retain_checkpoints)
        self.key_bits = int(key_bits)
        #: Telemetry / span sinks; the deployment points these at its own.
        self.metrics = None
        self.tracer = NULL_TRACER
        #: Simulated clock spans are stamped against (bound by the deployment).
        self.clock = None
        self.counters: Dict[str, int] = {
            "wal_appends": 0,
            "wal_bytes": 0,
            "checkpoints": 0,
            "checkpoint_bytes": 0,
            "recoveries": 0,
            "records_replayed": 0,
            "torn_truncated": 0,
            "corrupt_skipped": 0,
        }
        self._wals: Dict[int, ShardWal] = {}
        self._checkpoints: Dict[int, CheckpointStore] = {}
        #: WAL records above the last checkpoint, per shard (lazily primed
        #: from a listing so reattaching to existing state stays correct).
        self._backlog: Dict[int, int] = {}

    # ------------------------------------------------------------- namespaces

    @staticmethod
    def shard_prefix(shard_id: int) -> str:
        return f"shard-{int(shard_id):04d}"

    def wal(self, shard_id: int) -> ShardWal:
        if shard_id not in self._wals:
            self._wals[shard_id] = ShardWal(
                self.backend, f"{self.shard_prefix(shard_id)}/wal"
            )
        return self._wals[shard_id]

    def checkpoints(self, shard_id: int) -> CheckpointStore:
        if shard_id not in self._checkpoints:
            self._checkpoints[shard_id] = CheckpointStore(
                self.backend,
                f"{self.shard_prefix(shard_id)}/checkpoint",
                retain=self.retain_checkpoints,
            )
        return self._checkpoints[shard_id]

    def _now_ms(self) -> float:
        return float(self.clock.now_ms) if self.clock is not None else 0.0

    # --------------------------------------------------------------- manifest

    def write_manifest(self, num_shards: int, key_bits: int, partitioner: str) -> None:
        self.backend.put_json(
            MANIFEST,
            {
                "format": 1,
                "num_shards": int(num_shards),
                "key_bits": int(key_bits),
                "partitioner": str(partitioner),
            },
        )

    def read_manifest(self) -> dict:
        return self.backend.get_json(MANIFEST)

    # -------------------------------------------------------------------- WAL

    def log_batch(
        self,
        shard_id: int,
        lsn: int,
        insert_keys: np.ndarray,
        insert_row_ids: np.ndarray,
        delete_keys: np.ndarray,
    ) -> int:
        """Durably append one acknowledged write batch; returns bytes written."""
        began = time.perf_counter()
        # Prime the backlog *before* the append: the lazy listing would
        # otherwise already include this record and double-count it.
        backlog = self.wal_backlog(shard_id)
        written = self.wal(shard_id).append(lsn, insert_keys, insert_row_ids, delete_keys)
        self._backlog[shard_id] = backlog + 1
        self.counters["wal_appends"] += 1
        self.counters["wal_bytes"] += written
        if self.metrics is not None:
            self.metrics.record_wal_append(shard_id, written, self.backend.fsync)
        if self.tracer.enabled:
            self.tracer.record_span(
                "store.append",
                self._now_ms(),
                (time.perf_counter() - began) * 1e3,
                category="store",
                lane="store",
                shard=int(shard_id),
                lsn=int(lsn),
                bytes=written,
            )
        return written

    def wal_backlog(self, shard_id: int) -> int:
        """WAL records not yet covered by a checkpoint (drives the task tier)."""
        if shard_id not in self._backlog:
            checkpoint = self.checkpoints(shard_id).latest_valid()
            floor = checkpoint.lsn if checkpoint is not None else 0
            self._backlog[shard_id] = sum(
                1
                for record in self.wal(shard_id).read(truncate_torn=False).records
                if record.lsn > floor
            )
        return self._backlog[shard_id]

    # ------------------------------------------------------------ checkpoints

    def checkpoint(
        self,
        shard_id: int,
        keys: np.ndarray,
        row_ids: np.ndarray,
        lsn: int,
        epoch: int = 0,
    ) -> int:
        """Persist a shard checkpoint and truncate the WAL behind it."""
        began = time.perf_counter()
        written = self.checkpoints(shard_id).save(keys, row_ids, lsn, epoch)
        self.wal(shard_id).truncate_through(lsn)
        # Appends that raced past the checkpoint LSN survive truncation and
        # remain the shard's backlog.
        self._backlog[shard_id] = self.wal(shard_id).record_count()
        self.counters["checkpoints"] += 1
        self.counters["checkpoint_bytes"] += written
        if self.metrics is not None:
            self.metrics.record_checkpoint(shard_id, written)
        if self.tracer.enabled:
            self.tracer.record_span(
                "store.checkpoint",
                self._now_ms(),
                (time.perf_counter() - began) * 1e3,
                category="store",
                lane="store",
                shard=int(shard_id),
                lsn=int(lsn),
                bytes=written,
            )
        return written

    # --------------------------------------------------------------- recovery

    def recover_shard(self, shard_id: int) -> ShardRecovery:
        """Latest valid checkpoint plus WAL-tail replay, damage handled."""
        began = time.perf_counter()
        key_dtype = np.uint32 if self.key_bits == 32 else np.uint64
        checkpoint = self.checkpoints(shard_id).latest_valid()
        if checkpoint is not None:
            base_keys, base_rows = checkpoint.keys, checkpoint.row_ids
            base_lsn, epoch = checkpoint.lsn, checkpoint.epoch
        else:
            base_keys = np.empty(0, dtype=key_dtype)
            base_rows = np.empty(0, dtype=np.uint32)
            base_lsn, epoch = 0, 0
        wal_read = self.wal(shard_id).read(truncate_torn=True)
        tail = [record for record in wal_read.records if record.lsn > base_lsn]
        keys, row_ids, lsn, replayed = replay_records(
            base_keys.copy(), base_rows.copy(), tail, base_lsn
        )
        recovery = ShardRecovery(
            shard_id=int(shard_id),
            keys=keys,
            row_ids=row_ids,
            lsn=lsn,
            epoch=epoch,
            checkpoint_lsn=base_lsn,
            checkpoint_keys=base_keys,
            checkpoint_row_ids=base_rows,
            records=tail,
            replayed=replayed,
            torn_truncated=wal_read.torn_truncated,
            corrupt_skipped=wal_read.corrupt_skipped
            + self.checkpoints(shard_id).corrupt_skipped,
            wall_ms=(time.perf_counter() - began) * 1e3,
        )
        self.counters["recoveries"] += 1
        self.counters["records_replayed"] += replayed
        self.counters["torn_truncated"] += wal_read.torn_truncated
        self.counters["corrupt_skipped"] += wal_read.corrupt_skipped
        if self.metrics is not None:
            self.metrics.record_recovery(shard_id, recovery.wall_ms, replayed)
        if self.tracer.enabled:
            self.tracer.record_span(
                "store.recover",
                self._now_ms(),
                recovery.wall_ms,
                category="store",
                lane="store",
                shard=int(shard_id),
                lsn=int(lsn),
                replayed=replayed,
            )
        return recovery

    # ------------------------------------------------------------- deployment

    @staticmethod
    def shard_durable_state(shard) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """A router shard's ``(keys, row_ids, lsn, epoch)`` for checkpointing.

        Replica groups carry their own LSN; plain shards use the shard
        version (bumped once per authoritative mutation) as theirs.  The
        epoch comes from the index's snapshot lifecycle when it has one.
        """
        index = shard.index
        if index is not None and hasattr(index, "replicas"):  # replica group
            epoch = next(
                (
                    int(getattr(replica.index, "epoch", 0))
                    for replica in index.available_replicas()
                ),
                0,
            )
            return index.keys, index.row_ids, int(index.lsn), epoch
        return shard.keys, shard.row_ids, int(shard.version), int(getattr(index, "epoch", 0))

    def checkpoint_deployment(self, router) -> int:
        """Checkpoint every shard at its current LSN and rewrite the manifest.

        Used on attach, after a cold start, and after topology changes
        (splits/merges renumber shards, so every namespace is rebased).
        Shard namespaces beyond the new topology are dropped.
        """
        total = 0
        for shard in router.shards:
            keys, row_ids, lsn, epoch = self.shard_durable_state(shard)
            # Rebase semantics: this checkpoint captures the shard wholesale
            # and its LSN sequence may restart (fresh shard objects count
            # from zero), so prior generations and WAL records are dropped
            # outright — the caller quiesced writes, nothing is racing.
            for name in self.backend.list(f"{self.shard_prefix(shard.shard_id)}/"):
                self.backend.delete(name)
            self._wals.pop(shard.shard_id, None)
            self._checkpoints.pop(shard.shard_id, None)
            self._backlog.pop(shard.shard_id, None)
            total += self.checkpoint(shard.shard_id, keys, row_ids, lsn, epoch)
        for stale_id in self._stale_shard_ids(router.num_shards):
            for name in self.backend.list(f"{self.shard_prefix(stale_id)}/"):
                self.backend.delete(name)
            self._wals.pop(stale_id, None)
            self._checkpoints.pop(stale_id, None)
            self._backlog.pop(stale_id, None)
        self.write_manifest(router.num_shards, self.key_bits, router.partitioner.kind)
        return total

    def _stale_shard_ids(self, num_shards: int) -> List[int]:
        stale = set()
        for name in self.backend.list("shard-"):
            shard_id = int(name.split("/", 1)[0].split("-", 1)[1])
            if shard_id >= num_shards:
                stale.add(shard_id)
        return sorted(stale)
