"""Per-shard write-ahead log over an object-store backend.

One immutable object per acknowledged write batch, named by its
zero-padded LSN so a plain listing is replay order.  Each record carries a
magic, a format version, the key dtype, the LSN, the batch arrays and a
CRC32 over everything before it — a partial write (a crash mid-put) fails
the checksum and is detected rather than replayed.

Tail handling on read is the crash-recovery contract:

* a corrupt record at the *end* of the log is a **torn tail** — the write
  it belonged to was never acknowledged (the append happens before the
  ack), so the record is truncated (deleted) and recovery proceeds;
* a corrupt record *before* valid ones is real damage — it is skipped and
  counted (``corrupt_skipped``) so the operator sees it, instead of
  aborting recovery of everything behind it.

Checkpoint truncation (:meth:`ShardWal.truncate_through`) deletes records
at or below the checkpoint LSN only, so appends racing a checkpoint are
never lost.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.store.backend import StorageBackend

_MAGIC = b"WALR"
_VERSION = 1
#: magic, version, key-dtype code (bytes per key), lsn, n_insert, n_delete
_HEADER = struct.Struct("<4sHHQII")
_CRC = struct.Struct("<I")


class WalCorruption(ValueError):
    """A WAL or checkpoint record failed structural or checksum validation."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded write batch."""

    lsn: int
    insert_keys: np.ndarray
    insert_row_ids: np.ndarray
    delete_keys: np.ndarray

    @property
    def num_changes(self) -> int:
        return int(self.insert_keys.shape[0] + self.delete_keys.shape[0])


@dataclass
class WalReadResult:
    """Outcome of reading a shard's log, tail damage accounted."""

    records: List[WalRecord]
    #: Corrupt records found before valid ones (skipped, never fatal).
    corrupt_skipped: int = 0
    #: Corrupt records at the end of the log (deleted as torn writes).
    torn_truncated: int = 0

    @property
    def max_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def encode_record(
    lsn: int,
    insert_keys: np.ndarray,
    insert_row_ids: np.ndarray,
    delete_keys: np.ndarray,
) -> bytes:
    """Serialize one write batch into a checksummed WAL record."""
    insert_keys = np.ascontiguousarray(insert_keys)
    delete_keys = np.ascontiguousarray(delete_keys, dtype=insert_keys.dtype)
    insert_row_ids = np.ascontiguousarray(insert_row_ids, dtype=np.uint32)
    key_bytes = insert_keys.dtype.itemsize
    if key_bytes not in (4, 8):
        raise ValueError(f"unsupported key dtype {insert_keys.dtype}")
    if insert_row_ids.shape[0] != insert_keys.shape[0]:
        raise ValueError("insert_row_ids must align with insert_keys")
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        key_bytes,
        int(lsn),
        int(insert_keys.shape[0]),
        int(delete_keys.shape[0]),
    )
    payload = (
        header
        + insert_keys.tobytes()
        + insert_row_ids.tobytes()
        + delete_keys.tobytes()
    )
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_record(data: bytes) -> WalRecord:
    """Parse and verify one WAL record; raises :class:`WalCorruption`."""
    if len(data) < _HEADER.size + _CRC.size:
        raise WalCorruption("record shorter than its framing")
    magic, version, key_bytes, lsn, n_insert, n_delete = _HEADER.unpack_from(data)
    if magic != _MAGIC or version != _VERSION or key_bytes not in (4, 8):
        raise WalCorruption("bad record header")
    body_size = _HEADER.size + n_insert * (key_bytes + 4) + n_delete * key_bytes
    if len(data) != body_size + _CRC.size:
        raise WalCorruption("record length does not match its header")
    (crc,) = _CRC.unpack_from(data, body_size)
    if zlib.crc32(data[:body_size]) != crc:
        raise WalCorruption("record checksum mismatch")
    key_dtype = np.uint32 if key_bytes == 4 else np.uint64
    offset = _HEADER.size
    insert_keys = np.frombuffer(data, dtype=key_dtype, count=n_insert, offset=offset).copy()
    offset += n_insert * key_bytes
    insert_row_ids = np.frombuffer(data, dtype=np.uint32, count=n_insert, offset=offset).copy()
    offset += n_insert * 4
    delete_keys = np.frombuffer(data, dtype=key_dtype, count=n_delete, offset=offset).copy()
    return WalRecord(
        lsn=int(lsn),
        insert_keys=insert_keys,
        insert_row_ids=insert_row_ids,
        delete_keys=delete_keys,
    )


class ShardWal:
    """One shard's write-ahead log: LSN-named record objects under a prefix."""

    def __init__(self, backend: StorageBackend, prefix: str) -> None:
        self.backend = backend
        self.prefix = prefix.rstrip("/")

    def _name(self, lsn: int) -> str:
        return f"{self.prefix}/{int(lsn):020d}.rec"

    @staticmethod
    def _lsn_of(name: str) -> int:
        return int(name.rsplit("/", 1)[-1].split(".", 1)[0])

    def _record_names(self) -> List[str]:
        return [
            name
            for name in self.backend.list(f"{self.prefix}/")
            if name.endswith(".rec")
        ]

    def append(
        self,
        lsn: int,
        insert_keys: np.ndarray,
        insert_row_ids: np.ndarray,
        delete_keys: np.ndarray,
    ) -> int:
        """Durably append one write batch; returns bytes written."""
        return self.backend.put(
            self._name(lsn), encode_record(lsn, insert_keys, insert_row_ids, delete_keys)
        )

    def record_count(self) -> int:
        return len(self._record_names())

    def max_lsn(self) -> int:
        names = self._record_names()
        return self._lsn_of(names[-1]) if names else 0

    def read(self, truncate_torn: bool = True) -> WalReadResult:
        """Replay the log in LSN order, classifying and handling damage.

        Corrupt records with valid records after them are skipped and
        counted; the maximal corrupt *suffix* is torn-write debris and is
        deleted (when ``truncate_torn``) so the next recovery is clean.
        """
        names = self._record_names()
        decoded: List[Tuple[str, Optional[WalRecord]]] = []
        for name in names:
            try:
                decoded.append((name, decode_record(self.backend.get(name))))
            except WalCorruption:
                decoded.append((name, None))
        last_valid = max(
            (position for position, (_, record) in enumerate(decoded) if record is not None),
            default=-1,
        )
        result = WalReadResult(records=[])
        for position, (name, record) in enumerate(decoded):
            if record is not None:
                result.records.append(record)
            elif position < last_valid:
                result.corrupt_skipped += 1
            else:
                result.torn_truncated += 1
                if truncate_torn:
                    self.backend.delete(name)
        return result

    def truncate_through(self, lsn: int) -> int:
        """Drop records at or below ``lsn`` (checkpointed); returns the count.

        Records with a higher LSN — including appends that raced the
        checkpoint — are untouched.
        """
        removed = 0
        for name in self._record_names():
            if self._lsn_of(name) <= int(lsn):
                removed += int(self.backend.delete(name))
        return removed
