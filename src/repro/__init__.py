"""repro: a software reproduction of cgRX (ICDE 2025).

"More Bang For Your Buck(et): Fast and Space-efficient Hardware-accelerated
Coarse-granular Indexing on GPUs" builds a GPU-resident database index on top
of NVIDIA's raytracing cores.  This package reproduces the system - and every
substrate it depends on - in pure Python/numpy:

* :mod:`repro.rtx` - a software OptiX: triangle scenes, BVH construction,
  closest-hit traversal, refit-based updates,
* :mod:`repro.gpu` - a GPU execution and cost model (devices, memory
  footprints, SIMT batching, radix sort),
* :mod:`repro.core` - the paper's contribution: the coarse-granular index
  cgRX (naive and optimized representations) and its updatable variant cgRXu,
* :mod:`repro.baselines` - the evaluation baselines RX, SA, B+, HT, RTScan
  and FullScan,
* :mod:`repro.workloads` - key-set, lookup and update-batch generators, and
* :mod:`repro.bench` - the experiment harness regenerating the paper's
  figures and tables.

Quickstart::

    import numpy as np
    from repro import CgRXIndex, CgRXConfig

    keys = np.random.default_rng(0).choice(2**32, size=1 << 14, replace=False)
    index = CgRXIndex(keys, config=CgRXConfig(bucket_size=32, key_bits=64))
    result = index.point_lookup_batch(keys[:1024])
    print(result.hits, "hits out of", result.num_lookups)
"""

from repro.core import CgRXConfig, CgRXIndex, CgRXuConfig, CgRXuIndex
from repro.baselines import (
    BPlusTreeIndex,
    FullScanIndex,
    GpuIndex,
    HashTableIndex,
    RTScanIndex,
    RXIndex,
    SortedArrayIndex,
)
from repro.gpu import RTX_4090, RTX_A6000, CostModel, GpuDevice

__version__ = "1.1.0"

__all__ = [
    "CgRXConfig",
    "CgRXIndex",
    "CgRXuConfig",
    "CgRXuIndex",
    "GpuIndex",
    "RXIndex",
    "SortedArrayIndex",
    "BPlusTreeIndex",
    "HashTableIndex",
    "RTScanIndex",
    "FullScanIndex",
    "GpuDevice",
    "RTX_4090",
    "RTX_A6000",
    "CostModel",
    "__version__",
]
