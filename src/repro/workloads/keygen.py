"""Key-set generation.

The paper's standard key set mixes a dense prefix (keys ``0 .. d-1``) with
keys picked uniformly at random from the remaining value range; the fraction
of uniformly picked keys is called the *uniformity* of the key set.  The key
sequence is always shuffled and the final position of a key in the shuffled
sequence becomes its rowID.

For the bucket-size robustness study (Figure 11) the paper evaluates nineteen
different key distributions "varying from uniform to highly skewed and
mixtures of both"; :data:`DISTRIBUTIONS` provides a named family of nineteen
generators in that spirit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


@dataclass
class KeySet:
    """A generated key set: keys, their rowIDs, and how they were produced."""

    keys: np.ndarray
    row_ids: np.ndarray
    key_bits: int
    description: str = ""

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def key_dtype(self) -> np.dtype:
        return self.keys.dtype

    def sorted_keys(self) -> np.ndarray:
        """Keys in ascending order (useful for ground-truth computations)."""
        return np.sort(self.keys)


def _key_dtype(key_bits: int) -> np.dtype:
    if key_bits == 32:
        return np.dtype(np.uint32)
    if key_bits == 64:
        return np.dtype(np.uint64)
    raise ValueError("key_bits must be 32 or 64")


def _value_range(key_bits: int) -> int:
    """Largest generated key value.

    64-bit key sets are generated within a 52-bit range so that arithmetic on
    them (ranges, update keys) stays exact and representative triangles still
    span multiple planes of the scene.
    """
    return (1 << 32) - 1 if key_bits == 32 else (1 << 52) - 1


def _finalize(keys: np.ndarray, key_bits: int, seed: int, description: str) -> KeySet:
    """Shuffle the key sequence and derive rowIDs from the shuffled positions."""
    rng = np.random.default_rng(seed + 0x5EED)
    keys = np.asarray(keys, dtype=_key_dtype(key_bits))
    rng.shuffle(keys)
    row_ids = np.arange(keys.shape[0], dtype=np.uint32)
    return KeySet(keys=keys, row_ids=row_ids, key_bits=key_bits, description=description)


def generate_keys(
    num_keys: int,
    uniformity: float = 0.0,
    key_bits: int = 32,
    seed: int = 0,
    unique: bool = True,
) -> KeySet:
    """Generate the paper's standard key set.

    ``uniformity`` is the fraction (0..1) of keys drawn uniformly at random
    from the value range above the dense prefix; the remaining keys form the
    dense prefix ``0 .. d-1``.  ``uniformity=0`` is a fully dense key set,
    ``uniformity=1`` a fully uniform one.
    """
    if num_keys < 1:
        raise ValueError("num_keys must be >= 1")
    if not 0.0 <= uniformity <= 1.0:
        raise ValueError("uniformity must be within [0, 1]")

    rng = np.random.default_rng(seed)
    dtype = _key_dtype(key_bits)
    max_value = _value_range(key_bits)

    num_uniform = int(round(num_keys * uniformity))
    num_dense = num_keys - num_uniform
    dense = np.arange(num_dense, dtype=np.uint64)

    if num_uniform:
        low = num_dense
        uniform = rng.integers(low, max_value, size=num_uniform, dtype=np.uint64, endpoint=True)
        if unique:
            uniform = np.unique(uniform)
            while uniform.shape[0] < num_uniform:
                extra = rng.integers(
                    low, max_value, size=num_uniform - uniform.shape[0], dtype=np.uint64, endpoint=True
                )
                uniform = np.unique(np.concatenate([uniform, extra]))
        keys = np.concatenate([dense, uniform[:num_uniform]])
    else:
        keys = dense

    description = f"uniformity={uniformity:.0%}, {key_bits}-bit, n={num_keys}"
    return _finalize(keys.astype(dtype), key_bits, seed, description)


# --------------------------------------------------------------------------
# The nineteen-distribution family of the robustness study (Figure 11).
# --------------------------------------------------------------------------


def _dense(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
    return np.arange(n, dtype=np.uint64)


def _uniform(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
    return rng.choice(max_value, size=n, replace=False).astype(np.uint64)


def _mixture(fraction_uniform: float) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        num_uniform = int(n * fraction_uniform)
        dense = np.arange(n - num_uniform, dtype=np.uint64)
        uniform = rng.integers(n, max_value, size=num_uniform, dtype=np.uint64)
        return np.concatenate([dense, uniform])

    return generate


def _zipf_like(exponent: float) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        # Heavy-tailed gaps produce a skewed key layout: most keys packed
        # densely, a long tail spread across the value range.
        gaps = np.floor(rng.pareto(exponent, size=n) + 1.0).astype(np.uint64)
        keys = np.cumsum(gaps)
        scale = max(1, int(keys[-1] // max_value) + 1)
        return (keys // np.uint64(scale)).astype(np.uint64)

    return generate


def _clustered(num_clusters: int) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        centres = rng.integers(0, max_value, size=num_clusters, dtype=np.uint64)
        per_cluster = -(-n // num_clusters)
        offsets = rng.integers(0, 1 << 12, size=(num_clusters, per_cluster), dtype=np.uint64)
        keys = (centres[:, None] + offsets).reshape(-1)[:n]
        return np.minimum(keys, np.uint64(max_value))

    return generate


def _normal(spread: float) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        values = rng.normal(loc=max_value / 2.0, scale=max_value * spread, size=n)
        return np.clip(values, 0, max_value).astype(np.uint64)

    return generate


def _lognormal(sigma: float) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        values = rng.lognormal(mean=0.0, sigma=sigma, size=n)
        values = values / values.max() * max_value
        return values.astype(np.uint64)

    return generate


def _strided(stride: int) -> Callable[[np.random.Generator, int, int], np.ndarray]:
    def generate(rng: np.random.Generator, n: int, max_value: int) -> np.ndarray:
        keys = np.arange(n, dtype=np.uint64) * np.uint64(stride)
        return np.minimum(keys, np.uint64(max_value))

    return generate


#: The nineteen named key distributions of the robustness study.
DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, int, int], np.ndarray]] = {
    "dense": _dense,
    "uniform": _uniform,
    "mix_10": _mixture(0.1),
    "mix_20": _mixture(0.2),
    "mix_35": _mixture(0.35),
    "mix_50": _mixture(0.5),
    "mix_65": _mixture(0.65),
    "mix_80": _mixture(0.8),
    "mix_90": _mixture(0.9),
    "zipf_low": _zipf_like(2.5),
    "zipf_mid": _zipf_like(1.5),
    "zipf_high": _zipf_like(1.05),
    "clustered_16": _clustered(16),
    "clustered_256": _clustered(256),
    "clustered_4096": _clustered(4096),
    "normal_narrow": _normal(0.05),
    "normal_wide": _normal(0.2),
    "lognormal": _lognormal(2.0),
    "strided_64": _strided(64),
}


def generate_distribution(
    name: str,
    num_keys: int,
    key_bits: int = 32,
    seed: int = 0,
) -> KeySet:
    """Generate one of the nineteen named distributions from :data:`DISTRIBUTIONS`."""
    if name not in DISTRIBUTIONS:
        raise KeyError(f"unknown distribution {name!r}; available: {sorted(DISTRIBUTIONS)}")
    rng = np.random.default_rng(seed)
    max_value = _value_range(key_bits)
    keys = DISTRIBUTIONS[name](rng, int(num_keys), max_value)
    keys = np.asarray(keys, dtype=_key_dtype(key_bits))[: int(num_keys)]
    return _finalize(keys, key_bits, seed, description=f"{name}, {key_bits}-bit, n={num_keys}")
