"""Failure-schedule generation for the replicated serving subsystem.

A production deployment sees replicas crash, grind and hiccup continuously;
the availability experiment and the differential fuzzer replay exactly such
weather against :class:`~repro.serve.replication.ReplicaGroup` deployments.
A schedule is a plain list of :class:`~repro.serve.replication.FailureEvent`
records on the simulated clock, generated from seeded Poisson processes per
fault class so every run is reproducible.

The generator is deliberately index-agnostic: it only needs the deployment's
shape (shard count x replication factor) and a time horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

if TYPE_CHECKING:  # imported lazily below: serve already imports workloads
    from repro.serve.replication import FailureEvent


def failure_schedule(
    num_shards: int,
    replication_factor: int,
    duration_ms: float,
    crashes_per_s: float = 20.0,
    slowdowns_per_s: float = 20.0,
    transients_per_s: float = 40.0,
    mean_outage_ms: float = 8.0,
    mean_slowdown_ms: float = 6.0,
    slow_factor: float = 4.0,
    max_transient_errors: int = 3,
    process_kills_per_s: float = 0.0,
    mean_restart_ms: Optional[float] = None,
    spare_replica: Optional[int] = None,
    latency_storms_per_s: float = 0.0,
    storm_slow_factor: float = 8.0,
    mean_storm_ms: float = 12.0,
    correlated_outages_per_s: float = 0.0,
    mean_correlated_outage_ms: float = 6.0,
    flapping_per_s: float = 0.0,
    flap_cycles: int = 3,
    mean_flap_ms: float = 2.0,
    seed: int = 0,
) -> List[FailureEvent]:
    """Seeded random failure weather for a ``num_shards x replication_factor`` fleet.

    Every fault class is an independent Poisson process over ``[0,
    duration_ms]`` (rates are per simulated *second*; serving streams span
    tens of milliseconds, so the defaults inject a handful of events each).
    Crash and slowdown durations are exponential around their means.

    ``spare_replica`` exempts one replica id per shard from *crash* events —
    with it set, at least that replica stays up and the deployment never
    needs an emergency restart; without it, total shard outages (and their
    unavailability windows) are possible and exercised.

    ``process_kills_per_s`` adds whole-process crash/restart weather (off by
    default): the killed replica loses its in-memory index and apply state
    outright and must recover from the durable store (or a peer snapshot)
    after ``mean_restart_ms`` (defaults to ``mean_outage_ms``).  The spare
    replica, when set, is exempt from process kills too.  Process-kill draws
    happen *after* every other fault class, so enabling them never changes
    the schedule an existing seed produces for the classic classes.

    **Gray-failure weather** (all off by default, drawn after every class
    above so known seeds stay stable):

    * ``latency_storms_per_s`` — metastable latency storms: one shard's
      replicas (all but at least one, so a hedge can still win) slow down by
      ``storm_slow_factor`` for overlapping, jittered windows around
      ``mean_storm_ms``.  Nothing is DOWN; the shard is just *slow*, the
      failure mode deadlines and hedged reads exist for.
    * ``correlated_outages_per_s`` — every crashable replica of one shard
      crashes at once (a rack/AZ event) for ``mean_correlated_outage_ms``;
      with no spare this leaves the shard with nothing to serve from, the
      case graceful degradation (partial results / stale reads) covers.
    * ``flapping_per_s`` — one replica bounces through ``flap_cycles`` short
      crash/up cycles of ``mean_flap_ms``, the churn pattern circuit breakers
      damp by holding the replica out until it stays healthy.
    """
    from repro.serve.replication import FailureEvent

    if num_shards < 1 or replication_factor < 1:
        raise ValueError("num_shards and replication_factor must be >= 1")
    if duration_ms <= 0.0:
        raise ValueError("duration_ms must be positive")

    rng = np.random.default_rng(seed)
    events: List[FailureEvent] = []

    def draw_times(rate_per_s: float) -> np.ndarray:
        expected = rate_per_s * duration_ms / 1e3
        count = int(rng.poisson(expected))
        return np.sort(rng.uniform(0.0, duration_ms, size=count))

    crashable = [
        replica_id
        for replica_id in range(replication_factor)
        if replica_id != spare_replica
    ]
    for at_ms in draw_times(crashes_per_s):
        if not crashable:
            break
        events.append(
            FailureEvent(
                at_ms=float(at_ms),
                kind="crash",
                shard_id=int(rng.integers(num_shards)),
                replica_id=int(rng.choice(crashable)),
                duration_ms=float(rng.exponential(mean_outage_ms)),
            )
        )
    for at_ms in draw_times(slowdowns_per_s):
        events.append(
            FailureEvent(
                at_ms=float(at_ms),
                kind="slow",
                shard_id=int(rng.integers(num_shards)),
                replica_id=int(rng.integers(replication_factor)),
                duration_ms=float(rng.exponential(mean_slowdown_ms)),
                slow_factor=float(slow_factor),
            )
        )
    for at_ms in draw_times(transients_per_s):
        events.append(
            FailureEvent(
                at_ms=float(at_ms),
                kind="transient",
                shard_id=int(rng.integers(num_shards)),
                replica_id=int(rng.integers(replication_factor)),
                error_count=int(rng.integers(1, max_transient_errors + 1)),
            )
        )
    if process_kills_per_s > 0.0:
        restart_ms = mean_outage_ms if mean_restart_ms is None else mean_restart_ms
        for at_ms in draw_times(process_kills_per_s):
            if not crashable:
                break
            events.append(
                FailureEvent(
                    at_ms=float(at_ms),
                    kind="process_kill",
                    shard_id=int(rng.integers(num_shards)),
                    replica_id=int(rng.choice(crashable)),
                    duration_ms=float(rng.exponential(restart_ms)),
                )
            )
    if latency_storms_per_s > 0.0:
        for at_ms in draw_times(latency_storms_per_s):
            shard_id = int(rng.integers(num_shards))
            # Hit all but at least one replica, so the shard stays fast
            # *somewhere* and a hedged read can beat the storm.
            hit_count = (
                int(rng.integers(1, replication_factor))
                if replication_factor > 1
                else 1
            )
            victims = rng.choice(replication_factor, size=hit_count, replace=False)
            for replica_id in victims:
                events.append(
                    FailureEvent(
                        at_ms=float(at_ms + rng.uniform(0.0, 0.5)),
                        kind="slow",
                        shard_id=shard_id,
                        replica_id=int(replica_id),
                        duration_ms=float(rng.exponential(mean_storm_ms)),
                        slow_factor=float(storm_slow_factor),
                    )
                )
    if correlated_outages_per_s > 0.0:
        for at_ms in draw_times(correlated_outages_per_s):
            if not crashable:
                break
            shard_id = int(rng.integers(num_shards))
            outage_ms = float(rng.exponential(mean_correlated_outage_ms))
            for replica_id in crashable:
                events.append(
                    FailureEvent(
                        at_ms=float(at_ms),
                        kind="crash",
                        shard_id=shard_id,
                        replica_id=int(replica_id),
                        duration_ms=outage_ms,
                    )
                )
    if flapping_per_s > 0.0:
        for at_ms in draw_times(flapping_per_s):
            if not crashable:
                break
            shard_id = int(rng.integers(num_shards))
            replica_id = int(rng.choice(crashable))
            cycle_start = float(at_ms)
            for _ in range(int(flap_cycles)):
                down_ms = float(rng.exponential(mean_flap_ms))
                up_ms = float(rng.exponential(mean_flap_ms))
                events.append(
                    FailureEvent(
                        at_ms=cycle_start,
                        kind="crash",
                        shard_id=shard_id,
                        replica_id=replica_id,
                        duration_ms=down_ms,
                    )
                )
                cycle_start += down_ms + up_ms
    events.sort(key=lambda event: event.at_ms)
    return events
