"""Update workloads: the insert/delete waves of the paper's Section VI-F.

The experiment bulk loads an index, then fires eight equally sized waves of
insertions (growing the entry count by a configurable factor, 2.2x in the
paper), each followed by a lookup batch, and finally eight waves of deletions
removing the previously inserted keys again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workloads.keygen import KeySet, _key_dtype, _value_range


@dataclass
class UpdateWave:
    """One wave of the update experiment."""

    #: 1-based wave number (1..num_insert_waves + num_delete_waves).
    wave: int
    #: Either ``"insert"`` or ``"delete"``.
    kind: str
    #: Keys inserted in this wave (empty for delete waves).
    insert_keys: np.ndarray
    #: RowIDs of the inserted keys.
    insert_row_ids: np.ndarray
    #: Keys deleted in this wave (empty for insert waves).
    delete_keys: np.ndarray

    @property
    def size(self) -> int:
        return int(max(self.insert_keys.shape[0], self.delete_keys.shape[0]))


def update_waves(
    keyset: KeySet,
    num_insert_waves: int = 8,
    num_delete_waves: int = 8,
    growth_factor: float = 2.2,
    seed: int = 0,
) -> List[UpdateWave]:
    """Generate the paper's insert-then-delete wave sequence.

    The insert waves add ``(growth_factor - 1) * len(keyset)`` new keys in
    total, distributed evenly across waves; the delete waves remove exactly
    those keys again, in reverse insertion order.
    """
    if growth_factor <= 1.0:
        raise ValueError("growth_factor must be > 1")
    if num_insert_waves < 1 or num_delete_waves < 0:
        raise ValueError("need at least one insert wave and non-negative delete waves")

    rng = np.random.default_rng(seed)
    dtype = _key_dtype(keyset.key_bits)
    max_value = _value_range(keyset.key_bits)

    total_new = int(round((growth_factor - 1.0) * len(keyset)))
    per_wave = max(1, total_new // num_insert_waves)

    existing = set(int(k) for k in keyset.keys)
    next_row_id = int(keyset.row_ids.max()) + 1 if len(keyset) else 0

    waves: List[UpdateWave] = []
    all_inserted: List[np.ndarray] = []

    for wave in range(1, num_insert_waves + 1):
        fresh: List[int] = []
        while len(fresh) < per_wave:
            candidates = rng.integers(0, max_value, size=per_wave - len(fresh) + 16, dtype=np.uint64)
            for value in candidates:
                value = int(value)
                if value not in existing:
                    existing.add(value)
                    fresh.append(value)
                    if len(fresh) == per_wave:
                        break
        insert_keys = np.asarray(fresh, dtype=dtype)
        insert_row_ids = np.arange(next_row_id, next_row_id + per_wave, dtype=np.uint32)
        next_row_id += per_wave
        all_inserted.append(insert_keys)
        waves.append(
            UpdateWave(
                wave=wave,
                kind="insert",
                insert_keys=insert_keys,
                insert_row_ids=insert_row_ids,
                delete_keys=np.empty(0, dtype=dtype),
            )
        )

    if num_delete_waves:
        inserted = np.concatenate(all_inserted) if all_inserted else np.empty(0, dtype=dtype)
        chunks = np.array_split(inserted[::-1], num_delete_waves)
        for offset, chunk in enumerate(chunks, start=1):
            waves.append(
                UpdateWave(
                    wave=num_insert_waves + offset,
                    kind="delete",
                    insert_keys=np.empty(0, dtype=dtype),
                    insert_row_ids=np.empty(0, dtype=np.uint32),
                    delete_keys=np.asarray(chunk, dtype=dtype),
                )
            )
    return waves
