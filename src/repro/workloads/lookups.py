"""Lookup-batch generation: uniform, skewed, hit/miss mixes and ranges."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.keygen import KeySet


def uniform_lookups(keyset: KeySet, count: int, seed: int = 0) -> np.ndarray:
    """Point lookups drawn uniformly at random from the indexed keys (all hits)."""
    rng = np.random.default_rng(seed)
    return rng.choice(keyset.keys, size=int(count), replace=True)


def zipf_lookups(keyset: KeySet, count: int, coefficient: float, seed: int = 0) -> np.ndarray:
    """Point lookups whose key popularity follows a Zipf distribution.

    ``coefficient`` 0.0 degenerates to the uniform case; larger values
    concentrate the lookups on fewer and fewer distinct keys (Figure 17).
    """
    if coefficient < 0.0:
        raise ValueError("the Zipf coefficient must be non-negative")
    rng = np.random.default_rng(seed)
    count = int(count)
    if coefficient == 0.0:
        return rng.choice(keyset.keys, size=count, replace=True)

    n = len(keyset)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-coefficient)
    weights /= weights.sum()
    # Assign popularity ranks to keys in a fixed shuffled order so that the
    # popular keys are spread over the key space.
    key_order = np.random.default_rng(seed + 1).permutation(keyset.keys)
    positions = rng.choice(n, size=count, replace=True, p=weights)
    return key_order[positions]


def hit_miss_lookups(
    keyset: KeySet,
    count: int,
    miss_fraction: float,
    out_of_range_fraction: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Point lookups with a configurable fraction of misses (Figure 16).

    ``miss_fraction`` of the lookups target keys that are *not* indexed;
    ``out_of_range_fraction`` of those misses lie beyond the largest indexed
    key (which every index detects trivially), the rest fall into gaps within
    the indexed key range.

    A fully dense key set (every value in ``[0, max_key)`` indexed) has no
    in-range gaps to sample misses from; requested in-range misses are then
    generated out of range instead, or a :class:`ValueError` is raised when
    the key range is exhausted too.  (Without this check the rejection
    sampler below would spin forever — the PR-3 footgun.)
    """
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction must be within [0, 1]")
    if not 0.0 <= out_of_range_fraction <= 1.0:
        raise ValueError("out_of_range_fraction must be within [0, 1]")

    rng = np.random.default_rng(seed)
    count = int(count)
    num_misses = int(round(count * miss_fraction))
    num_hits = count - num_misses
    num_out_of_range = int(round(num_misses * out_of_range_fraction))
    num_in_range = num_misses - num_out_of_range

    lookups = [rng.choice(keyset.keys, size=num_hits, replace=True)] if num_hits else []

    sorted_keys = keyset.sorted_keys()
    key_set = sorted_keys
    max_key = int(sorted_keys[-1])
    dtype = keyset.key_dtype
    dtype_max = int(np.iinfo(dtype).max)

    if num_in_range:
        # Feasibility: the sampler draws from [0, max_key), so a key set
        # occupying every value in that range can never yield an in-range
        # miss — and a *nearly* dense one would make rejection sampling
        # spin effectively forever.
        # ``sorted_keys`` is already sorted: dedup with one comparison pass
        # instead of np.unique's unconditional re-sort.
        distinct_below = sorted_keys[
            np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
        ]
        distinct_below = distinct_below[distinct_below < max_key]
        gaps_in_range = max_key - int(distinct_below.shape[0])
        if gaps_in_range == 0:
            if max_key >= dtype_max:
                raise ValueError(
                    "cannot generate in-range misses: the key set is fully "
                    "dense and the key range is exhausted"
                )
            num_out_of_range += num_in_range
            num_in_range = 0
        elif gaps_in_range < (max_key >> 3):
            # Scarce gaps: sample them directly instead of by rejection.
            # The j-th absent value of [0, max_key) is ``j`` plus the number
            # of indexed values at or below it, found by binary search over
            # the gap counts preceding each indexed value — exact, uniform
            # over the gaps, and O(log n) per miss regardless of density.
            targets = rng.integers(0, gaps_in_range, size=num_in_range)
            gaps_before = distinct_below.astype(np.int64) - np.arange(
                distinct_below.shape[0], dtype=np.int64
            )
            offsets = np.searchsorted(gaps_before, targets, side="right")
            lookups.append((targets + offsets).astype(dtype))
            num_in_range = 0

    if num_in_range:
        # Sample keys within the indexed range and reject the ones that exist.
        missing = np.empty(0, dtype=dtype)
        while missing.shape[0] < num_in_range:
            candidates = rng.integers(
                0, max_key, size=2 * (num_in_range - missing.shape[0]) + 16, dtype=np.uint64
            ).astype(dtype)
            positions = np.searchsorted(key_set, candidates)
            positions = np.minimum(positions, key_set.shape[0] - 1)
            exists = key_set[positions] == candidates
            missing = np.concatenate([missing, candidates[~exists]])
        lookups.append(missing[:num_in_range])

    if num_out_of_range:
        if max_key >= dtype_max:
            raise ValueError("cannot generate out-of-range misses: key range is exhausted")
        out = rng.integers(max_key + 1, dtype_max, size=num_out_of_range, dtype=np.uint64, endpoint=True)
        lookups.append(out.astype(dtype))

    batch = np.concatenate(lookups).astype(dtype)
    rng.shuffle(batch)
    return batch


def range_lookups(
    keyset: KeySet,
    count: int,
    expected_hits: int,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Range lookups ``[low, high]`` each matching ``expected_hits`` indexed keys.

    The bounds are derived from the sorted key array (rank based), so every
    generated range contains exactly ``expected_hits`` keys regardless of the
    key distribution — the construction used for Figure 14.
    """
    expected_hits = int(expected_hits)
    if expected_hits < 1:
        raise ValueError("expected_hits must be >= 1")
    if expected_hits > len(keyset):
        raise ValueError("expected_hits cannot exceed the key-set size")

    rng = np.random.default_rng(seed)
    sorted_keys = keyset.sorted_keys()
    max_start = len(keyset) - expected_hits
    starts = rng.integers(0, max_start + 1, size=int(count))
    lows = sorted_keys[starts]
    highs = sorted_keys[starts + expected_hits - 1]
    return lows, highs
