"""Client request streams for the serving subsystem.

A served deployment does not see the benchmark harness's pre-formed giant
batches: it sees many small client requests arriving over time.  A
:class:`RequestStream` is the simulated form of that traffic — per-request
arrival timestamps (Poisson arrivals at a configurable aggregate rate),
Zipf-skewed key popularity (hot keys dominate, which is what makes the result
cache earn its keep) and an optional miss fraction (keys that are not
indexed, exercising the negative cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.workloads.keygen import KeySet
from repro.workloads.lookups import hit_miss_lookups, zipf_lookups


@dataclass
class RequestStream:
    """A time-ordered stream of single-key point-lookup requests."""

    #: Arrival timestamp of every request, non-decreasing.
    arrival_ms: np.ndarray
    #: Looked-up key per request.
    keys: np.ndarray
    #: Originating (simulated) client per request.
    client_ids: np.ndarray
    description: str = ""
    #: Optional tenant label per request (multi-tenant streams); ``None``
    #: for single-tenant traffic.
    tenant_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not (
            self.arrival_ms.shape == self.keys.shape == self.client_ids.shape
        ):
            raise ValueError("arrival_ms, keys and client_ids must align")
        if self.tenant_ids is not None and self.tenant_ids.shape != self.keys.shape:
            raise ValueError("tenant_ids must align with keys")
        if self.arrival_ms.size and np.any(np.diff(self.arrival_ms) < 0):
            raise ValueError("arrivals must be non-decreasing")

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, float, int]]:
        """Yield ``(request_id, arrival_ms, key)`` in arrival order."""
        for request_id in range(len(self)):
            yield request_id, float(self.arrival_ms[request_id]), int(self.keys[request_id])

    @property
    def duration_ms(self) -> float:
        """Time between the first and the last arrival."""
        if len(self) == 0:
            return 0.0
        return float(self.arrival_ms[-1] - self.arrival_ms[0])

    @property
    def offered_load_per_ms(self) -> float:
        """Average request arrival rate of the stream."""
        duration = self.duration_ms
        if duration <= 0.0:
            return float("inf") if len(self) else 0.0
        return len(self) / duration


def zipf_request_stream(
    keyset: KeySet,
    count: int,
    zipf_coefficient: float = 1.0,
    requests_per_ms: float = 32.0,
    miss_fraction: float = 0.0,
    num_clients: int = 64,
    seed: int = 0,
) -> RequestStream:
    """Poisson arrivals with Zipf-skewed key popularity.

    ``requests_per_ms`` is the aggregate arrival rate over all clients;
    inter-arrival gaps are exponential.  ``miss_fraction`` of the requests
    target keys that are not indexed (in-range gaps), the rest follow the
    Zipf popularity of :func:`~repro.workloads.lookups.zipf_lookups`.
    """
    count = int(count)
    if count < 1:
        raise ValueError("count must be >= 1")
    if requests_per_ms <= 0.0:
        raise ValueError("requests_per_ms must be positive")
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction must be within [0, 1]")

    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / requests_per_ms, size=count)
    arrival_ms = np.cumsum(gaps)
    arrival_ms -= arrival_ms[0]

    num_misses = int(round(count * miss_fraction))
    num_hits = count - num_misses
    parts = []
    if num_hits:
        parts.append(zipf_lookups(keyset, num_hits, zipf_coefficient, seed=seed + 1))
    if num_misses:
        parts.append(
            hit_miss_lookups(keyset, num_misses, miss_fraction=1.0, seed=seed + 2)
        )
    keys = np.concatenate(parts).astype(keyset.key_dtype)
    rng.shuffle(keys)

    client_ids = rng.integers(0, int(num_clients), size=count, dtype=np.int64)
    description = (
        f"zipf={zipf_coefficient}, rate={requests_per_ms}/ms, "
        f"miss={miss_fraction:.0%}, n={count}"
    )
    return RequestStream(
        arrival_ms=arrival_ms,
        keys=keys,
        client_ids=client_ids,
        description=description,
    )
