"""Hostile request streams the paper never measured.

The serving benchmarks so far drive well-behaved Zipf traffic; production
deployments break on exactly the streams that are *not* well behaved.  Three
generator families cover that space:

* :func:`shifting_hotspot_stream` — a contiguous hotspot window that
  migrates across the sorted keyspace in phases.  A static range partition
  that was equi-depth at build time serves almost the whole stream from one
  shard at a time, and *which* shard changes as the hotspot moves — the
  signal the dynamic split/merge policy reacts to.
* :func:`range_hammer_stream` — the worst case for range partitioning: a
  large fraction of the traffic hammers one thin slice of the sorted
  keyspace (one shard by construction), with a configurable fraction of
  **negative int64 keys** mixed in to exercise the signed-key routing
  boundary (they must be answered as misses, never wrapped).
* :func:`multi_tenant_stream` — per-tenant Poisson arrival processes (with
  optional on/off bursts) merged into one time-ordered stream carrying
  tenant labels; each tenant has its own rate, Zipf skew and keyspace
  slice, so one flooding tenant contends with well-behaved ones.

All generators are seeded and deterministic, like everything else in
:mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.workloads.keygen import KeySet
from repro.workloads.lookups import zipf_lookups
from repro.workloads.requests import RequestStream


def _poisson_arrivals(
    rng: np.random.Generator, count: int, requests_per_ms: float
) -> np.ndarray:
    gaps = rng.exponential(scale=1.0 / requests_per_ms, size=count)
    arrivals = np.cumsum(gaps)
    arrivals -= arrivals[0]
    return arrivals


def shifting_hotspot_stream(
    keyset: KeySet,
    count: int,
    num_phases: int = 4,
    hotspot_fraction: float = 0.9,
    hotspot_width: float = 0.05,
    requests_per_ms: float = 32.0,
    num_clients: int = 64,
    seed: int = 0,
) -> RequestStream:
    """A hotspot window sweeping low→high across the sorted keyspace.

    The stream is cut into ``num_phases`` equal-duration phases; in phase
    ``p`` a ``hotspot_fraction`` of the requests target a contiguous window
    of ``hotspot_width`` of the sorted keys whose centre moves linearly from
    the bottom of the keyspace to the top, and the rest are uniform over all
    keys.  Every key is a stored key (pure hit traffic), so the only thing
    that changes over time is *where* the load lands.
    """
    count = int(count)
    if count < 1:
        raise ValueError("count must be >= 1")
    if num_phases < 1:
        raise ValueError("num_phases must be >= 1")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be within [0, 1]")
    if not 0.0 < hotspot_width <= 1.0:
        raise ValueError("hotspot_width must be within (0, 1]")

    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(keyset.keys)
    num_keys = sorted_keys.shape[0]
    arrival_ms = _poisson_arrivals(rng, count, requests_per_ms)

    phase = (np.arange(count) * num_phases) // count
    centres = np.linspace(hotspot_width / 2.0, 1.0 - hotspot_width / 2.0, num_phases)
    window_lo = np.clip(
        ((centres - hotspot_width / 2.0) * num_keys).astype(np.int64), 0, num_keys - 1
    )
    window_hi = np.clip(
        ((centres + hotspot_width / 2.0) * num_keys).astype(np.int64), 1, num_keys
    )

    hot = rng.random(count) < hotspot_fraction
    positions = rng.integers(0, num_keys, size=count)
    lo = window_lo[phase]
    span = np.maximum(window_hi[phase] - lo, 1)
    positions[hot] = lo[hot] + (rng.random(int(hot.sum())) * span[hot]).astype(np.int64)
    keys = sorted_keys[positions]

    client_ids = rng.integers(0, int(num_clients), size=count, dtype=np.int64)
    description = (
        f"shifting hotspot: {num_phases} phases, width={hotspot_width:.0%}, "
        f"hot={hotspot_fraction:.0%}, rate={requests_per_ms}/ms, n={count}"
    )
    return RequestStream(
        arrival_ms=arrival_ms,
        keys=keys,
        client_ids=client_ids,
        description=description,
    )


def range_hammer_stream(
    keyset: KeySet,
    count: int,
    span_fraction: float = 0.05,
    hammer_fraction: float = 0.9,
    negative_fraction: float = 0.05,
    requests_per_ms: float = 32.0,
    num_clients: int = 64,
    seed: int = 0,
) -> RequestStream:
    """Worst-case traffic for a range partition, with negative keys mixed in.

    ``hammer_fraction`` of the requests target the top ``span_fraction``
    slice of the sorted keyspace — under any equi-depth range partition that
    slice lives on (at most) one shard, so the hammer concentrates there no
    matter how many shards exist, while a hash partition spreads it evenly.
    ``negative_fraction`` of the requests carry negative int64 keys, which
    sort below the unsigned keyspace and must be answered as misses — the
    stream's dtype is int64 for exactly this reason.
    """
    count = int(count)
    if count < 1:
        raise ValueError("count must be >= 1")
    for name, value in (
        ("span_fraction", span_fraction),
        ("hammer_fraction", hammer_fraction),
        ("negative_fraction", negative_fraction),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be within [0, 1]")

    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(keyset.keys)
    num_keys = sorted_keys.shape[0]
    arrival_ms = _poisson_arrivals(rng, count, requests_per_ms)

    slice_start = min(int(num_keys * (1.0 - span_fraction)), num_keys - 1)
    positions = rng.integers(0, num_keys, size=count)
    hammered = rng.random(count) < hammer_fraction
    positions[hammered] = rng.integers(
        slice_start, num_keys, size=int(hammered.sum())
    )
    keys = sorted_keys[positions].astype(np.int64)
    negative = rng.random(count) < negative_fraction
    keys[negative] = -rng.integers(1, 2**31, size=int(negative.sum()))

    client_ids = rng.integers(0, int(num_clients), size=count, dtype=np.int64)
    description = (
        f"range hammer: top {span_fraction:.0%} slice, "
        f"hammer={hammer_fraction:.0%}, negative={negative_fraction:.0%}, n={count}"
    )
    return RequestStream(
        arrival_ms=arrival_ms,
        keys=keys,
        client_ids=client_ids,
        description=description,
    )


@dataclass(frozen=True)
class TenantSpec:
    """Traffic profile of one tenant in a multi-tenant stream."""

    #: Tenant identifier carried on every request.
    tenant: int
    #: Poisson arrival rate of this tenant.
    requests_per_ms: float
    #: Zipf skew of the tenant's key popularity.
    zipf_coefficient: float = 1.0
    #: Slice of the sorted keyspace this tenant touches, as fractions.
    keyspace: Tuple[float, float] = (0.0, 1.0)
    #: Simulated client processes behind this tenant.
    num_clients: int = 16
    #: On/off burst modulation: when ``burst_on_ms > 0`` the tenant only
    #: sends during the first ``burst_on_ms`` of every
    #: ``burst_on_ms + burst_off_ms`` cycle (a flooding tenant's duty cycle).
    burst_on_ms: float = 0.0
    burst_off_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.requests_per_ms <= 0:
            raise ValueError("requests_per_ms must be positive")
        lo, hi = self.keyspace
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("keyspace must be a non-empty sub-interval of [0, 1]")
        if self.burst_on_ms < 0 or self.burst_off_ms < 0:
            raise ValueError("burst windows must be >= 0")


def multi_tenant_stream(
    keyset: KeySet,
    specs: Sequence[TenantSpec],
    duration_ms: float,
    seed: int = 0,
) -> RequestStream:
    """Merge per-tenant arrival processes into one labeled stream.

    Each tenant draws Poisson arrivals at its own rate over ``duration_ms``
    (optionally on/off modulated), with Zipf-skewed keys from its own slice
    of the sorted keyspace; the merged stream is time-ordered and carries
    ``tenant_ids`` so the serving layer can enforce per-tenant QoS.
    """
    if not specs:
        raise ValueError("need at least one tenant spec")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    seen = set()
    for spec in specs:
        if spec.tenant in seen:
            raise ValueError(f"duplicate tenant id {spec.tenant}")
        seen.add(spec.tenant)

    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(keyset.keys)
    row_order = np.argsort(keyset.keys, kind="stable")
    num_keys = sorted_keys.shape[0]

    all_arrivals = []
    all_keys = []
    all_clients = []
    all_tenants = []
    for offset, spec in enumerate(specs):
        budget = int(spec.requests_per_ms * duration_ms * 1.3) + 16
        gaps = rng.exponential(scale=1.0 / spec.requests_per_ms, size=budget)
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < duration_ms]
        if spec.burst_on_ms > 0:
            cycle = spec.burst_on_ms + spec.burst_off_ms
            arrivals = arrivals[(arrivals % cycle) < spec.burst_on_ms]
        if arrivals.shape[0] == 0:
            continue
        count = arrivals.shape[0]

        lo = int(spec.keyspace[0] * num_keys)
        hi = max(int(spec.keyspace[1] * num_keys), lo + 1)
        slice_keyset = KeySet(
            keys=sorted_keys[lo:hi],
            row_ids=keyset.row_ids[row_order][lo:hi],
            key_bits=keyset.key_bits,
            description=f"tenant {spec.tenant} slice",
        )
        keys = zipf_lookups(
            slice_keyset,
            count,
            spec.zipf_coefficient,
            seed=seed + 7919 * (offset + 1),
        )
        clients = spec.tenant * 1000 + rng.integers(
            0, int(spec.num_clients), size=count, dtype=np.int64
        )
        all_arrivals.append(arrivals)
        all_keys.append(keys)
        all_clients.append(clients)
        all_tenants.append(np.full(count, int(spec.tenant), dtype=np.int64))

    if not all_arrivals:
        raise ValueError("no tenant produced any request within duration_ms")
    arrival_ms = np.concatenate(all_arrivals)
    order = np.argsort(arrival_ms, kind="stable")
    description = "multi-tenant: " + ", ".join(
        f"t{spec.tenant}@{spec.requests_per_ms}/ms" for spec in specs
    )
    return RequestStream(
        arrival_ms=arrival_ms[order],
        keys=np.concatenate(all_keys)[order],
        client_ids=np.concatenate(all_clients)[order],
        description=description,
        tenant_ids=np.concatenate(all_tenants)[order],
    )
