"""Workload generators: key sets, lookup batches and update waves.

These mirror Section V/VI of the paper: key sets parameterised by a
*uniformity* percentage (dense prefix + uniformly random remainder), uniform
and Zipf-skewed point-lookup batches, hit/miss mixes, range lookups with a
target number of expected hits, and the insert/delete waves of the update
experiment.
"""

from repro.workloads.keygen import (
    DISTRIBUTIONS,
    KeySet,
    generate_distribution,
    generate_keys,
)
from repro.workloads.lookups import (
    hit_miss_lookups,
    range_lookups,
    uniform_lookups,
    zipf_lookups,
)
from repro.workloads.adversarial import (
    TenantSpec,
    multi_tenant_stream,
    range_hammer_stream,
    shifting_hotspot_stream,
)
from repro.workloads.failures import failure_schedule
from repro.workloads.requests import RequestStream, zipf_request_stream
from repro.workloads.updates import UpdateWave, update_waves

__all__ = [
    "RequestStream",
    "TenantSpec",
    "failure_schedule",
    "multi_tenant_stream",
    "range_hammer_stream",
    "shifting_hotspot_stream",
    "zipf_request_stream",
    "KeySet",
    "generate_keys",
    "generate_distribution",
    "DISTRIBUTIONS",
    "uniform_lookups",
    "zipf_lookups",
    "hit_miss_lookups",
    "range_lookups",
    "UpdateWave",
    "update_waves",
]
