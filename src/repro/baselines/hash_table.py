"""HT: GPU-resident open-addressing hash table with cooperative probing.

Modelled after warpcore: a power-of-two slot array probed linearly by a
cooperative group.  The recommended target load factor is 80% for read-mostly
workloads and 40% when updates are expected, as used in the paper.  Hash
tables answer point lookups extremely fast but support no range lookups,
which is why the paper treats HT as the upper bound for point-lookup
throughput rather than a direct competitor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import GpuIndex, LookupResult, UpdateResult
from repro.gpu.cost_model import UNCOALESCED_ACCESS_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint

#: Multiplicative constant of the 64-bit mix hash (splitmix64 finaliser).
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


_UINT64_MASK = (1 << 64) - 1


def _mix_hash(key: int) -> int:
    """Splitmix64 finaliser, a good avalanche hash for integer keys."""
    value = int(key) & _UINT64_MASK
    value ^= value >> 30
    value = (value * int(_MIX_1)) & _UINT64_MASK
    value ^= value >> 27
    value = (value * int(_MIX_2)) & _UINT64_MASK
    value ^= value >> 31
    return value


class HashTableIndex(GpuIndex):
    """Open-addressing hash table with linear (cooperative) probing (HT)."""

    name = "HT"
    supports_point = True
    supports_range = False
    supports_64bit = True
    supports_updates = True
    supports_bulk_load = False
    memory_class = "med"

    #: Slot states.
    _EMPTY = 0
    _OCCUPIED = 1
    _TOMBSTONE = 2

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 64,
        load_factor: float = 0.8,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        if not 0.0 < load_factor < 1.0:
            raise ValueError("load_factor must be in (0, 1)")
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        self.load_factor = load_factor
        self._key_dtype = np.uint32 if key_bits == 32 else np.uint64

        keys = np.asarray(keys, dtype=self._key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self._allocate(self._capacity_for(keys.shape[0]))
        total_probes = self._insert_all(keys, row_ids)
        self.build_stats = [
            KernelStats(
                name="ht.build",
                threads=int(keys.shape[0]),
                bytes_read=int(keys.shape[0]) * (self.key_bytes + 4),
                bytes_written=total_probes * self._slot_bytes,
                compute_ops=total_probes * 2,
                launches=1,
            )
        ]

    # ------------------------------------------------------------- internals

    @property
    def _slot_bytes(self) -> int:
        """Bytes per slot: key plus aggregated value."""
        return self.key_bytes + 8

    @property
    def _probe_bytes(self) -> int:
        """DRAM traffic per probe: at least one memory sector."""
        return max(self._slot_bytes, UNCOALESCED_ACCESS_BYTES)

    def _capacity_for(self, num_keys: int) -> int:
        """Smallest power of two giving at most the target load factor."""
        needed = max(8, int(np.ceil(num_keys / self.load_factor)))
        capacity = 1
        while capacity < needed:
            capacity <<= 1
        return capacity

    def _allocate(self, capacity: int) -> None:
        self.capacity = capacity
        self._slot_keys = np.zeros(capacity, dtype=self._key_dtype)
        self._slot_agg = np.zeros(capacity, dtype=np.int64)
        self._slot_count = np.zeros(capacity, dtype=np.int64)
        self._slot_state = np.full(capacity, self._EMPTY, dtype=np.int8)
        self._occupied = 0

    def _probe_insert(self, key: int, row_id_sum: int, count: int) -> int:
        """Insert (or merge into) a slot; returns the number of probes."""
        mask = self.capacity - 1
        slot = _mix_hash(key) & mask
        probes = 0
        first_tombstone = -1
        while True:
            probes += 1
            state = self._slot_state[slot]
            if state == self._OCCUPIED and int(self._slot_keys[slot]) == key:
                self._slot_agg[slot] += row_id_sum
                self._slot_count[slot] += count
                return probes
            if state == self._EMPTY:
                target = first_tombstone if first_tombstone >= 0 else slot
                self._slot_keys[target] = key
                self._slot_agg[target] = row_id_sum
                self._slot_count[target] = count
                self._slot_state[target] = self._OCCUPIED
                self._occupied += 1
                return probes
            if state == self._TOMBSTONE and first_tombstone < 0:
                first_tombstone = slot
            slot = (slot + 1) & mask

    def _insert_all(self, keys: np.ndarray, row_ids: np.ndarray) -> int:
        """Insert a batch, aggregating duplicate keys, and return total probes."""
        if keys.shape[0] == 0:
            return 0
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_row_ids = row_ids[order].astype(np.int64)
        unique_keys, start_positions, counts = np.unique(
            sorted_keys, return_index=True, return_counts=True
        )
        prefix = np.concatenate([[0], np.cumsum(sorted_row_ids)])
        total_probes = 0
        for position, key in enumerate(unique_keys):
            start = int(start_positions[position])
            count = int(counts[position])
            row_id_sum = int(prefix[start + count] - prefix[start])
            total_probes += self._probe_insert(int(key), row_id_sum, count)
        return total_probes

    def _maybe_grow(self, additional: int) -> None:
        """Grow and rehash when the target load factor would be exceeded."""
        if (self._occupied + additional) / self.capacity <= self.load_factor:
            return
        old_keys = self._slot_keys[self._slot_state == self._OCCUPIED].copy()
        old_agg = self._slot_agg[self._slot_state == self._OCCUPIED].copy()
        old_count = self._slot_count[self._slot_state == self._OCCUPIED].copy()
        self._allocate(self._capacity_for(self._occupied + additional))
        for key, agg, count in zip(old_keys, old_agg, old_count):
            self._probe_insert(int(key), int(agg), int(count))

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=self._key_dtype)
        num_lookups = int(keys.shape[0])
        row_agg = np.full(num_lookups, -1, dtype=np.int64)
        match_counts = np.zeros(num_lookups, dtype=np.int64)

        mask = self.capacity - 1
        total_probes = 0
        for position, key in enumerate(keys):
            key_value = int(key)
            slot = _mix_hash(key_value) & mask
            while True:
                total_probes += 1
                state = self._slot_state[slot]
                if state == self._EMPTY:
                    break
                if state == self._OCCUPIED and int(self._slot_keys[slot]) == key_value:
                    row_agg[position] = int(self._slot_agg[slot])
                    match_counts[position] = int(self._slot_count[slot])
                    break
                slot = (slot + 1) & mask

        stats = KernelStats(
            name="ht.point_lookup",
            threads=num_lookups,
            bytes_read=total_probes * self._probe_bytes + num_lookups * self.key_bytes,
            bytes_written=num_lookups * 8,
            compute_ops=total_probes * 2 + num_lookups * 4,
            divergence=1.1,
            launches=1,
        )
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(keys)
        )
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """In-place inserts and tombstone deletes (no rebuild needed)."""
        stats = KernelStats(name="ht.update", launches=1)
        deleted = 0
        mask = self.capacity - 1

        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=self._key_dtype)
            probes = 0
            for key in delete_keys:
                key_value = int(key)
                slot = _mix_hash(key_value) & mask
                while True:
                    probes += 1
                    state = self._slot_state[slot]
                    if state == self._EMPTY:
                        break
                    if state == self._OCCUPIED and int(self._slot_keys[slot]) == key_value:
                        if self._slot_count[slot] > 1:
                            self._slot_count[slot] -= 1
                        else:
                            self._slot_state[slot] = self._TOMBSTONE
                            self._occupied -= 1
                        deleted += 1
                        break
                    slot = (slot + 1) & mask
            stats.threads = max(stats.threads, int(delete_keys.shape[0]))
            stats.bytes_read += probes * self._slot_bytes
            stats.bytes_written += deleted * self._slot_bytes
            stats.compute_ops += probes * 2
            mask = self.capacity - 1

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_row_ids is None:
                insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
            insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
            self._maybe_grow(int(np.unique(insert_keys).shape[0]))
            probes = self._insert_all(insert_keys, insert_row_ids)
            inserted = int(insert_keys.shape[0])
            stats.threads = max(stats.threads, inserted)
            stats.bytes_read += inserted * (self.key_bytes + 4)
            stats.bytes_written += probes * self._slot_bytes
            stats.compute_ops += probes * 2

        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=False)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("slot_array", self.capacity * self._slot_bytes)
        return footprint
