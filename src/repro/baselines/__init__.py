"""Baseline GPU-resident indexes from the paper's evaluation (Table I).

* :class:`~repro.baselines.rx.RXIndex` — the fine-granular raytraced index
  RTIndeX (one triangle per key),
* :class:`~repro.baselines.sorted_array.SortedArrayIndex` — SA, binary search
  over a sorted array,
* :class:`~repro.baselines.btree.BPlusTreeIndex` — B+, a GPU B+-tree with
  cooperative 16-thread traversal (32-bit keys only),
* :class:`~repro.baselines.hash_table.HashTableIndex` — HT, an open-addressing
  hash table with cooperative probing (no range lookups),
* :class:`~repro.baselines.rtscan.RTScanIndex` — RTScan (RTc1), the
  ray-parallel range-scan competitor, and
* :class:`~repro.baselines.fullscan.FullScanIndex` — a full scan-and-filter.
"""

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UnsupportedOperation,
    UpdateResult,
)
from repro.baselines.sorted_array import SortedArrayIndex
from repro.baselines.fullscan import FullScanIndex
from repro.baselines.hash_table import HashTableIndex
from repro.baselines.btree import BPlusTreeIndex
from repro.baselines.rx import RXIndex
from repro.baselines.rtscan import RTScanIndex

__all__ = [
    "GpuIndex",
    "LookupResult",
    "RangeLookupResult",
    "UpdateResult",
    "UnsupportedOperation",
    "SortedArrayIndex",
    "FullScanIndex",
    "HashTableIndex",
    "BPlusTreeIndex",
    "RXIndex",
    "RTScanIndex",
]
