"""Common interface and result types for all GPU-resident indexes.

Every index (the baselines as well as cgRX/cgRXu) implements
:class:`GpuIndex`: it is bulk-loaded from a key-rowID array, answers batched
point and range lookups, optionally supports batched updates, and reports its
permanent device memory footprint.  All operations return, next to the actual
result values, a :class:`~repro.gpu.kernels.KernelStats` record describing the
work performed, which the benchmark harness converts into simulated time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Sequence

import numpy as np

from repro.gpu.cost_model import CostModel
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint


class UnsupportedOperation(RuntimeError):
    """Raised when an index does not support the requested operation."""


@dataclass
class LookupResult:
    """Result of a batch of point lookups."""

    #: Aggregated rowID per lookup (sum over duplicates), -1 for a miss.
    row_ids: np.ndarray
    #: Number of matching entries per lookup (0 for a miss).
    match_counts: np.ndarray
    #: Work performed by the batch.
    stats: KernelStats

    @property
    def hits(self) -> int:
        """Number of lookups that found at least one match."""
        return int((self.match_counts > 0).sum())

    @property
    def num_lookups(self) -> int:
        return int(self.row_ids.shape[0])


@dataclass
class RangeLookupResult:
    """Result of a batch of range lookups."""

    #: Matching rowIDs for each range lookup.
    row_ids: List[np.ndarray]
    #: Work performed by the batch.
    stats: KernelStats

    @property
    def total_matches(self) -> int:
        """Total number of retrieved entries across all lookups."""
        return int(sum(r.shape[0] for r in self.row_ids))

    @property
    def num_lookups(self) -> int:
        return len(self.row_ids)


@dataclass
class UpdateResult:
    """Result of applying a batch of insertions and deletions."""

    #: Number of keys inserted.
    inserted: int
    #: Number of keys deleted.
    deleted: int
    #: Work performed (sort + apply, or a full rebuild).
    stats: KernelStats
    #: True when the index answered the update by rebuilding from scratch.
    rebuilt: bool = False


class GpuIndex(ABC):
    """Abstract base class of every simulated GPU-resident index."""

    #: Display name used in benchmark tables, e.g. ``"cgRX (32)"``.
    name: str = "index"

    #: Feature flags mirrored from Table I of the paper.
    supports_point: ClassVar[bool] = True
    supports_range: ClassVar[bool] = True
    supports_64bit: ClassVar[bool] = True
    supports_updates: ClassVar[bool] = False
    supports_bulk_load: ClassVar[bool] = True
    #: Qualitative memory class from Table I (``"low"``, ``"med"``, ``"high"``).
    memory_class: ClassVar[str] = "med"

    def __init__(self, device: GpuDevice = RTX_4090) -> None:
        self.device = device
        self.cost_model = CostModel(device)
        #: Kernel records of the bulk-load phase (sorting, triangle
        #: generation, acceleration-structure build, ...).
        self.build_stats: List[KernelStats] = []

    # ----------------------------------------------------------------- builds

    @property
    def build_time_ms(self) -> float:
        """Simulated time of the bulk load."""
        return self.cost_model.total_time_ms(self.build_stats)

    # ---------------------------------------------------------------- lookups

    @abstractmethod
    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        """Answer a batch of point lookups (one simulated thread per lookup)."""

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        """Answer a batch of range lookups ``[low, high]`` (inclusive bounds)."""
        raise UnsupportedOperation(f"{self.name} does not support range lookups")

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Apply a batch of insertions and deletions."""
        raise UnsupportedOperation(f"{self.name} does not support updates")

    # ----------------------------------------------------------------- memory

    @abstractmethod
    def memory_footprint(self) -> MemoryFootprint:
        """Permanent device memory footprint of the index."""

    # ------------------------------------------------------------ maintenance

    def degradation_score(self) -> float:
        """How far lookup performance has drifted from the freshly built state.

        0.0 means "as good as a fresh bulk load".  Structures that degrade
        under updates (e.g. cgRXu's growing node chains) override this; the
        serving layer's maintenance worker rebuilds a shard once its score
        crosses the configured threshold.
        """
        return 0.0

    def export_entries(self) -> "tuple[np.ndarray, np.ndarray]":
        """Dump the current (key, rowID) entries, sorted by key.

        Used by the serving layer to snapshot a natively-updated shard so a
        later rebuild reproduces the live index exactly (including the
        tie-order of duplicate keys).  Optional: index types that do not
        support it fall back to the router's independently tracked arrays.
        """
        raise UnsupportedOperation(f"{self.name} does not support entry export")

    # ------------------------------------------------------------ conveniences

    def point_lookup(self, key: int) -> LookupResult:
        """Convenience wrapper: a batch of size one."""
        return self.point_lookup_batch(np.asarray([key]))

    def range_lookup(self, low: int, high: int) -> RangeLookupResult:
        """Convenience wrapper: a single range lookup."""
        return self.range_lookup_batch(np.asarray([low]), np.asarray([high]))

    def lookup_time_ms(self, result: "LookupResult | RangeLookupResult") -> float:
        """Simulated time of a lookup batch on this index's device."""
        return self.cost_model.kernel_time_ms(result.stats)

    def throughput_per_footprint(self, result: LookupResult) -> float:
        """The paper's headline metric: lookups per second per footprint byte."""
        time_ms = self.lookup_time_ms(result)
        footprint = self.memory_footprint().total_bytes
        if time_ms <= 0.0 or footprint <= 0:
            return float("inf")
        return result.num_lookups / (time_ms / 1e3) / footprint

    # -------------------------------------------------------------- utilities

    @staticmethod
    def _as_key_array(keys: Sequence[int], dtype=np.uint64) -> np.ndarray:
        """Normalise a key sequence to a numpy array of the index's key dtype."""
        return np.asarray(keys, dtype=dtype)

    def _unique_fraction(self, keys: np.ndarray) -> float:
        """Fraction of distinct keys in a lookup batch (drives cache modelling)."""
        if keys.size == 0:
            return 1.0
        return float(np.unique(keys).size) / float(keys.size)

    @classmethod
    def feature_row(cls) -> dict:
        """Feature-matrix row for Table I."""
        return {
            "index": cls.name,
            "point": cls.supports_point,
            "range": cls.supports_range,
            "memory": cls.memory_class,
            "64bit": cls.supports_64bit,
            "bulk_load": cls.supports_bulk_load,
            "updates": cls.supports_updates,
        }


def delete_one_per_key(
    keys: np.ndarray,
    row_ids: np.ndarray,
    delete_keys: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, int]":
    """Remove one entry per delete-key instance from a key/rowID column.

    The shared delete semantics of the update paths: each instance of a key
    in ``delete_keys`` removes at most one matching entry, earliest position
    first (resolved through a stable sorted view, so no per-entry Python
    loop).  Relative order of the surviving entries is preserved.  Returns
    ``(keys, row_ids, deleted)``.
    """
    if delete_keys.size == 0 or keys.size == 0:
        return keys, row_ids, 0
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    unique_deletes, delete_counts = np.unique(delete_keys, return_counts=True)
    left = np.searchsorted(sorted_keys, unique_deletes, side="left")
    right = np.searchsorted(sorted_keys, unique_deletes, side="right")
    take = np.minimum(delete_counts, right - left)
    keep = np.ones(keys.shape[0], dtype=bool)
    for start, count in zip(left, take):
        keep[order[start : start + count]] = False
    return keys[keep], row_ids[keep], int(take.sum())


def cancel_opposing_updates(
    insert_keys: np.ndarray,
    insert_row_ids: np.ndarray,
    delete_keys: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Cancel keys appearing in both halves of an update batch, one-for-one.

    cgRXu's batch semantics (Section IV): each delete instance cancels one
    matching insert (earliest in sorted order) instead of both being applied.
    Shared by :class:`~repro.core.updatable.CgRXuIndex` and the serving
    layer's shard router, which promotes these semantics deployment-wide.
    """
    if insert_keys.size == 0 or delete_keys.size == 0:
        return insert_keys, insert_row_ids, delete_keys
    order = np.argsort(insert_keys, kind="stable")
    sorted_inserts = insert_keys[order]
    unique_deletes, delete_counts = np.unique(delete_keys, return_counts=True)
    left = np.searchsorted(sorted_inserts, unique_deletes, side="left")
    right = np.searchsorted(sorted_inserts, unique_deletes, side="right")
    cancel = np.minimum(delete_counts, right - left)
    keep_inserts = np.ones(insert_keys.shape[0], dtype=bool)
    keep_deletes = np.ones(delete_keys.shape[0], dtype=bool)
    for key, start, count in zip(unique_deletes, left, cancel):
        if count:
            keep_inserts[order[start : start + count]] = False
            keep_deletes[np.where(delete_keys == key)[0][:count]] = False
    return (
        insert_keys[keep_inserts],
        insert_row_ids[keep_inserts],
        delete_keys[keep_deletes],
    )


def sorted_lookup_results(
    sorted_keys: np.ndarray,
    rowid_prefix: np.ndarray,
    lookup_keys: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Aggregate duplicate-aware point-lookup results over a sorted key array.

    ``rowid_prefix`` is ``concatenate([[0], cumsum(row_ids)])`` of the rowIDs
    aligned with ``sorted_keys``.  Returns ``(row_aggregates, match_counts)``
    where misses carry an aggregate of -1 and a count of 0.  Shared by the
    sorted-array, B+-tree and full-scan baselines.
    """
    left = np.searchsorted(sorted_keys, lookup_keys, side="left")
    right = np.searchsorted(sorted_keys, lookup_keys, side="right")
    hit = left < right
    row_agg = np.where(hit, rowid_prefix[right] - rowid_prefix[left], -1).astype(np.int64)
    match_counts = (right - left).astype(np.int64)
    return row_agg, match_counts
