"""RTScan (RTc1): the ray-per-position range-scan competitor.

RTScan parallelises a *single* range lookup by firing one ray per candidate
position of the range concurrently; the number of rays therefore grows with
the width of the range, not with the number of qualifying keys.  It was not
designed for large *batches* of range lookups: even with the paper's
extension that executes 32 range lookups concurrently, a batch of tens of
thousands of lookups is processed in small waves, which leaves the GPU
underutilised and makes RTScan orders of magnitude slower than cgRX (and even
slower than a full scan) in Figure 14.

RTScan does not support point lookups out of the box, so
:meth:`point_lookup_batch` raises :class:`UnsupportedOperation`.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UnsupportedOperation,
)
from repro.core.key_mapping import KeyMapping
from repro.gpu.accel import accel_build_stats, triangle_generation_stats
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.cost_model import RT_NODE_RESIDUAL_BYTES, RT_TRIANGLE_RESIDUAL_BYTES
from repro.gpu.sort import device_radix_sort
from repro.rtx.bvh import BVH_NODE_BYTES
from repro.rtx.geometry import TRIANGLE_BYTES

#: Number of range lookups executed concurrently (the batching extension the
#: paper added for a fair comparison).
CONCURRENT_LOOKUPS = 32


class RTScanIndex(GpuIndex):
    """RTScan (RTc1): hardware-raytraced scans, one ray per candidate position."""

    name = "RTScan (RTc1)"
    supports_point = False
    supports_range = True
    supports_64bit = False  # "limited" in Table I; we restrict it to 32-bit keys.
    supports_updates = False
    supports_bulk_load = False  # Table I: bulk loading happens on the CPU.
    memory_class = "high"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 32,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        if key_bits != 32:
            raise ValueError("the RTScan baseline supports 32-bit keys only")
        self.key_bits = key_bits
        self.key_bytes = 4
        self.mapping = KeyMapping.for_key_bits(32, scaled=True)

        keys = np.asarray(keys, dtype=np.uint32)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        # RTScan also represents keys as primitives in an RT scene; we account
        # for the structure analytically (triangle buffer + BVH) instead of
        # materialising it, because its lookups never return early and their
        # cost is a simple function of the range width.
        self.num_keys = int(keys.shape[0])
        self._triangle_bytes = self.num_keys * TRIANGLE_BYTES
        self._bvh_bytes = self.num_keys * (BVH_NODE_BYTES // 2 + 4)
        self._bvh_depth = max(1, int(math.ceil(math.log2(self.num_keys + 1))))

        self.keys, self.row_ids, sort_stats = device_radix_sort(keys, row_ids)
        self.build_stats = [
            sort_stats,
            triangle_generation_stats(self.num_keys, self.num_keys),
            accel_build_stats(self.num_keys, self._bvh_bytes),
        ]

    def __len__(self) -> int:
        return self.num_keys

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        raise UnsupportedOperation("RTScan (RTc1) does not support point lookups")

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=np.uint32)
        highs = np.asarray(highs, dtype=np.uint32)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        first = np.searchsorted(self.keys, lows, side="left")
        stop = np.searchsorted(self.keys, highs, side="right")
        row_ids: List[np.ndarray] = [
            self.row_ids[int(first[i]) : int(stop[i])].copy() for i in range(lows.shape[0])
        ]

        num_lookups = int(lows.shape[0])
        # One ray per candidate position of each range, regardless of how many
        # keys actually qualify.
        widths = (highs.astype(np.int64) - lows.astype(np.int64) + 1).clip(min=1)
        total_rays = int(widths.sum())
        average_width = float(widths.mean()) if num_lookups else 1.0
        # RTScan materialises its result as a bitmap over the whole table; the
        # bitmap is cleared and compacted once per range lookup.
        bitmap_bytes = num_lookups * 2 * (self.num_keys // 8)

        stats = KernelStats(
            name="rtscan.range_lookup",
            # Only 32 lookups run concurrently, so the resident parallelism is
            # 32 x the per-lookup ray count, and the batch needs one launch
            # wave per 32 lookups.
            threads=int(CONCURRENT_LOOKUPS * average_width),
            launches=max(1, -(-num_lookups // CONCURRENT_LOOKUPS)),
            rays_cast=total_rays,
            bvh_node_visits=total_rays * self._bvh_depth,
            triangle_tests=total_rays,
            bytes_read=total_rays
            * (self._bvh_depth * RT_NODE_RESIDUAL_BYTES + RT_TRIANGLE_RESIDUAL_BYTES)
            + bitmap_bytes,
            bytes_written=int((stop - first).sum()) * 4 + bitmap_bytes,
            compute_ops=total_rays,
            divergence=1.3,
        )
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("triangle_buffer", self._triangle_bytes)
        footprint.add("bvh", self._bvh_bytes)
        footprint.add("key_rowid_array", self.num_keys * (self.key_bytes + 4))
        return footprint
