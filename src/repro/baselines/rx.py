"""RX: the fine-granular raytraced index RTIndeX (the paper's predecessor).

Every key is materialised as its own triangle (36 bytes), and the primitive
index of the triangle identifies the key's rowID.  Point lookups fire one ray
limited to the key's grid cell; range lookups fire one ray per grid row
covered by the range and must intersection-test every qualifying triangle,
which is what makes them slow.  Updates either rebuild the whole structure or
refit the BVH in place — the latter is cheap but inflates bounding volumes
and degrades subsequent lookups (Figure 1c), which is exactly the behaviour
cgRXu is designed to avoid.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
)
from repro.core.config import validate_engine
from repro.core.key_mapping import KeyMapping
from repro.gpu.accel import accel_build_stats, accel_refit_stats, triangle_generation_stats
from repro.gpu.cost_model import RT_NODE_RESIDUAL_BYTES, RT_TRIANGLE_RESIDUAL_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.simt import divergence_factor
from repro.gpu.sort import radix_sort_stats
from repro.rtx.bvh import BvhBuildConfig
from repro.rtx.geometry import TRIANGLE_BYTES
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.traversal import RayStats

#: Number of per-lookup work samples used for the divergence estimate.
_DIVERGENCE_SAMPLE = 4096

#: Safety cap on the number of per-row rays a single range lookup may fire in
#: the simulation; ranges spanning more rows fall back to an analytic cost
#: estimate (documented in DESIGN.md).
_MAX_RANGE_ROWS = 4096


class RXIndex(GpuIndex):
    """Fine-granular raytraced index: one triangle per key."""

    name = "RX"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = False
    supports_bulk_load = True
    memory_class = "high"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 64,
        scaled_mapping: bool = True,
        bvh_leaf_size: int = 4,
        device: GpuDevice = RTX_4090,
        engine: str = "vector",
    ) -> None:
        super().__init__(device)
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        #: Batch execution engine for point lookups (results are identical).
        self.engine = validate_engine(engine)
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        self._key_dtype = np.uint32 if key_bits == 32 else np.uint64
        self.mapping = KeyMapping.for_key_bits(key_bits, scaled=scaled_mapping)
        self.bvh_leaf_size = bvh_leaf_size

        keys = np.asarray(keys, dtype=self._key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)
        self._build(keys, row_ids)

    # ------------------------------------------------------------------ build

    def _build(self, keys: np.ndarray, row_ids: np.ndarray) -> None:
        """Materialise one triangle per key and build the BVH over all of them."""
        self.keys = keys
        self.row_ids = row_ids
        self.pipeline = RaytracingPipeline(
            bvh_config=BvhBuildConfig(max_leaf_size=self.bvh_leaf_size)
        )
        buffer = self.pipeline.vertex_buffer
        buffer.reserve(keys.shape[0])

        xs = self.mapping.x_of(keys).astype(np.float64)
        ys = self.mapping.y_of(keys).astype(np.float64) * self.mapping.y_scale
        zs = self.mapping.z_of(keys).astype(np.float64) * self.mapping.z_scale
        buffer.write_key_triangles(np.arange(keys.shape[0], dtype=np.int64), xs, ys, zs)
        self.pipeline.build_acceleration_structure()

        num_keys = int(keys.shape[0])
        self.build_stats = [
            triangle_generation_stats(num_keys, num_keys),
            accel_build_stats(num_keys, self.pipeline.bvh.memory_footprint_bytes()),
        ]
        # Sorted helper arrays for computing range-lookup results and the
        # miss-handling fallback (RX itself does not need the sort on device).
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._sorted_row_ids = row_ids[order]

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=self._key_dtype)
        num_lookups = int(keys.shape[0])
        row_agg = np.full(num_lookups, -1, dtype=np.int64)
        match_counts = np.zeros(num_lookups, dtype=np.int64)

        ray_stats = RayStats()
        work_sample: List[int] = []
        sample_every = max(1, num_lookups // _DIVERGENCE_SAMPLE)
        previous_nodes = 0

        xs = self.mapping.x_of(keys).astype(np.int64)
        ys = self.mapping.y_of(keys).astype(np.int64)
        zs = self.mapping.z_of(keys).astype(np.int64)

        if self.engine != "scalar":
            # One wavefront launch for the whole batch: per-ray hits and node
            # visits come back as arrays, identical to the scalar loop.  RX
            # lookups fire all-hits rays, which the compiled megakernel does
            # not cover; ``engine="compiled"`` therefore runs this same path.
            origins = np.stack(
                [
                    xs.astype(np.float64) - 0.5,
                    ys.astype(np.float64) * self.mapping.y_scale,
                    zs.astype(np.float64) * self.mapping.z_scale,
                ],
                axis=1,
            )
            batch = self.pipeline.cast_axis_all_batch(
                0, origins, np.full(num_lookups, 1.0), stats=ray_stats
            )
            if batch.ray.size:
                aggregates = np.zeros(num_lookups, dtype=np.int64)
                np.add.at(
                    aggregates,
                    batch.ray,
                    self.row_ids[batch.primitive_index].astype(np.int64),
                )
                match_counts = batch.hit_counts.astype(np.int64)
                row_agg = np.where(match_counts > 0, aggregates, -1)
            work_sample = [int(nodes) for nodes in batch.nodes_visited[::sample_every]]
            stats = self._ray_lookup_stats(
                "rx.point_lookup", num_lookups, ray_stats, work_sample, keys
            )
            return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

        for position in range(num_lookups):
            origin = (
                float(xs[position]) - 0.5,
                float(ys[position]) * self.mapping.y_scale,
                float(zs[position]) * self.mapping.z_scale,
            )
            # The ray is limited to a single grid cell so neighbouring keys
            # cannot produce false positives.
            hits = self.pipeline.cast_axis_all(0, origin, tmax=1.0, stats=ray_stats)
            if hits:
                row_agg[position] = sum(
                    int(self.row_ids[hit.primitive_index]) for hit in hits
                )
                match_counts[position] = len(hits)
            if position % sample_every == 0:
                work_sample.append(ray_stats.nodes_visited - previous_nodes)
            previous_nodes = ray_stats.nodes_visited

        stats = self._ray_lookup_stats(
            "rx.point_lookup", num_lookups, ray_stats, work_sample, keys
        )
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=self._key_dtype)
        highs = np.asarray(highs, dtype=self._key_dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        ray_stats = RayStats()
        results: List[np.ndarray] = []
        analytic_extra_rays = 0

        for low, high in zip(lows, highs):
            rows = self._rows_covered(int(low), int(high))
            if rows is None:
                # The range spans too many rows to simulate ray by ray; fall
                # back to an analytic estimate of the ray work while the
                # result values come from the sorted helper arrays.
                results.append(self._sorted_range_result(int(low), int(high)))
                analytic_extra_rays += self._row_span(int(low), int(high))
                continue
            hits: List[int] = []
            for row_y, row_z, x_start, x_end in rows:
                origin = (
                    float(x_start) - 0.5,
                    float(row_y) * self.mapping.y_scale,
                    float(row_z) * self.mapping.z_scale,
                )
                tmax = float(x_end - x_start) + 1.0
                for hit in self.pipeline.cast_axis_all(0, origin, tmax=tmax, stats=ray_stats):
                    hits.append(int(self.row_ids[hit.primitive_index]))
            results.append(np.asarray(hits, dtype=np.uint32))

        stats = self._ray_lookup_stats(
            "rx.range_lookup", int(lows.shape[0]), ray_stats, [], lows
        )
        if analytic_extra_rays:
            depth = max(1, self.pipeline.bvh.depth())
            stats.rays_cast += analytic_extra_rays
            stats.bvh_node_visits += analytic_extra_rays * depth
            stats.triangle_tests += analytic_extra_rays * self.bvh_leaf_size
            stats.bytes_read += analytic_extra_rays * depth * RT_NODE_RESIDUAL_BYTES
        return RangeLookupResult(row_ids=results, stats=stats)

    def _row_span(self, low: int, high: int) -> int:
        """Number of grid rows between the positions of ``low`` and ``high`` (inclusive)."""
        low_row = int(self.mapping.yz_of(np.asarray(low, dtype=self._key_dtype)))
        high_row = int(self.mapping.yz_of(np.asarray(high, dtype=self._key_dtype)))
        return high_row - low_row + 1

    def _rows_covered(self, low: int, high: int) -> "Optional[List[Tuple[int, int, int, int]]]":
        """Grid rows a range lookup must fire a ray through.

        Returns tuples ``(row_y, row_z, x_start, x_end)``; intermediate rows
        are fully covered, the first and last row are partial.  Returns
        ``None`` when the range spans more than ``_MAX_RANGE_ROWS`` rows and
        the caller should use the analytic cost estimate instead.
        """
        mapping = self.mapping
        low_x, low_y, low_z = (int(v) for v in mapping.key_to_grid(low))
        high_x, high_y, high_z = (int(v) for v in mapping.key_to_grid(high))
        low_row = int(mapping.yz_of(np.asarray(low, dtype=self._key_dtype)))
        high_row = int(mapping.yz_of(np.asarray(high, dtype=self._key_dtype)))

        if low_row == high_row:
            return [(low_y, low_z, low_x, high_x)]
        if high_row - low_row - 1 > _MAX_RANGE_ROWS:
            return None
        rows: List[Tuple[int, int, int, int]] = [(low_y, low_z, low_x, mapping.x_max)]
        for row in range(low_row + 1, high_row):
            row_key = np.uint64(row) << np.uint64(mapping.x_bits)
            row_y = int(mapping.y_of(row_key))
            row_z = int(mapping.z_of(row_key))
            rows.append((row_y, row_z, 0, mapping.x_max))
        rows.append((high_y, high_z, 0, high_x))
        return rows

    def _sorted_range_result(self, low: int, high: int) -> np.ndarray:
        """Result values of a range lookup via the sorted helper arrays."""
        first = int(np.searchsorted(self._sorted_keys, np.asarray(low, dtype=self._key_dtype), "left"))
        stop = int(np.searchsorted(self._sorted_keys, np.asarray(high, dtype=self._key_dtype), "right"))
        return self._sorted_row_ids[first:stop].copy()

    def _ray_lookup_stats(
        self,
        name: str,
        num_lookups: int,
        ray_stats: RayStats,
        work_sample: List[int],
        keys: np.ndarray,
    ) -> KernelStats:
        stats = KernelStats(name=name, threads=num_lookups, launches=1)
        stats.rays_cast = ray_stats.rays_cast
        stats.bvh_node_visits = ray_stats.nodes_visited
        stats.triangle_tests = ray_stats.triangle_tests
        stats.bytes_read += ray_stats.nodes_visited * RT_NODE_RESIDUAL_BYTES
        stats.bytes_read += ray_stats.triangle_tests * RT_TRIANGLE_RESIDUAL_BYTES
        stats.bytes_read += num_lookups * self.key_bytes
        stats.bytes_written += num_lookups * 8
        stats.divergence = divergence_factor(work_sample) if work_sample else 1.2
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(keys)
        )
        return stats

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Default RX update strategy: rebuild the whole index from scratch."""
        keys = self.keys
        row_ids = self.row_ids

        deleted = 0
        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=self._key_dtype)
            keep = np.ones(keys.shape[0], dtype=bool)
            for target in delete_keys:
                matches = np.nonzero((keys == target) & keep)[0]
                if matches.size:
                    keep[matches[0]] = False
                    deleted += 1
            keys = keys[keep]
            row_ids = row_ids[keep]

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=self._key_dtype)
            if insert_row_ids is None:
                insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
            insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
            keys = np.concatenate([keys, insert_keys])
            row_ids = np.concatenate([row_ids, insert_row_ids])
            inserted = int(insert_keys.shape[0])

        self._build(keys, row_ids)
        rebuild_stats = KernelStats(name="rx.rebuild")
        # Rebuilding also re-sorts nothing (RX keeps insertion order), but the
        # triangle regeneration and the full BVH build dominate anyway.
        for part in self.build_stats:
            rebuild_stats.merge(part)
        return UpdateResult(inserted=inserted, deleted=deleted, stats=rebuild_stats, rebuilt=True)

    def update_batch_refit(
        self,
        insert_keys: np.ndarray,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Refit-based updates: overwrite deleted slots and refit the BVH.

        This is the cheap update path whose side effect Figure 1c documents:
        because the BVH topology is frozen, triangles written to positions far
        from their slot's original neighbourhood inflate the bounding volumes
        and subsequent lookups slow down dramatically.  Requires at least as
        many deletions as insertions (slots are recycled, never added).
        """
        insert_keys = np.asarray(insert_keys, dtype=self._key_dtype)
        if insert_row_ids is None:
            insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
        insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
        delete_keys = (
            np.asarray(delete_keys, dtype=self._key_dtype)
            if delete_keys is not None
            else np.empty(0, dtype=self._key_dtype)
        )
        if insert_keys.shape[0] > delete_keys.shape[0]:
            raise ValueError(
                "refit-based updates can only recycle slots: need at least as many "
                "deletions as insertions (rebuild instead)"
            )

        # Locate one slot per deleted key.
        free_slots: List[int] = []
        used = np.zeros(self.keys.shape[0], dtype=bool)
        for target in delete_keys:
            matches = np.nonzero((self.keys == target) & ~used)[0]
            if matches.size:
                used[matches[0]] = True
                free_slots.append(int(matches[0]))
        deleted = len(free_slots)

        buffer = self.pipeline.vertex_buffer
        inserted = 0
        for slot, key, row_id in zip(free_slots, insert_keys, insert_row_ids):
            x, y, z = self.mapping.key_to_scene(int(key))
            buffer.write_key_triangle(slot, x, y, z)
            self.keys[slot] = key
            self.row_ids[slot] = row_id
            inserted += 1
        # Deleted keys without a replacement keep their triangle but are
        # marked invalid by pointing the slot at an unused grid position.
        for slot in free_slots[inserted:]:
            x, y, z = self.mapping.grid_to_scene(0.0, 0.0, 0.0)
            buffer.write_key_triangle(slot, x, y, z)
            self.row_ids[slot] = np.uint32(0xFFFFFFFF)

        self.pipeline.update_acceleration_structure()
        order = np.argsort(self.keys, kind="stable")
        self._sorted_keys = self.keys[order]
        self._sorted_row_ids = self.row_ids[order]

        stats = KernelStats(name="rx.refit_update", threads=max(1, inserted), launches=2)
        stats.merge(radix_sort_stats(insert_keys.shape[0] + delete_keys.shape[0], self.key_bytes))
        stats.merge(
            accel_refit_stats(
                self.keys.shape[0], self.pipeline.bvh.memory_footprint_bytes()
            )
        )
        stats.bytes_written += inserted * TRIANGLE_BYTES
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=False)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("vertex_buffer", self.pipeline.vertex_buffer.memory_footprint_bytes())
        footprint.add("bvh", self.pipeline.bvh.memory_footprint_bytes())
        return footprint

    def __len__(self) -> int:
        return int(self.keys.shape[0])
