"""FullScan: scan the whole column and filter (the range-lookup strawman).

Included in Figure 14 of the paper as a sanity baseline: every range lookup
reads the entire key column.  Surprisingly it still beats RTScan (RTc1) for
batched range lookups because it at least keeps the GPU busy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    delete_one_per_key,
    sorted_lookup_results,
)
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint


class FullScanIndex(GpuIndex):
    """No index at all: answer every lookup by scanning the full column."""

    name = "FullScan"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = True
    supports_bulk_load = True
    memory_class = "low"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 64,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        key_dtype = np.uint32 if key_bits == 32 else np.uint64

        self.keys = np.asarray(keys, dtype=key_dtype)
        if row_ids is None:
            row_ids = np.arange(self.keys.shape[0], dtype=np.uint32)
        self.row_ids = np.asarray(row_ids, dtype=np.uint32)
        self.build_stats = []
        self._rebuild_sorted_view()

    def _rebuild_sorted_view(self) -> None:
        # Internal sorted view used only to *compute* result values quickly in
        # the simulation; the cost accounting charges a full scan regardless.
        order = np.argsort(self.keys, kind="stable")
        self._sorted_keys = self.keys[order]
        self._sorted_row_ids = self.row_ids[order]
        self._rowid_prefix = np.concatenate(
            [[0], np.cumsum(self._sorted_row_ids.astype(np.int64))]
        )

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def _scan_stats(self, name: str, num_lookups: int, matches_written: int) -> KernelStats:
        """Each lookup reads the entire key column once."""
        return KernelStats(
            name=name,
            threads=max(num_lookups, 1) * 1024,
            bytes_read=num_lookups * len(self) * self.key_bytes,
            bytes_written=matches_written * 4 + num_lookups * 8,
            compute_ops=num_lookups * len(self),
            divergence=1.0,
            launches=1,
        )

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=self.keys.dtype)
        row_agg, match_counts = sorted_lookup_results(
            self._sorted_keys, self._rowid_prefix, keys
        )
        stats = self._scan_stats("fullscan.point_lookup", int(keys.shape[0]), int(match_counts.sum()))
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=self.keys.dtype)
        highs = np.asarray(highs, dtype=self.keys.dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")
        first = np.searchsorted(self._sorted_keys, lows, side="left")
        stop = np.searchsorted(self._sorted_keys, highs, side="right")
        row_ids: List[np.ndarray] = [
            self._sorted_row_ids[int(first[i]) : int(stop[i])].copy()
            for i in range(lows.shape[0])
        ]
        total = int(sum(r.shape[0] for r in row_ids))
        stats = self._scan_stats("fullscan.range_lookup", int(lows.shape[0]), total)
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """Rewrite the column: append inserts, filter one occurrence per delete."""
        keys = self.keys
        row_ids = self.row_ids
        deleted = 0

        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=keys.dtype)
            keys, row_ids, deleted = delete_one_per_key(keys, row_ids, delete_keys)

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=keys.dtype)
            if insert_row_ids is None:
                insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
            keys = np.concatenate([keys, insert_keys])
            row_ids = np.concatenate([row_ids, np.asarray(insert_row_ids, dtype=np.uint32)])
            inserted = int(insert_keys.shape[0])

        old_length = len(self)
        self.keys = keys
        self.row_ids = row_ids
        self._rebuild_sorted_view()
        stats = KernelStats(
            name="fullscan.update",
            threads=max(1, old_length),
            bytes_read=old_length * (self.key_bytes + 4),
            bytes_written=len(self) * (self.key_bytes + 4),
            compute_ops=old_length + inserted,
            launches=1,
        )
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=True)

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("key_rowid_array", len(self) * (self.key_bytes + 4))
        return footprint
