"""SA: the GPU-resident sorted array baseline.

The most space-efficient structure in the comparison: just the sorted
key-rowID array.  Point lookups are binary searches (one thread per lookup),
range lookups are a binary search for the lower bound followed by a
cooperative scan.  Updates require a rebuild, like RX and static cgRX.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    sorted_lookup_results,
)
from repro.gpu.cost_model import UNCOALESCED_ACCESS_BYTES
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.simt import COOPERATIVE_GROUP_SIZE, cooperative_scan_steps
from repro.gpu.sort import device_radix_sort


class SortedArrayIndex(GpuIndex):
    """Sorted array with binary-search lookups (SA in the paper)."""

    name = "SA"
    supports_point = True
    supports_range = True
    supports_64bit = True
    supports_updates = False
    supports_bulk_load = True
    memory_class = "low"

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 64,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        if key_bits not in (32, 64):
            raise ValueError("key_bits must be 32 or 64")
        self.key_bits = key_bits
        self.key_bytes = key_bits // 8
        key_dtype = np.uint32 if key_bits == 32 else np.uint64

        keys = np.asarray(keys, dtype=key_dtype)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self.keys, self.row_ids, sort_stats = device_radix_sort(keys, row_ids)
        self._rowid_prefix = np.concatenate([[0], np.cumsum(self.row_ids.astype(np.int64))])
        self.build_stats = [sort_stats]

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=self.keys.dtype)
        row_agg, match_counts = sorted_lookup_results(self.keys, self._rowid_prefix, keys)

        num_lookups = int(keys.shape[0])
        probes = max(1, int(math.ceil(math.log2(len(self) + 1))))
        duplicates_read = int(np.maximum(match_counts - 1, 0).sum())
        stats = KernelStats(
            name="sa.point_lookup",
            threads=num_lookups,
            # Each binary-search probe is an uncoalesced random access and
            # drags in a full memory sector; the final probe also fetches the
            # rowID, duplicates are scanned.
            bytes_read=num_lookups * (probes * UNCOALESCED_ACCESS_BYTES + 4)
            + duplicates_read * (self.key_bytes + 4),
            bytes_written=num_lookups * 8,
            compute_ops=num_lookups * probes,
            divergence=1.2,
            launches=1,
        )
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(keys)
        )
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=self.keys.dtype)
        highs = np.asarray(highs, dtype=self.keys.dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        first = np.searchsorted(self.keys, lows, side="left")
        stop = np.searchsorted(self.keys, highs, side="right")
        row_ids: List[np.ndarray] = [
            self.row_ids[int(first[i]) : int(stop[i])].copy() for i in range(lows.shape[0])
        ]

        num_lookups = int(lows.shape[0])
        probes = max(1, int(math.ceil(math.log2(len(self) + 1))))
        scanned = int((stop - first).sum())
        scan_steps = sum(
            cooperative_scan_steps(int(stop[i] - first[i])) for i in range(num_lookups)
        )
        stats = KernelStats(
            name="sa.range_lookup",
            threads=num_lookups,
            bytes_read=num_lookups * probes * UNCOALESCED_ACCESS_BYTES
            + scan_steps * COOPERATIVE_GROUP_SIZE * (self.key_bytes + 4),
            bytes_written=scanned * 4,
            compute_ops=num_lookups * probes + scanned,
            divergence=1.2,
            launches=2,
        )
        stats.cache_hit_fraction = self.cost_model.cache_hit_fraction(
            self.memory_footprint().total_bytes, self._unique_fraction(lows)
        )
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """SA is static: updates are answered by rebuilding from scratch."""
        keys = self.keys
        row_ids = self.row_ids

        deleted = 0
        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=keys.dtype)
            keep = np.ones(keys.shape[0], dtype=bool)
            for target in delete_keys:
                position = int(np.searchsorted(keys, target, side="left"))
                while (
                    position < keys.shape[0]
                    and keys[position] == target
                    and not keep[position]
                ):
                    position += 1
                if position < keys.shape[0] and keys[position] == target:
                    keep[position] = False
                    deleted += 1
            keys = keys[keep]
            row_ids = row_ids[keep]

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=keys.dtype)
            if insert_row_ids is None:
                insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
            insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
            keys = np.concatenate([keys, insert_keys])
            row_ids = np.concatenate([row_ids, insert_row_ids])
            inserted = int(insert_keys.shape[0])

        self.keys, self.row_ids, sort_stats = device_radix_sort(keys, row_ids)
        self._rowid_prefix = np.concatenate([[0], np.cumsum(self.row_ids.astype(np.int64))])
        self.build_stats = [sort_stats]
        return UpdateResult(inserted=inserted, deleted=deleted, stats=sort_stats, rebuilt=True)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("key_rowid_array", len(self) * (self.key_bytes + 4))
        return footprint
