"""B+: a GPU-resident B+-tree with cooperative 16-thread node traversal.

Modelled after MVGpuBTree / the Owens-group GPU B-trees used as the B+
baseline in the paper: 128-byte nodes holding up to 16 entries, traversed by
a cooperative group of 16 threads, supporting 32-bit keys only.  Lookups are
insensitive to lookup skew because the execution is bottlenecked by block
synchronisation and divergent branches (the "address divergence unit"
observation in Section VI-E), which we model with a fixed divergence
multiplier and no cache benefit.

Simulation note: the logical content of the tree is kept in a flat sorted
array (plus derived level boundaries) because that is by far the fastest way
to compute *result values* in Python.  The cost accounting, however, follows
the node structure: per-level node reads during traversal, per-leaf-node
reads during range scans, and per-update traversals plus node writes (never
a full rebuild).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.baselines.base import (
    GpuIndex,
    LookupResult,
    RangeLookupResult,
    UpdateResult,
    sorted_lookup_results,
)
from repro.gpu.device import RTX_4090, GpuDevice
from repro.gpu.kernels import KernelStats
from repro.gpu.memory import MemoryFootprint
from repro.gpu.sort import device_radix_sort

#: Bytes per tree node (one cache line, as in MVGpuBTree).
NODE_BYTES = 128
#: Maximum entries per node (16 key-value or key-child pairs of 8 bytes).
NODE_CAPACITY = 16


class BPlusTreeIndex(GpuIndex):
    """GPU B+-tree baseline (32-bit keys only)."""

    name = "B+"
    supports_point = True
    supports_range = True
    supports_64bit = False
    supports_updates = True
    supports_bulk_load = True
    memory_class = "med"

    #: Divergence multiplier modelling the address-divergence bottleneck.
    _DIVERGENCE = 1.8

    def __init__(
        self,
        keys: np.ndarray,
        row_ids: Optional[np.ndarray] = None,
        key_bits: int = 32,
        leaf_fill_factor: float = 0.55,
        device: GpuDevice = RTX_4090,
    ) -> None:
        super().__init__(device)
        if key_bits != 32:
            raise ValueError("the B+ baseline only supports 32-bit keys (as in the paper)")
        if not 0.1 <= leaf_fill_factor <= 1.0:
            raise ValueError("leaf_fill_factor must be in [0.1, 1.0]")
        self.key_bits = key_bits
        self.key_bytes = 4
        self.leaf_fill_factor = leaf_fill_factor

        keys = np.asarray(keys, dtype=np.uint32)
        if row_ids is None:
            row_ids = np.arange(keys.shape[0], dtype=np.uint32)
        row_ids = np.asarray(row_ids, dtype=np.uint32)

        self.keys, self.row_ids, sort_stats = device_radix_sort(keys, row_ids)
        self._refresh_derived()
        self.build_stats = [
            sort_stats,
            KernelStats(
                name="btree.bulk_load",
                threads=self.num_leaf_nodes,
                bytes_read=len(self) * (self.key_bytes + 4),
                bytes_written=self.total_nodes * NODE_BYTES,
                compute_ops=len(self),
                launches=1,
            ),
        ]

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    # ------------------------------------------------------------- structure

    def _refresh_derived(self) -> None:
        """Recompute prefix sums and node counts after the contents changed."""
        self._rowid_prefix = np.concatenate([[0], np.cumsum(self.row_ids.astype(np.int64))])
        self.entries_per_leaf = max(2, int(NODE_CAPACITY * self.leaf_fill_factor))
        self.num_leaf_nodes = max(1, -(-len(self) // self.entries_per_leaf))
        # Internal levels with full fanout over the leaf count.
        internal = 0
        level_nodes = self.num_leaf_nodes
        self.height = 1
        while level_nodes > 1:
            level_nodes = -(-level_nodes // NODE_CAPACITY)
            internal += level_nodes
            self.height += 1
        self.num_internal_nodes = internal

    @property
    def total_nodes(self) -> int:
        """Leaf plus internal nodes."""
        return self.num_leaf_nodes + self.num_internal_nodes

    @property
    def _traversal_bytes(self) -> int:
        """DRAM bytes one lookup's root-to-leaf traversal costs.

        The top three levels of the tree are small enough to stay cache
        resident across a batch; every level below them is an uncoalesced
        random node access charged in full.
        """
        cached_levels = min(3, self.height)
        cold_levels = max(0, self.height - cached_levels)
        return int(cold_levels * NODE_BYTES + cached_levels * NODE_BYTES * 0.2)

    # ---------------------------------------------------------------- lookups

    def point_lookup_batch(self, keys: np.ndarray) -> LookupResult:
        keys = np.asarray(keys, dtype=np.uint32)
        row_agg, match_counts = sorted_lookup_results(self.keys, self._rowid_prefix, keys)

        num_lookups = int(keys.shape[0])
        # Every lookup walks one node per level; the cooperative group reads
        # the whole 128-byte node coalesced and the upper levels hit in cache.
        stats = KernelStats(
            name="btree.point_lookup",
            threads=num_lookups,
            bytes_read=num_lookups * self._traversal_bytes + num_lookups * self.key_bytes,
            bytes_written=num_lookups * 8,
            compute_ops=num_lookups * self.height * NODE_CAPACITY,
            divergence=self._DIVERGENCE,
            launches=1,
        )
        # The address-divergence bottleneck makes B+ insensitive to skew.
        stats.cache_hit_fraction = 0.0
        return LookupResult(row_ids=row_agg, match_counts=match_counts, stats=stats)

    def range_lookup_batch(self, lows: np.ndarray, highs: np.ndarray) -> RangeLookupResult:
        lows = np.asarray(lows, dtype=np.uint32)
        highs = np.asarray(highs, dtype=np.uint32)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must have the same shape")

        first = np.searchsorted(self.keys, lows, side="left")
        stop = np.searchsorted(self.keys, highs, side="right")
        row_ids: List[np.ndarray] = [
            self.row_ids[int(first[i]) : int(stop[i])].copy() for i in range(lows.shape[0])
        ]

        num_lookups = int(lows.shape[0])
        matched = (stop - first).astype(np.int64)
        # A range lookup traverses to the leaf of the lower bound and then
        # scans individual leaf nodes; each touched leaf costs a full node
        # read (this per-node overhead is why cgRX's contiguous scan edges it
        # out at low selectivities).
        leaves_touched = np.maximum(1, -(-matched // self.entries_per_leaf) + 1)
        stats = KernelStats(
            name="btree.range_lookup",
            threads=num_lookups,
            bytes_read=num_lookups * self._traversal_bytes
            + int(leaves_touched.sum()) * NODE_BYTES,
            bytes_written=int(matched.sum()) * 4,
            compute_ops=num_lookups * self.height * NODE_CAPACITY + int(matched.sum()),
            divergence=self._DIVERGENCE,
            launches=1,
        )
        stats.cache_hit_fraction = 0.0
        return RangeLookupResult(row_ids=row_ids, stats=stats)

    # ---------------------------------------------------------------- updates

    def update_batch(
        self,
        insert_keys: Optional[np.ndarray] = None,
        insert_row_ids: Optional[np.ndarray] = None,
        delete_keys: Optional[np.ndarray] = None,
    ) -> UpdateResult:
        """In-place updates: per-key traversal plus leaf modification (no rebuild)."""
        stats = KernelStats(name="btree.update", launches=1)
        deleted = 0
        keys = self.keys
        row_ids = self.row_ids

        if delete_keys is not None and len(delete_keys) > 0:
            delete_keys = np.asarray(delete_keys, dtype=np.uint32)
            keep = np.ones(keys.shape[0], dtype=bool)
            for target in delete_keys:
                position = int(np.searchsorted(keys, target, side="left"))
                while (
                    position < keys.shape[0]
                    and keys[position] == target
                    and not keep[position]
                ):
                    position += 1
                if position < keys.shape[0] and keys[position] == target:
                    keep[position] = False
                    deleted += 1
            keys = keys[keep]
            row_ids = row_ids[keep]
            stats.threads = max(stats.threads, int(delete_keys.shape[0]))
            stats.bytes_read += int(delete_keys.shape[0]) * self.height * NODE_BYTES
            stats.bytes_written += deleted * NODE_BYTES
            stats.compute_ops += int(delete_keys.shape[0]) * self.height * NODE_CAPACITY

        inserted = 0
        if insert_keys is not None and len(insert_keys) > 0:
            insert_keys = np.asarray(insert_keys, dtype=np.uint32)
            if insert_row_ids is None:
                insert_row_ids = np.arange(insert_keys.shape[0], dtype=np.uint32)
            insert_row_ids = np.asarray(insert_row_ids, dtype=np.uint32)
            # np.insert places same-position values in argument order, so an
            # unsorted batch would break the sorted-leaf invariant (found by
            # the differential fuzzer); sort the batch first.
            order = np.argsort(insert_keys, kind="stable")
            insert_keys = insert_keys[order]
            insert_row_ids = insert_row_ids[order]
            positions = np.searchsorted(keys, insert_keys)
            keys = np.insert(keys, positions, insert_keys)
            row_ids = np.insert(row_ids, positions, insert_row_ids)
            inserted = int(insert_keys.shape[0])
            # Roughly one in ``entries_per_leaf`` inserts splits a leaf.
            splits = inserted // max(2, self.entries_per_leaf)
            stats.threads = max(stats.threads, inserted)
            stats.bytes_read += inserted * self.height * NODE_BYTES
            stats.bytes_written += inserted * NODE_BYTES + splits * 2 * NODE_BYTES
            stats.compute_ops += inserted * self.height * NODE_CAPACITY

        stats.divergence = self._DIVERGENCE
        self.keys = keys
        self.row_ids = row_ids
        self._refresh_derived()
        return UpdateResult(inserted=inserted, deleted=deleted, stats=stats, rebuilt=False)

    # ----------------------------------------------------------------- memory

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        footprint.add("leaf_nodes", self.num_leaf_nodes * NODE_BYTES)
        footprint.add("internal_nodes", self.num_internal_nodes * NODE_BYTES)
        return footprint
