"""Packaging for the cgRX reproduction.

Kept as a plain ``setup.py`` so the package installs in offline environments
without the ``wheel``/``build`` toolchain (``pip install -e .`` works from a
bare setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro-cgrx",
    version="1.7.0",
    description=(
        "Software reproduction of cgRX (ICDE 2025): hardware-accelerated "
        "coarse-granular GPU indexing, with vectorized and compiled batch "
        "execution engines and a sharded, replicated serving layer"
    ),
    long_description=(
        "Pure Python/numpy reproduction of 'More Bang For Your Buck(et): "
        "Fast and Space-efficient Hardware-accelerated Coarse-granular "
        "Indexing on GPUs' (conf_icde_HennebergSKB25), including the cgRX/"
        "cgRXu indexes, six evaluation baselines, the paper's experiment "
        "suite, and a serving subsystem (sharding, replication with quorum "
        "writes and failover, request batching, result caching, background "
        "maintenance)."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest"],
        # Optional JIT backend for the compiled hot-path tier; without it the
        # tier falls back to the system C compiler, then to the vector engine.
        "compiled": ["numba"],
    },
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.experiments:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
