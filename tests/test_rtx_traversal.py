"""Tests for BVH traversal (general and fast axis-aligned paths)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtx.bvh import BvhBuildConfig, build_bvh
from repro.rtx.geometry import Ray
from repro.rtx.scene import TriangleScene, VertexBuffer
from repro.rtx.traversal import RayStats, TraversalEngine


def build_engine(points, flipped=None, leaf_size=2):
    buffer = VertexBuffer()
    flipped = flipped or [False] * len(points)
    for slot, ((x, y, z), flip) in enumerate(zip(points, flipped)):
        buffer.write_key_triangle(slot, float(x), float(y), float(z), flipped=flip)
    scene = TriangleScene.from_vertex_buffer(buffer)
    return TraversalEngine(build_bvh(scene, BvhBuildConfig(max_leaf_size=leaf_size)))


class TestClosestHit:
    def test_closest_hit_picks_nearest_triangle(self):
        engine = build_engine([(5, 0, 0), (2, 0, 0), (8, 0, 0)])
        hit = engine.trace_closest(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0]))
        assert hit
        assert hit.primitive_index == 1  # the triangle at x=2

    def test_miss_returns_empty_record(self):
        engine = build_engine([(5, 0, 0)])
        hit = engine.trace_closest(Ray(origin=[-0.5, 3.0, 0.0], direction=[1.0, 0.0, 0.0]))
        assert not hit

    def test_tmax_cuts_off_far_hits(self):
        engine = build_engine([(5, 0, 0)])
        hit = engine.trace_closest(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0], tmax=2.0))
        assert not hit

    def test_empty_scene_misses(self):
        engine = TraversalEngine(build_bvh(TriangleScene.from_triangles([])))
        hit = engine.trace_closest(Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0]))
        assert not hit

    def test_stats_are_counted(self):
        engine = build_engine([(x, 0, 0) for x in range(1, 30)])
        stats = RayStats()
        engine.trace_closest(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0]), stats)
        assert stats.rays_cast == 1
        assert stats.nodes_visited > 0
        assert stats.triangle_tests > 0
        assert stats.hits == 1
        assert engine.stats.rays_cast == 1

    def test_trace_all_returns_sorted_hits(self):
        engine = build_engine([(5, 0, 0), (2, 0, 0), (8, 0, 0), (3, 1, 0)])
        hits = engine.trace_all(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0]))
        assert [h.primitive_index for h in hits] == [1, 0, 2]
        assert all(hits[i].t <= hits[i + 1].t for i in range(len(hits) - 1))

    def test_trace_all_respects_tmax(self):
        engine = build_engine([(2, 0, 0), (5, 0, 0), (9, 0, 0)])
        hits = engine.trace_all(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0], tmax=6.0))
        assert [h.primitive_index for h in hits] == [0, 1]


class TestFastAxisPath:
    def test_axis_closest_matches_general_path(self, rng):
        points = [
            (int(x), int(y), int(z))
            for x, y, z in zip(
                rng.integers(0, 40, size=100), rng.integers(0, 6, size=100), rng.integers(0, 3, size=100)
            )
        ]
        engine = build_engine(points, leaf_size=4)
        for _ in range(50):
            y = int(rng.integers(0, 6))
            z = int(rng.integers(0, 3))
            x = float(rng.integers(0, 40)) - 0.5
            general = engine.trace_closest(Ray(origin=[x, y, z], direction=[1.0, 0.0, 0.0]))
            fast = engine.trace_axis_closest(0, (x, y, z))
            assert bool(general) == bool(fast)
            if general:
                assert general.primitive_index == fast.primitive_index

    def test_axis_all_matches_general_path(self, rng):
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 30, size=(60, 2))]
        engine = build_engine(points, leaf_size=4)
        for y in range(5):
            general = engine.trace_all(Ray(origin=[-0.5, y, 0.0], direction=[1.0, 0.0, 0.0]))
            fast = engine.trace_axis_all(0, (-0.5, y, 0.0))
            assert sorted(h.primitive_index for h in general) == sorted(h.primitive_index for h in fast)

    def test_axis_path_reports_back_face_for_flipped_triangles(self):
        engine = build_engine([(7, 0, 0)], flipped=[True])
        hit = engine.trace_axis_closest(1, (7.0, -0.5, 0.0))
        assert hit
        assert not hit.front_face
        regular = build_engine([(7, 0, 0)], flipped=[False]).trace_axis_closest(1, (7.0, -0.5, 0.0))
        assert regular.front_face

    def test_axis_path_counts_stats(self):
        engine = build_engine([(x, 0, 0) for x in range(1, 20)])
        stats = RayStats()
        engine.trace_axis_closest(0, (-0.5, 0.0, 0.0), stats=stats)
        assert stats.rays_cast == 1
        assert stats.nodes_visited > 0
        assert stats.hits == 1

    def test_axis_path_tmax(self):
        engine = build_engine([(5, 0, 0)])
        assert not engine.trace_axis_closest(0, (-0.5, 0.0, 0.0), tmax=2.0)
        assert engine.trace_axis_closest(0, (-0.5, 0.0, 0.0), tmax=10.0)

    def test_axis_path_y_and_z_rays(self):
        engine = build_engine([(2, 3, 0), (2, 7, 0), (4, 0, 5)])
        hit_y = engine.trace_axis_closest(1, (2.0, -0.5, 0.0))
        assert hit_y and hit_y.primitive_index == 0
        hit_z = engine.trace_axis_closest(2, (4.0, 0.0, -0.5))
        assert hit_z and hit_z.primitive_index == 2

    def test_axis_path_on_empty_scene(self):
        engine = TraversalEngine(build_bvh(TriangleScene.from_triangles([])))
        assert not engine.trace_axis_closest(0, (0.0, 0.0, 0.0))

    def test_axis_path_handles_huge_scaled_coordinates(self):
        y = 5688899.0 * (1 << 15)
        z = 54.0 * (1 << 25)
        engine = build_engine([(4194304, y, z), (10, y, z)])
        hit = engine.trace_axis_closest(0, (4194303.5, y, z))
        assert hit
        assert hit.primitive_index == 0
        # A ray in a different (scaled) row must not hit anything.
        assert not engine.trace_axis_closest(0, (-0.5, y + (1 << 15), z))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16), axis=st.integers(min_value=0, max_value=2))
    def test_property_fast_path_agrees_with_brute_force(self, seed, axis):
        """The fast axis path finds exactly the nearest grid point along the ray."""
        rng = np.random.default_rng(seed)
        points = {(int(x), int(y), int(z)) for x, y, z in rng.integers(0, 12, size=(40, 3))}
        points = sorted(points)
        engine = build_engine(points, leaf_size=3)
        origin = [float(rng.integers(0, 12)) for _ in range(3)]
        origin[axis] -= 0.5
        hit = engine.trace_axis_closest(axis, tuple(origin))
        candidates = [
            p
            for p in points
            if all(p[i] == round(origin[i]) for i in range(3) if i != axis) and p[axis] >= origin[axis]
        ]
        if candidates:
            expected = min(candidates, key=lambda p: p[axis])
            assert hit
            assert points.index(expected) == hit.primitive_index
        else:
            assert not hit
